#!/usr/bin/env python3
"""Type-I state-update delay against a smoke detector (Figure 3a).

A kitchen smoke detector pushes 'smoke detected' alerts to the resident's
phone.  The attacker e-Delays the event for the maximum safe window; the
alert still arrives — half a minute late, while the fire develops — and no
layer of the stack notices anything.

Run:  python examples/smoke_alert_delay.py
"""

from repro.automation import parse_rule
from repro.core import PhantomDelayAttacker
from repro.core.attacks import StateUpdateDelay
from repro.testbed import SmartHomeTestbed


def run(attacked: bool) -> tuple[float | None, SmartHomeTestbed]:
    home = SmartHomeTestbed(seed=21)
    smoke = home.add_device("SM1")  # First Alert Onelink smoke detector
    home.install_rule(parse_rule(
        'WHEN sm1 smoke.detected THEN NOTIFY push "SMOKE DETECTED in the kitchen"'
    ))
    home.settle()

    if attacked:
        attacker = PhantomDelayAttacker.deploy(home)
        delay = StateUpdateDelay(attacker, smoke)
        home.run(70.0)  # watch a keep-alive pass (SM1's period is 60 s)
        delay.arm()     # hold the next smoke event as long as safely possible
    else:
        home.run(70.0)

    fire_at = home.now
    smoke.stimulate("detected")
    home.run(120.0)

    delivered = home.notifier.first_delivery_time("SMOKE DETECTED")
    latency = None if delivered is None else delivered - fire_at
    return latency, home


def main() -> None:
    latency, home = run(attacked=False)
    print(f"without attack: alert on the phone {latency:.2f}s after ignition")
    assert latency < 2.0

    latency, home = run(attacked=True)
    print(f"with attack   : alert on the phone {latency:.2f}s after ignition")
    print(f"alarms        : {home.alarms.summary() or 'none'}")
    print()
    print("The paper (Section V-A): 'even for only dozens of seconds, serious")
    print("damage can be caused when users finally receive the delayed alert.'")
    assert latency > 20.0 and home.alarms.silent


if __name__ == "__main__":
    main()
