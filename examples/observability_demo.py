#!/usr/bin/env python3
"""Tracing one delayed smoke alert end-to-end with the obs subsystem.

The same e-Delay as ``smoke_alert_delay.py``, run with ``observe=True``:
every layer records causal spans, so afterwards the delayed alert can be
reconstructed as one span tree — stimulus, protocol encode, TLS record, TCP
segments, the attacker's hold, cloud delivery, rule firing, and the push
notification — and the 72-second delay attributed to the attacker's hold
vs. TCP retransmission vs. ordinary transit.

Run:  python examples/observability_demo.py
"""

from repro.automation import parse_rule
from repro.core import PhantomDelayAttacker
from repro.core.attacks import StateUpdateDelay
from repro.obs import attribute_delay, link_hold_spans
from repro.testbed import SmartHomeTestbed


def main() -> None:
    home = SmartHomeTestbed(seed=21, observe=True)
    smoke = home.add_device("SM1")  # First Alert Onelink smoke detector
    home.install_rule(parse_rule(
        'WHEN sm1 smoke.detected THEN NOTIFY push "SMOKE DETECTED in the kitchen"'
    ))
    home.settle()

    attacker = PhantomDelayAttacker.deploy(home)
    delay = StateUpdateDelay(attacker, smoke)
    home.run(70.0)  # watch a keep-alive pass (SM1's period is 60 s)
    delay.arm()

    fire_at = home.now
    smoke.stimulate("detected")
    home.run(120.0)

    tracer = home.obs.tracer
    # Stitch the flow-keyed attacker hold into the message's trace.
    link_hold_spans(tracer.spans)
    message = next(
        s for s in tracer.spans
        if s.component == "appproto" and s.name == "event:smoke.detected"
    )

    print("Span tree of the delayed smoke alert:")
    print(tracer.render_tree(message.trace_id))
    print()

    attribution = attribute_delay(tracer.spans, message.attrs["msg_id"])
    assert attribution is not None
    print(attribution.render())
    # The decomposition is exact: the three components sum to the delay.
    assert abs(attribution.components_sum - attribution.total) < 1e-9
    # And the hold dominates — retransmission stayed at zero (the forged
    # ACKs kept every timer quiet), which is the paper's decoupling claim.
    assert attribution.tcp_retransmission == 0.0
    assert attribution.attacker_hold > 0.99 * attribution.total

    delivered = home.notifier.first_delivery_time("SMOKE DETECTED")
    print()
    print(f"phone notification {delivered - fire_at:.2f}s after ignition; "
          f"alarms: {home.alarms.summary() or 'none'}")

    profiler_counts = home.obs.registry.find(component="scheduler")
    print(f"scheduler metrics recorded: {len(profiler_counts)} series, "
          f"{home.sim.events_processed} events processed")


if __name__ == "__main__":
    main()
