#!/usr/bin/env python3
"""The storm-door break-in (paper Case 8 / Figure 3c), step by step.

Automation rule (from a real user forum):

    WHEN the storm door is opened, IF the resident is present,
    THEN unlock the interior door.

The attacker holds the presence sensor's 'away' event when the resident
leaves.  The cloud's shadow still says *present* when the burglar pulls the
storm door — so the automation spuriously unlocks the interior door for
them.  No alarm fires anywhere.

Run:  python examples/burglary_storm_door.py
"""

from repro.automation import parse_rule
from repro.core import PhantomDelayAttacker
from repro.core.attacks import SpuriousExecution
from repro.testbed import SmartHomeTestbed


def run(attacked: bool) -> SmartHomeTestbed:
    home = SmartHomeTestbed(seed=13)
    storm = home.add_device("C5")      # SmartLife WiFi contact (storm door)
    presence = home.add_device("PR1")  # SmartThings arrival sensor
    lock = home.add_device("LK1")      # August lock via its Connect bridge
    home.install_rule(parse_rule(
        "WHEN c5 contact.open IF pr1.presence == present THEN COMMAND lk1 unlock"
    ))
    home.settle()

    spurious = None
    if attacked:
        attacker = PhantomDelayAttacker.deploy(home)
        spurious = SpuriousExecution(attacker, presence)
        home.run(40.0)  # observe the SmartThings keep-alive phase

    # --- Timeline (identical in both runs) ------------------------------
    presence.stimulate("present")          # resident is home
    home.run(8.0)
    if spurious is not None:
        spurious.arm()                     # hold the *next* presence event
    presence.stimulate("away")             # resident leaves...
    left_at = home.now
    print(f"[{home.now:7.2f}s] resident left home (presence -> away)")
    home.run(10.0)
    print(f"[{home.now:7.2f}s] burglar pulls the storm door")
    storm.stimulate("open")                # ...the burglar strikes
    home.run(1.0)
    shadow = home.integration.shadow_value("pr1", "presence")
    if attacked:
        print(f"[{home.now:7.2f}s] cloud's belief at trigger time: presence={shadow!r} "
              f"(truth: away since t={left_at:.1f})")
    home.run(60.0)
    return home


def main() -> None:
    print("=== Without attack " + "=" * 50)
    home = run(attacked=False)
    lock = home.devices["lk1"]
    print(f"interior door: {lock.attribute_value}  (rule correctly did nothing)")
    assert lock.attribute_value == "locked"

    print()
    print("=== With phantom-delay attack " + "=" * 39)
    home = run(attacked=True)
    lock = home.devices["lk1"]
    unlocks = [t for t, name, _ in lock.actions_executed if name == "unlock"]
    print(f"interior door: {lock.attribute_value}  "
          f"(unlocked at t={unlocks[0]:.1f}s — the burglar walks in)")
    print(f"alarms raised: {home.alarms.summary() or 'none'}")
    assert lock.attribute_value == "unlocked" and home.alarms.silent


if __name__ == "__main__":
    main()
