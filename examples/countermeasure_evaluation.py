#!/usr/bin/env python3
"""Evaluate the paper's Section VII countermeasures — and their limits.

* VII-A: mandate event acknowledgements with short timeouts; watch the
  stealthy attack window shrink, and what shortening keep-alives costs in
  idle traffic.
* VII-B: timestamp checking — stops delayed-trigger spurious execution,
  does nothing against the storm-door burglary or pure delay attacks.

Run:  python examples/countermeasure_evaluation.py
"""

from repro.experiments.countermeasures import (
    render_countermeasures,
    run_ack_timeout_sweep,
    run_delay_detection,
    run_keepalive_cost_curve,
    run_timestamp_defense,
)


def main() -> None:
    print("Evaluating countermeasures (this runs ~12 simulated attacks)...")
    print()
    print(
        render_countermeasures(
            run_ack_timeout_sweep(),
            run_keepalive_cost_curve(),
            run_timestamp_defense(),
            run_delay_detection(),
        )
    )
    print()
    print("Take-away (paper Section VII): shorter ACK timeouts shrink the")
    print("window but cost traffic and battery; timestamp checking closes")
    print("only one of the four attack shapes. Neither defence is free or")
    print("complete — the flaw is structural to TCP+TLS for IoT.")


if __name__ == "__main__":
    main()
