#!/usr/bin/env python3
"""Full kill chain for the Case 3 action delay (paper Section VI-D2).

1. **Infer** the hidden automation rule from encrypted traffic: the lock's
   locking command keeps following door-closed events (support mining).
2. **Verify** the hypothesis actively with a 5-second probe delay on the
   trigger — the command shifts by exactly 5 seconds.
3. **Exploit**: on the next door-closed event, c-Delay the lock command for
   the maximum safe window — the burglar's window between "door closed" and
   "door locked".

Run:  python examples/rule_inference_attack.py
"""

from repro.automation import parse_rule
from repro.core import PhantomDelayAttacker, TimeoutBehavior
from repro.core.inference import RuleInferencer, render_hypotheses
from repro.experiments._util import run_until
from repro.testbed import SmartHomeTestbed


def main() -> None:
    home = SmartHomeTestbed(seed=99)
    contact = home.add_device("C2")   # door contact via the SmartThings hub
    lock = home.add_device("LK1")     # August lock via its Connect bridge
    hub, bridge = home.devices["h1"], home.devices["h3"]
    home.install_rule(parse_rule("WHEN c2 contact.closed THEN COMMAND lk1 lock"))
    home.settle()

    attacker = PhantomDelayAttacker.deploy(home)
    attacker.interpose(hub.ip)
    attacker.interpose(bridge.ip)
    home.run(5.0)

    # --- Step 1: a "day" of normal life, observed passively --------------
    for _ in range(4):
        home.run(40.0)
        contact.stimulate("open")
        home.run(10.0)
        lock.state["lock"] = "unlocked"     # resident unlocks manually
        contact.stimulate("closed")         # ...door closes, rule re-locks
    home.run(10.0)

    inferencer = RuleInferencer(attacker)
    hypotheses = inferencer.hypothesize()
    print(render_hypotheses(hypotheses))
    rule = hypotheses[0]

    # --- Step 2: the 5-second probe --------------------------------------
    lock.state["lock"] = "unlocked"
    verified = inferencer.verify(
        rule,
        TimeoutBehavior.from_profile(hub.profile),
        trigger_physical=lambda: contact.stimulate("closed"),
    )
    print(f"\nprobe verification: shift={rule.probe_shift:.2f}s -> verified={verified}")
    assert verified

    # --- Step 3: the real attack ------------------------------------------
    home.run(30.0)
    operation = attacker.delay_next_command(
        bridge.ip,
        TimeoutBehavior.from_profile(lock.profile),
        trigger_size=rule.command_size,
    )
    lock.state["lock"] = "unlocked"
    closed_at = home.now
    contact.stimulate("closed")
    print(f"\n[{home.now:7.2f}s] door closed; resident walks away believing it will lock")
    run_until(home.sim, lambda: operation.released_at is not None, 120.0)
    home.run(3.0)
    locked_at = next(t for t, name, _ in lock.actions_executed if name == "lock" and t > closed_at)
    print(f"[{locked_at:7.2f}s] lock finally executes — "
          f"{locked_at - closed_at:.1f}s of unhurried break-in window")
    print(f"alarms: {home.alarms.summary() or 'none'}")
    assert locked_at - closed_at > 15.0 and home.alarms.silent


if __name__ == "__main__":
    main()
