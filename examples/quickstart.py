#!/usr/bin/env python3
"""Quickstart: delay one IoT event without raising a single alarm.

Builds a simulated smart home (a SmartThings hub with a door contact
sensor, plus the vendor cloud), drops a compromised WiFi device onto the
LAN, ARP-spoofs the hub's session, and holds the next door event for the
maximum safe window — releasing it just before the predicted timeout, so
TLS verifies, no layer alarms, and the cloud happily accepts a stale event.

Run:  python examples/quickstart.py
"""

from repro.core import PhantomDelayAttacker, TimeoutBehavior
from repro.experiments._util import run_until
from repro.testbed import SmartHomeTestbed


def main() -> None:
    # --- A benign smart home -------------------------------------------
    home = SmartHomeTestbed(seed=7)
    contact = home.add_device("C2")  # SmartThings Multipurpose Sensor
    hub = home.devices["h1"]         # pulled in automatically
    home.settle()                    # sessions establish, keep-alives start
    print(f"[{home.now:7.2f}s] home is up: devices={sorted(home.devices)}")

    # --- The attacker: one compromised WiFi device ---------------------
    attacker = PhantomDelayAttacker.deploy(home)
    attacker.interpose(hub.ip)       # ARP-spoof hub <-> router
    home.run(40.0)                   # sniff one keep-alive (learn the phase)
    print(f"[{home.now:7.2f}s] attacker interposed on {hub.ip}")

    # The attacker's knowledge of this device model's timeout behaviour
    # comes from offline profiling (see examples/profiling_campaign.py).
    behavior = TimeoutBehavior.from_profile(hub.profile)
    print(f"          profiled window: e-Delay {behavior.event_delay_window()}")

    # --- Arm the e-Delay primitive --------------------------------------
    operation = attacker.delay_next_event(
        hub.ip, behavior, trigger_size=contact.profile.event_size
    )

    # --- The physical world moves on ------------------------------------
    opened_at = home.now
    contact.stimulate("open")        # the front door opens NOW
    print(f"[{home.now:7.2f}s] door physically opened")

    run_until(home.sim, lambda: operation.released_at is not None, 120.0)
    home.run(5.0)

    # --- What the cloud saw ----------------------------------------------
    endpoint = home.endpoints["smartthings"]
    arrived_at, message = endpoint.events_from("c2")[0]
    print(f"[{arrived_at:7.2f}s] cloud received '{message.name}'")
    print()
    print(f"achieved delay : {operation.achieved_delay:.1f}s")
    print(f"prediction     : timeout at {operation.prediction.at:.1f}s "
          f"({operation.prediction.cause}); released 2s early")
    print(f"stealthy       : {operation.stealthy}")
    print(f"alarms raised  : {home.alarms.summary() or 'none'}")
    assert home.alarms.silent and operation.achieved_delay > 20.0


if __name__ == "__main__":
    main()
