#!/usr/bin/env python3
"""End-state attacker: plan, arm, and execute attacks on a whole home.

Combines the extensions: the :class:`AttackPlanner` enumerates every
opportunity over the home's rules (with feasibility analysis), the
:class:`AttackCampaign` interposes and arms one primitive per feasible
opportunity, the physical world plays out, and the merged timeline shows
the cyber world's disagreement with it.

Run:  python examples/full_campaign.py
"""

from repro.analysis.timeline import ordering_violations, render_timeline
from repro.automation import parse_rule
from repro.core import PhantomDelayAttacker
from repro.core.attacks import AttackCampaign, AttackPlanner, render_campaign, render_plan
from repro.devices.profiles import CATALOGUE
from repro.testbed import SmartHomeTestbed


def main() -> None:
    home = SmartHomeTestbed(seed=177)
    contact = home.add_device("C2")
    lock = home.add_device("LK1")
    base = home.add_device("HS1")
    rules = [
        parse_rule("WHEN c2 contact.closed THEN COMMAND lk1 lock", "auto-lock"),
        parse_rule('WHEN hs1 security.triggered THEN NOTIFY push "ALARM"', "alarm-push"),
    ]
    home.install_rules(rules)
    home.settle()

    # --- Plan ------------------------------------------------------------
    profiles = {d: CATALOGUE.get(d.upper()) for d in ("c2", "lk1", "hs1")}
    plan = AttackPlanner(profiles).analyze(rules)
    print(render_plan(plan))

    # --- Arm -------------------------------------------------------------
    attacker = PhantomDelayAttacker.deploy(home)
    campaign = AttackCampaign(home, attacker)
    report = campaign.arm(plan)
    home.run(40.0)

    # --- The physical world moves on ---------------------------------------
    timeline_start = home.now
    lock.state["lock"] = "unlocked"
    contact.stimulate("closed")     # should auto-lock promptly...
    home.run(5.0)
    base.stimulate("triggered")     # ...and the alarm should push instantly
    home.run(90.0)

    print()
    print(render_campaign(report))
    print()
    print("Merged timeline (physical vs cyber):")
    print(render_timeline(home, since=timeline_start))
    print()
    violations = ordering_violations(home, since=timeline_start)
    print(f"event-order violations a timestamp-aware defender would see: {len(violations)}")
    print(f"alarms raised by the stack itself: {home.alarms.summary() or 'none'}")
    assert report.all_stealthy() and home.alarms.silent


if __name__ == "__main__":
    main()
