#!/usr/bin/env python3
"""The attacker's offline homework: profile timeout behaviour, then
recognise victim devices from encrypted traffic.

Phase 1 (attacker's own lab): run the Section IV-C measurement procedure
against devices the attacker bought — observing keep-alives, delaying them
until timeout, and probing event/command timeouts.

Phase 2 (victim's home): sniff encrypted traffic only (lengths + timing +
server domains) and match it against the signature database.

Run:  python examples/profiling_campaign.py
"""

from repro.core import FingerprintDatabase, PhantomDelayAttacker
from repro.testbed import SmartHomeTestbed


def phase1_profile_own_devices() -> None:
    print("Phase 1 — profiling attacker-owned devices (one-time effort)")
    print("-" * 64)
    from repro.experiments.table1 import profile_label

    for label in ("H1", "H2", "HS3"):
        row = profile_label(label, trials=2)
        report = row.report
        ka = (
            f"{report.ka_period:.0f}s {report.ka_strategy}"
            if report.ka_period is not None else "on-demand"
        )
        event_to = "∞" if report.event_timeout is None else f"{report.event_timeout:.0f}s"
        print(f"  {row.profile.model:28s} keep-alive {ka:16s} "
              f"KA-timeout {report.ka_timeout or float('nan'):>5.1f}s  "
              f"event-timeout {event_to:>4s}  "
              f"e-window {row.measured_event_window}")
    print()


def phase2_recognise_victim_home() -> None:
    print("Phase 2 — recognising devices in a victim home from sniffed traffic")
    print("-" * 64)
    home = SmartHomeTestbed(seed=33)
    home.add_device("C2")          # SmartThings contact via its hub
    home.add_device("HS1")         # Ring base station
    home.add_device("P2")          # Kasa plug
    contact = home.devices["c2"]
    home.settle()

    attacker = PhantomDelayAttacker.deploy(home)
    device_ips = [d.host.ip for d in home.devices.values() if hasattr(d, "host")]
    # Promiscuous sniffing only — no hijack yet.  Trigger some activity so
    # event-length fingerprints appear alongside the keep-alives.
    home.sim.schedule(30.0, contact.stimulate, "open")
    results = attacker.survey(window=150.0, device_ips=device_ips)

    for ip, matches in sorted(results.items()):
        if not matches:
            print(f"  {ip:15s} -> (no match)")
            continue
        best = matches[0]
        print(f"  {ip:15s} -> {best.signature.model:28s} "
              f"score={best.score:.1f} via {', '.join(best.reasons)}")
    print()
    print("With the model identified, the attacker looks up its profiled")
    print("timeout behaviour and knows exactly how long messages can be held.")


def main() -> None:
    phase1_profile_own_devices()
    phase2_recognise_victim_home()


if __name__ == "__main__":
    main()
