#!/usr/bin/env python3
"""Phantom delay on a network that genuinely misbehaves.

The paper's testbed is a clean lab WiFi.  This demo re-runs a Table III
style attack (Case 1: delay the front-door open alert) on a LAN with real
impairments — loss, bursts, jitter, duplication — injected by
``repro.faults``, with the cross-layer invariant suite auditing the run:

* the *network* may drop, duplicate, reorder, and corrupt frames, yet
* TCP must deliver every byte exactly once and in order (so TLS stays
  silent), and the attack must still land stealthily.

Run:  python examples/fault_injection_demo.py
"""

from repro.automation import parse_rule
from repro.core import PhantomDelayAttacker
from repro.core.attacks import StateUpdateDelay
from repro.faults import get_profile
from repro.testbed import SmartHomeTestbed


def run_home(profile_name: str | None, attacked: bool) -> SmartHomeTestbed:
    home = SmartHomeTestbed(
        seed=11,
        faults=None if profile_name is None else profile_name,
        check_invariants=True,
    )
    contact = home.add_device("C1")  # Ring contact sensor via its base
    home.install_rule(parse_rule(
        'WHEN c1 contact.open THEN NOTIFY push "Front door opened"'
    ))
    home.settle()
    if attacked:
        attacker = PhantomDelayAttacker.deploy(home)
        delay = StateUpdateDelay(attacker, contact)
        home.run(70.0)  # sniff one keep-alive pass
        delay.arm()
    else:
        home.run(70.0)
    home.opened_at = home.now
    contact.stimulate("open")
    home.run(120.0)
    return home


def alert_latency(home: SmartHomeTestbed) -> float | None:
    delivered = home.notifier.first_delivery_time("Front door opened")
    return None if delivered is None else delivered - home.opened_at


def main() -> None:
    profile = get_profile("chaotic")
    print(f"fault profile: {profile.describe()}\n")

    for name, label in ((None, "ideal LAN"), ("chaotic", "chaotic LAN")):
        baseline = run_home(name, attacked=False)
        attacked = run_home(name, attacked=True)
        print(f"--- {label} ---")
        print(f"  alert latency without attack: {alert_latency(baseline):7.2f}s")
        print(f"  alert latency with attack:    {alert_latency(attacked):7.2f}s")
        print(f"  alarms raised: {attacked.alarms.summary() or 'none'}")
        if attacked.fault_injector is not None:
            print(f"  injector: {attacked.fault_injector.summary()}")
        print(f"  {attacked.invariants.summary()}")
        attacked.invariants.check()  # raises if the stack cheated
        baseline.invariants.check()
        print()

    print("The phantom delay survives a hostile network: the impairments cost")
    print("seconds of TCP repair, never bytes — and every invariant held.")


if __name__ == "__main__":
    main()
