"""Causal tracing across a full e-Delay run: span linkage, delay
attribution, trace JSONL round-trip, and the trace-driven timeline."""

import pytest

from repro.analysis.timeline import build_timeline_from_trace
from repro.automation import parse_rule
from repro.core import PhantomDelayAttacker
from repro.core.attacks import StateUpdateDelay
from repro.obs import Tracer, attribute_delay, link_hold_spans, render_span_tree
from repro.testbed import SmartHomeTestbed


@pytest.fixture(scope="module")
def edelay_run():
    """One observed e-Delay against the smoke detector (Figure 3a setup)."""
    home = SmartHomeTestbed(seed=21, observe=True)
    smoke = home.add_device("SM1")
    home.install_rule(parse_rule(
        'WHEN sm1 smoke.detected THEN NOTIFY push "SMOKE DETECTED"'
    ))
    home.settle()
    attacker = PhantomDelayAttacker.deploy(home)
    delay = StateUpdateDelay(attacker, smoke)
    home.run(70.0)
    delay.arm()
    fire_at = home.now
    smoke.stimulate("detected")
    home.run(120.0)
    link_hold_spans(home.obs.tracer.spans)
    return home, smoke, fire_at


def _smoke_message(tracer):
    return next(
        s for s in tracer.spans
        if s.component == "appproto" and s.name == "event:smoke.detected"
    )


class TestSpanLinkage:
    def test_device_stimulus_is_the_trace_root(self, edelay_run):
        home, _, fire_at = edelay_run
        tracer = home.obs.tracer
        message = _smoke_message(tracer)
        root = tracer.get(message.parent_id)
        assert root is not None
        assert root.component == "device"
        assert root.name == "stimulus:smoke.detected"
        assert root.parent_id is None
        assert root.start == pytest.approx(fire_at)

    def test_every_layer_appears_under_the_message(self, edelay_run):
        home, _, _ = edelay_run
        tracer = home.obs.tracer
        message = _smoke_message(tracer)
        children = {(s.component, s.name.split(":")[0]) for s in tracer.children(message)}
        assert ("tls", "record") in children
        assert ("tcp", "send") in children
        assert ("attack", "hold") in children
        assert ("appproto", "event_ack") in children
        assert ("cloud", "deliver") in children

    def test_rule_and_notification_nest_under_cloud_delivery(self, edelay_run):
        home, _, _ = edelay_run
        tracer = home.obs.tracer
        message = _smoke_message(tracer)
        deliver = next(
            s for s in tracer.children(message) if s.component == "cloud"
        )
        rules = [s for s in tracer.children(deliver) if s.component == "automation"]
        assert len(rules) == 1 and rules[0].attrs["action_taken"] is True
        notifies = [s for s in tracer.children(rules[0]) if s.name == "notify:push"]
        assert len(notifies) == 1
        assert notifies[0].attrs["delivered_at"] > notifies[0].start

    def test_whole_trace_shares_one_trace_id(self, edelay_run):
        home, _, _ = edelay_run
        tracer = home.obs.tracer
        message = _smoke_message(tracer)
        trace = tracer.trace(message.trace_id)
        components = {s.component for s in trace}
        assert {"device", "appproto", "tls", "tcp", "attack", "cloud",
                "automation"} <= components

    def test_hold_span_was_linked_by_flow_overlap(self, edelay_run):
        home, _, _ = edelay_run
        tracer = home.obs.tracer
        message = _smoke_message(tracer)
        hold = next(s for s in tracer.spans if s.component == "attack")
        assert hold.parent_id == message.span_id
        assert hold.attrs["flow"] == message.attrs["flow"]
        assert hold.attrs["forged_acks"] >= 1
        # Idempotent: a second pass relinks nothing.
        assert link_hold_spans(tracer.spans) == 0

    def test_render_tree_indents_children(self, edelay_run):
        home, _, _ = edelay_run
        tracer = home.obs.tracer
        message = _smoke_message(tracer)
        text = tracer.render_tree(message.trace_id)
        lines = text.splitlines()
        assert lines[0].startswith("device/stimulus")
        assert any(line.startswith("  appproto/event:") for line in lines)
        assert any("attack/hold" in line for line in lines)


class TestDelayAttribution:
    def test_components_sum_to_observed_delay(self, edelay_run):
        home, _, fire_at = edelay_run
        tracer = home.obs.tracer
        message = _smoke_message(tracer)
        att = attribute_delay(tracer.spans, message.attrs["msg_id"])
        assert att is not None
        # Exact decomposition, and against independently measured times:
        # the stimulus instant and the endpoint's receipt timestamp.
        assert att.components_sum == pytest.approx(att.total, abs=1e-9)
        assert att.origin_ts == pytest.approx(fire_at, abs=1e-3)
        receipt_ts = home.endpoints["onelink"].events_from("sm1")[-1][0]
        assert att.delivered_ts == pytest.approx(receipt_ts, abs=1e-3)
        assert att.total == pytest.approx(receipt_ts - fire_at, abs=1e-3)

    def test_hold_dominates_and_retransmission_is_zero(self, edelay_run):
        home, _, _ = edelay_run
        tracer = home.obs.tracer
        message = _smoke_message(tracer)
        att = attribute_delay(tracer.spans, message.attrs["msg_id"])
        assert att.total > 60.0, "the alert must have been held over a minute"
        assert att.tcp_retransmission == 0.0, "forged ACKs keep RTO timers quiet"
        assert att.attacker_hold == pytest.approx(att.total, rel=0.01)
        assert 0.0 < att.transit < 1.0

    def test_attack_was_stealthy_per_the_metrics(self, edelay_run):
        home, _, _ = edelay_run
        assert home.alarms.silent
        assert home.obs.registry.find("alarms") == []

    def test_unknown_message_returns_none(self, edelay_run):
        home, _, _ = edelay_run
        assert attribute_delay(home.obs.tracer.spans, msg_id=10_000) is None


class TestTraceSerialisation:
    def test_trace_jsonl_round_trip(self, edelay_run, tmp_path):
        home, _, _ = edelay_run
        tracer = home.obs.tracer
        path = tmp_path / "trace.jsonl"
        count = tracer.export_jsonl(str(path))
        assert count == len(tracer.spans)
        loaded = Tracer.import_jsonl(str(path))
        assert len(loaded) == count
        assert [s.to_record() for s in loaded] == [
            s.to_record() for s in tracer.spans
        ]
        # Attribution works identically on re-imported spans.
        message = _smoke_message(tracer)
        att_live = attribute_delay(tracer.spans, message.attrs["msg_id"])
        att_loaded = attribute_delay(loaded, message.attrs["msg_id"])
        assert att_loaded.attacker_hold == att_live.attacker_hold
        assert render_span_tree(loaded) == render_span_tree(tracer.spans)

    def test_timeline_from_trace_matches_the_run(self, edelay_run):
        home, _, fire_at = edelay_run
        entries = build_timeline_from_trace(home.obs.tracer.spans, since=fire_at)
        kinds = [e.kind for e in entries]
        timestamps = [e.ts for e in entries]
        assert timestamps == sorted(timestamps)
        assert [e.kind for e in entries[:2]] == ["physical", "attack"]
        assert "server-event" in kinds and "rule" in kinds and "notify" in kinds
        notify = next(e for e in entries if e.kind == "notify")
        assert notify.ts == pytest.approx(
            home.notifier.first_delivery_time("SMOKE DETECTED")
        )
