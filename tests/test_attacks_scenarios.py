"""End-to-end attack scenario tests (Table III / Figure 3 behaviours)."""

from __future__ import annotations

import pytest

from repro.core.attacks.base import compare_scenario, run_scenario
from repro.core.attacks.scenarios import (
    Case1FrontDoorVoiceAlert,
    Case3DoorCloseAutoLock,
    Case4ArmedHeaterOff,
    Case8StormDoorUnlock,
    Case10AutoLockOnLeave,
    DelayedTriggerSpurious,
    DisorderedOppositeActions,
    FIGURE3_SCENARIOS,
    Fig3bWaterValve,
    TABLE3_SCENARIOS,
    scenario_by_case,
)


class TestScenarioFramework:
    def test_eleven_table3_cases(self):
        assert len(TABLE3_SCENARIOS) == 11
        assert [s.case_id for s in TABLE3_SCENARIOS] == [f"Case {i}" for i in range(1, 12)]

    def test_four_figure3_scenarios(self):
        assert len(FIGURE3_SCENARIOS) == 4

    def test_scenario_lookup(self):
        assert scenario_by_case("Case 8").name == "case8-storm-door-unlock"
        with pytest.raises(LookupError):
            scenario_by_case("Case 99")

    def test_each_type_represented(self):
        types = {s.attack_type for s in TABLE3_SCENARIOS}
        assert types == {
            "state-update-delay", "action-delay",
            "spurious-execution", "disabled-execution",
        }


class TestTypeI:
    def test_alert_delayed_dozens_of_seconds(self):
        baseline, attacked = compare_scenario(Case1FrontDoorVoiceAlert(), seed=9)
        assert baseline.metrics["alert_latency"] < 2.0
        assert attacked.metrics["alert_latency"] > 20.0
        assert attacked.metrics["alert_delivered"]  # late, not lost

    def test_attack_is_stealthy(self):
        _, attacked = compare_scenario(Case1FrontDoorVoiceAlert(), seed=9)
        assert attacked.alarms == {}
        assert attacked.metrics["stealthy_hold"]


class TestTypeII:
    def test_lock_command_delayed(self):
        baseline, attacked = compare_scenario(Case3DoorCloseAutoLock(), seed=9)
        assert baseline.metrics["lock_latency"] < 2.0
        assert attacked.metrics["lock_latency"] > 15.0
        assert attacked.metrics["locked_eventually"]  # command not lost

    def test_combined_event_and_command_delay(self):
        baseline, attacked = compare_scenario(Fig3bWaterValve(), seed=9)
        assert attacked.metrics["shutoff_latency"] > baseline.metrics["shutoff_latency"] + 15.0
        assert attacked.metrics["combined_window"] > 15.0

    def test_routine_disabled_forever_via_discard(self):
        baseline, attacked = compare_scenario(Case4ArmedHeaterOff(), seed=9)
        assert baseline.metrics["heater_turned_off"]
        assert not attacked.metrics["heater_turned_off"]
        assert attacked.metrics["events_discarded"] == 1
        assert attacked.alarms == {}  # Finding 2: silent


class TestTypeIII:
    def test_storm_door_spurious_unlock(self):
        baseline, attacked = compare_scenario(Case8StormDoorUnlock(), seed=9)
        assert not baseline.metrics["unlocked"]
        assert attacked.metrics["unlocked"]
        assert attacked.alarms == {}

    def test_auto_lock_disabled(self):
        baseline, attacked = compare_scenario(Case10AutoLockOnLeave(), seed=9)
        assert baseline.metrics["auto_locked"]
        assert not attacked.metrics["auto_locked"]
        assert attacked.metrics["lock_state"] == "unlocked"

    def test_opposite_actions_disordered(self):
        baseline, attacked = compare_scenario(DisorderedOppositeActions(), seed=9)
        assert baseline.metrics["action_order"] == "unlock->lock"
        assert not baseline.metrics["left_unlocked"]
        assert attacked.metrics["action_order"] == "lock->unlock"
        assert attacked.metrics["left_unlocked"]
        assert attacked.alarms == {}

    def test_delayed_trigger_spurious_extension(self):
        baseline, attacked = compare_scenario(DelayedTriggerSpurious(), seed=9)
        assert not baseline.metrics["heater_turned_on"]
        assert attacked.metrics["heater_turned_on"]

    def test_timestamp_checking_stops_delayed_trigger(self):
        scenario = DelayedTriggerSpurious()
        scenario.trigger_timestamp_window = 10.0
        result = run_scenario(scenario, attacked=True, seed=9)
        assert not result.metrics["heater_turned_on"]
        assert result.metrics["stale_triggers_suppressed"] >= 1

    def test_timestamp_checking_does_not_stop_condition_delay(self):
        scenario = Case8StormDoorUnlock()
        scenario.trigger_timestamp_window = 10.0
        result = run_scenario(scenario, attacked=True, seed=9)
        assert result.metrics["unlocked"]  # the burglar still gets in


class TestBaselineSanity:
    """Without the attacker, every home behaves as the rules intend."""

    @pytest.mark.parametrize("scenario", TABLE3_SCENARIOS, ids=lambda s: s.case_id)
    def test_baseline_runs_clean(self, scenario):
        result = run_scenario(scenario, attacked=False, seed=11)
        assert result.alarms == {}
