"""ARP caches, host routing, the router, and the WAN."""

from __future__ import annotations

import pytest

from repro.simnet.arp import ArpCache
from repro.simnet.host import same_subnet
from repro.simnet.inet import DnsRegistry, Internet
from repro.simnet.packet import IpPacket


class TestArpCache:
    def test_learn_and_lookup(self, sim):
        cache = ArpCache(sim)
        assert cache.learn("10.0.0.1", "aa", solicited=True)
        assert cache.lookup("10.0.0.1") == "aa"

    def test_lookup_unknown(self, sim):
        assert ArpCache(sim).lookup("10.0.0.1") is None

    def test_ttl_expiry(self, sim):
        cache = ArpCache(sim, ttl=10.0)
        cache.learn("10.0.0.1", "aa", solicited=True)
        sim.run_until(11.0)
        assert cache.lookup("10.0.0.1") is None

    def test_entry_valid_before_ttl(self, sim):
        cache = ArpCache(sim, ttl=10.0)
        cache.learn("10.0.0.1", "aa", solicited=True)
        sim.run_until(9.0)
        assert cache.lookup("10.0.0.1") == "aa"

    def test_unsolicited_accepted_by_default(self, sim):
        cache = ArpCache(sim)
        assert cache.learn("10.0.0.1", "evil", solicited=False)
        assert cache.lookup("10.0.0.1") == "evil"

    def test_unsolicited_rejected_when_hardened(self, sim):
        cache = ArpCache(sim, accept_unsolicited=False)
        assert not cache.learn("10.0.0.1", "evil", solicited=False)
        assert cache.lookup("10.0.0.1") is None

    def test_solicited_overwrites(self, sim):
        cache = ArpCache(sim)
        cache.learn("10.0.0.1", "aa", solicited=True)
        cache.learn("10.0.0.1", "bb", solicited=True)
        assert cache.lookup("10.0.0.1") == "bb"

    def test_static_entry_never_overwritten(self, sim):
        cache = ArpCache(sim)
        cache.set_static("10.0.0.1", "real")
        assert not cache.learn("10.0.0.1", "evil", solicited=False)
        assert not cache.learn("10.0.0.1", "evil", solicited=True)
        assert cache.lookup("10.0.0.1") == "real"

    def test_static_entry_survives_ttl(self, sim):
        cache = ArpCache(sim, ttl=5.0)
        cache.set_static("10.0.0.1", "real")
        sim.run_until(100.0)
        assert cache.lookup("10.0.0.1") == "real"

    def test_outstanding_tracking(self, sim):
        cache = ArpCache(sim)
        cache.mark_requested("10.0.0.1")
        assert cache.is_outstanding("10.0.0.1")
        cache.clear_outstanding("10.0.0.1")
        assert not cache.is_outstanding("10.0.0.1")

    def test_snapshot_excludes_expired(self, sim):
        cache = ArpCache(sim, ttl=5.0)
        cache.learn("10.0.0.1", "aa", solicited=True)
        sim.run_until(6.0)
        cache.learn("10.0.0.2", "bb", solicited=True)
        assert cache.snapshot() == {"10.0.0.2": "bb"}


class TestSubnet:
    def test_same_subnet(self):
        assert same_subnet("192.168.1.10", "192.168.1.200")

    def test_different_subnet(self):
        assert not same_subnet("192.168.1.10", "10.0.0.1")

    def test_prefix_octets(self):
        assert same_subnet("10.1.2.3", "10.1.9.9", prefix_octets=2)
        assert not same_subnet("10.1.2.3", "10.2.2.3", prefix_octets=2)


class TestHostRouting:
    def test_on_link_delivery_via_arp(self, net):
        a = net.add_lan_host("a")
        b = net.add_lan_host("b")
        got = []
        b.ip_handler = got.append
        a.send_ip(IpPacket(a.ip, b.ip, b"hello"))
        net.sim.run(1.0)
        assert len(got) == 1 and got[0].payload == b"hello"
        # The ARP exchange populated both caches.
        assert a.arp.lookup(b.ip) == b.mac
        assert b.arp.lookup(a.ip) == a.mac

    def test_multiple_packets_queue_during_arp(self, net):
        a = net.add_lan_host("a")
        b = net.add_lan_host("b")
        got = []
        b.ip_handler = got.append
        for i in range(5):
            a.send_ip(IpPacket(a.ip, b.ip, bytes([i])))
        net.sim.run(1.0)
        assert [p.payload for p in got] == [bytes([i]) for i in range(5)]

    def test_off_subnet_goes_via_gateway(self, net):
        a = net.add_lan_host("a")
        cloud = net.add_cloud_host("cloud")
        got = []
        cloud.ip_handler = got.append
        a.send_ip(IpPacket(a.ip, cloud.ip, b"up"))
        net.sim.run(1.0)
        assert len(got) == 1
        assert net.router.lan_to_wan_packets == 1

    def test_wan_to_lan_delivery(self, net):
        a = net.add_lan_host("a")
        cloud = net.add_cloud_host("cloud")
        got = []
        a.ip_handler = got.append
        cloud.send_ip(IpPacket(cloud.ip, a.ip, b"down"))
        net.sim.run(1.0)
        assert len(got) == 1
        assert net.router.wan_to_lan_packets == 1

    def test_no_gateway_raises(self, sim, net):
        from repro.simnet.host import Host

        orphan = Host(sim, net.lan, ip="192.168.1.200", hostname="orphan")
        with pytest.raises(RuntimeError):
            orphan.send_ip(IpPacket(orphan.ip, "8.8.8.8", b"x"))

    def test_foreign_ip_dropped_without_handler(self, net):
        a = net.add_lan_host("a")
        b = net.add_lan_host("b")
        # Frame addressed to b's MAC but carrying a stranger's IP.
        from repro.simnet.packet import EthernetFrame

        a.nic.send(EthernetFrame(a.mac, b.mac, IpPacket(a.ip, "192.168.1.99", b"x")))
        net.sim.run(1.0)  # silently dropped

    def test_foreign_ip_handler_invoked(self, net):
        a = net.add_lan_host("a")
        b = net.add_lan_host("b")
        captured = []
        b.foreign_ip_handler = lambda packet, frame: captured.append(packet)
        from repro.simnet.packet import EthernetFrame

        a.nic.send(EthernetFrame(a.mac, b.mac, IpPacket(a.ip, "192.168.1.99", b"x")))
        net.sim.run(1.0)
        assert len(captured) == 1

    def test_frame_taps_see_everything(self, net):
        a = net.add_lan_host("a")
        b = net.add_lan_host("b")
        tapped = []
        b.frame_taps.append(tapped.append)
        a.send_ip(IpPacket(a.ip, b.ip, b"x"))
        net.sim.run(1.0)
        assert len(tapped) >= 2  # ARP traffic + data frame


class TestInternet:
    def test_unknown_destination_dropped(self, sim):
        inet = Internet(sim)
        inet.send(IpPacket("1.1.1.1", "9.9.9.9", b"x"))
        sim.run(1.0)

    def test_duplicate_ip_rejected(self, sim):
        inet = Internet(sim)
        inet.attach("1.1.1.1", lambda p: None)
        with pytest.raises(ValueError):
            inet.attach("1.1.1.1", lambda p: None)

    def test_latency(self, sim):
        inet = Internet(sim, latency=0.5)
        times = []
        inet.attach("1.1.1.1", lambda p: times.append(sim.now))
        inet.send(IpPacket("2.2.2.2", "1.1.1.1", b"x"))
        sim.run(1.0)
        assert times == [0.5]

    def test_subnet_prefix_validation(self, sim):
        inet = Internet(sim)
        with pytest.raises(ValueError):
            inet.attach_subnet("192.168.1", lambda p: None)

    def test_exact_host_beats_subnet(self, sim):
        inet = Internet(sim)
        host_hits, subnet_hits = [], []
        inet.attach_subnet("10.0.0.", subnet_hits.append)
        inet.attach("10.0.0.5", host_hits.append)
        inet.send(IpPacket("1.1.1.1", "10.0.0.5", b"x"))
        inet.send(IpPacket("1.1.1.1", "10.0.0.6", b"y"))
        sim.run(1.0)
        assert len(host_hits) == 1 and len(subnet_hits) == 1


class TestDns:
    def test_resolve_and_reverse(self):
        dns = DnsRegistry()
        dns.register("iot.example", "1.2.3.4")
        assert dns.resolve("iot.example") == "1.2.3.4"
        assert dns.reverse("1.2.3.4") == "iot.example"

    def test_unknown_domain(self):
        with pytest.raises(LookupError):
            DnsRegistry().resolve("nope.example")

    def test_reverse_unknown_is_none(self):
        assert DnsRegistry().reverse("9.9.9.9") is None

    def test_conflicting_registration_rejected(self):
        dns = DnsRegistry()
        dns.register("a.example", "1.1.1.1")
        with pytest.raises(ValueError):
            dns.register("a.example", "2.2.2.2")

    def test_idempotent_registration_ok(self):
        dns = DnsRegistry()
        dns.register("a.example", "1.1.1.1")
        dns.register("a.example", "1.1.1.1")
        assert dns.domains() == ["a.example"]
