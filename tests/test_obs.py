"""Metrics substrate: histogram accuracy, registry behaviour, JSONL round-trip,
and the guarantee that a run without observability records nothing."""

import math
import random

import pytest

from repro.obs import MetricsRegistry, StreamingHistogram
from repro.obs.metrics import _make_key
from repro.simnet.scheduler import Simulator
from repro.testbed import SmartHomeTestbed


def _reference_quantile(samples, q):
    """Nearest-rank quantile over the actual sorted samples.

    Uses the same 1-based nearest-rank convention as the histogram so the
    comparison isolates bucketing error from rank-convention error.
    """
    ordered = sorted(samples)
    rank = q * (len(ordered) - 1) + 1
    return ordered[math.ceil(rank) - 1]


class TestStreamingHistogram:
    def _hist(self, growth=1.05):
        return StreamingHistogram(_make_key("t", "h", {}), growth=growth)

    @pytest.mark.parametrize("distribution", ["uniform", "lognormal", "exponential"])
    def test_quantiles_match_sorted_sample_reference(self, distribution):
        rng = random.Random(42)
        if distribution == "uniform":
            samples = [rng.uniform(0.001, 100.0) for _ in range(5000)]
        elif distribution == "lognormal":
            samples = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
        else:
            samples = [rng.expovariate(1 / 30.0) for _ in range(5000)]
        hist = self._hist()
        for s in samples:
            hist.observe(s)
        for q in (0.50, 0.90, 0.95, 0.99):
            reference = _reference_quantile(samples, q)
            got = hist.quantile(q)
            # Bucketed estimate: within one growth factor of the true value.
            assert reference / hist.growth <= got <= reference * hist.growth, (
                f"{distribution} q={q}: {got} vs reference {reference}"
            )

    def test_zero_samples_are_counted_not_lost(self):
        hist = self._hist()
        for _ in range(90):
            hist.observe(0.0)
        for _ in range(10):
            hist.observe(50.0)
        assert hist.count == 100
        assert hist.zero_count == 90
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.99) == pytest.approx(50.0, rel=hist.growth - 1)

    def test_single_sample(self):
        hist = self._hist()
        hist.observe(3.0)
        assert hist.quantile(0.0) == pytest.approx(3.0, rel=hist.growth - 1)
        assert hist.quantile(1.0) == pytest.approx(3.0, rel=hist.growth - 1)
        assert hist.mean == 3.0

    def test_empty_histogram_quantile_is_zero(self):
        assert self._hist().quantile(0.5) == 0.0

    def test_quantile_never_exceeds_observed_max(self):
        # Regression: the geometric midpoint of the max observation's
        # bucket can exceed the max itself.  With growth 1.05, bucket 40
        # spans [7.040, 7.392) with midpoint 7.213 — so a single 7.05
        # observation used to report p99 ≈ 7.213 > max.
        hist = self._hist()
        hist.observe(7.05)
        assert hist.quantile(0.99) <= hist.max
        assert hist.quantile(0.99) == pytest.approx(7.05)

    def test_quantile_never_undercuts_observed_min(self):
        # The mirror case: 7.39 sits at the top of the same bucket, so the
        # midpoint 7.213 used to fall below the minimum.
        hist = self._hist()
        hist.observe(7.39)
        assert hist.quantile(0.0) >= hist.min
        assert hist.quantile(0.0) == pytest.approx(7.39)

    def test_quantiles_stay_inside_range_for_random_streams(self):
        rng = random.Random(11)
        hist = self._hist()
        for _ in range(500):
            hist.observe(rng.lognormvariate(0.0, 3.0))
            for q in (0.0, 0.25, 0.5, 0.99, 1.0):
                assert hist.min <= hist.quantile(q) <= hist.max

    def test_memory_is_bounded_by_buckets_not_samples(self):
        hist = self._hist()
        rng = random.Random(7)
        for _ in range(50_000):
            hist.observe(rng.uniform(0.01, 10.0))
        # log(1000) / log(1.05) ≈ 142 possible buckets over 3 decades.
        assert len(hist.buckets) < 200
        assert hist.count == 50_000


class TestMetricsRegistry:
    def test_get_or_create_returns_same_handle(self):
        reg = MetricsRegistry()
        a = reg.counter("tcp", "retransmissions", flow="x")
        b = reg.counter("tcp", "retransmissions", flow="x")
        assert a is b
        a.inc(3)
        assert reg.value("tcp", "retransmissions", flow="x") == 3

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.counter("host", "packets", host="a").inc()
        reg.counter("host", "packets", host="b").inc(5)
        assert reg.value("host", "packets", host="a") == 1
        assert reg.value("host", "packets", host="b") == 5
        assert len(reg.find("host", "packets")) == 2

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("c", "n")
        with pytest.raises(TypeError):
            reg.gauge("c", "n")

    def test_gauge_tracks_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("scheduler", "queue_depth")
        g.set(5)
        g.set(12)
        g.set(3)
        assert g.value == 3
        assert g.high_water == 12

    def test_untouched_metric_value_is_zero(self):
        assert MetricsRegistry().value("no", "such") == 0


class TestJsonlRoundTrip:
    def test_snapshot_round_trips_through_jsonl(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("tcp", "retransmissions").inc(7)
        gauge = reg.gauge("scheduler", "queue_depth")
        gauge.set(40)
        gauge.set(11)
        hist = reg.histogram("scheduler", "firing_latency", label="keepalive")
        rng = random.Random(3)
        samples = [rng.expovariate(1 / 5.0) for _ in range(1000)] + [0.0] * 20
        for s in samples:
            hist.observe(s)

        path = tmp_path / "metrics.jsonl"
        count = reg.export_jsonl(str(path))
        assert count == 3

        loaded = MetricsRegistry.import_jsonl(str(path))
        assert loaded.value("tcp", "retransmissions") == 7
        g2 = loaded.gauge("scheduler", "queue_depth")
        assert g2.value == 11
        assert g2.high_water == 40
        h2 = loaded.histogram("scheduler", "firing_latency", label="keepalive")
        assert h2.count == hist.count
        assert h2.zero_count == hist.zero_count
        for q in (0.5, 0.95, 0.99):
            assert h2.quantile(q) == hist.quantile(q)
        # The whole snapshot is identical after the round trip.
        assert loaded.snapshot() == reg.snapshot()

    def test_export_is_atomic_against_serialisation_crash(self, tmp_path, monkeypatch):
        # Regression: export used to open(path, "w") before serialising, so
        # a crash mid-serialisation truncated an existing good snapshot.
        import repro.obs.metrics as metrics_mod

        reg = MetricsRegistry()
        reg.counter("tcp", "retransmissions").inc(7)
        path = tmp_path / "metrics.jsonl"
        reg.export_jsonl(str(path))
        good = path.read_bytes()
        assert good

        def boom(*args, **kwargs):
            raise RuntimeError("unserialisable metric")

        monkeypatch.setattr(metrics_mod.json, "dumps", boom)
        with pytest.raises(RuntimeError, match="unserialisable"):
            reg.export_jsonl(str(path))
        assert path.read_bytes() == good  # previous snapshot untouched
        assert not list(tmp_path.glob(".metrics-*"))  # temp file cleaned up

    def test_render_table_lists_every_series(self):
        reg = MetricsRegistry()
        reg.counter("a", "x").inc()
        reg.histogram("b", "y").observe(1.0)
        rendered = reg.render_table()
        assert "a" in rendered and "x" in rendered
        assert "b" in rendered and "y" in rendered


class TestDisabledObservability:
    """With the default no-op observer nothing is recorded anywhere."""

    def test_plain_simulator_records_nothing(self):
        sim = Simulator(seed=1)
        fired = []
        sim.schedule(1.0, fired.append, 1, label="t")
        sim.run(2.0)
        assert fired == [1]
        assert sim.obs.enabled is False
        assert sim.obs.registry is None
        assert sim.obs.tracer is None

    def test_unobserved_testbed_records_nothing(self):
        home = SmartHomeTestbed(seed=5)
        home.add_device("SM1")
        home.settle()
        home.run(30.0)
        assert home.obs.enabled is False
        assert home.obs.registry is None
        assert home.obs.tracer is None
        assert home.sim.events_processed > 0

    def test_observed_testbed_profiles_the_scheduler(self):
        home = SmartHomeTestbed(seed=5, observe=True)
        home.add_device("SM1")
        home.settle()
        home.run(30.0)
        obs = home.obs
        assert obs.enabled
        assert obs.registry.value("scheduler", "events_processed") == (
            home.sim.events_processed
        )
        depth = obs.registry.gauge("scheduler", "queue_depth")
        assert depth.high_water >= 1
        latencies = obs.registry.find("scheduler", "firing_latency")
        assert latencies, "per-label firing-latency histograms expected"
        assert all(h.count > 0 for h in latencies)


class TestBudgetError:
    def test_budget_error_names_the_hot_timers(self):
        sim = Simulator(seed=0)
        sim.max_events = 500

        def spin_a():
            sim.schedule(0.001, spin_a, label="runaway-a")

        def spin_b():
            sim.schedule(0.002, spin_b, label="slow-b")

        spin_a()
        spin_b()
        with pytest.raises(RuntimeError) as err:
            sim.run()
        text = str(err.value)
        assert "event budget" in text
        assert "runaway-a" in text, "hottest timer label should be named"
        # The hottest label is listed before the cooler one.
        assert text.index("runaway-a") < text.index("slow-b")

    def test_budget_setter_keeps_normal_runs_untallied(self):
        sim = Simulator(seed=0)
        assert sim.max_events == 50_000_000
        sim.schedule(1.0, lambda: None, label="once")
        sim.run()
        assert sim._label_fires == {}
