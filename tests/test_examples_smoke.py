"""Every example script must run cleanly end to end (no rot)."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 6
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
