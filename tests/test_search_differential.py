"""Differential regression: the planner rediscovers the paper's attacks.

Table III is the ground truth the search is calibrated against: for every
one of the 11 PoC cases — re-encoded declaratively in
:mod:`repro.search.table3`, with no hand-written attack — the planner
must find a violating hold schedule within a small seeded budget, and
the differential oracles must classify the violation as the effect the
paper's table reports.  The corpus digest of the rediscoveries is pinned
as a golden; drift means the planner, the oracles, or the simulation
changed behaviour.

The acceptance half then turns the search loose on *generated* programs
and requires verified violations that are genuinely novel (not
digest-equal to any Table III rediscovery).
"""

from __future__ import annotations

import pytest

from repro.search import (
    TABLE3_EXPECTED,
    SearchConfig,
    plan_specs,
    run_search,
    schedule_from_lists,
    table3_spec,
    table3_specs,
)
from repro.search.corpus import corpus_digest
from repro.search.engine import run_program
from repro.search.oracles import classify, primary_class
from repro.search.spec import ProgramSpec


@pytest.fixture(scope="module")
def rediscoveries():
    """Planner outcomes over the 11 encoded cases (seed 0, small budget)."""
    return plan_specs(table3_specs(0), SearchConfig())


class TestTable3Rediscovery:
    @pytest.mark.parametrize("case", sorted(TABLE3_EXPECTED))
    def test_case_rediscovered_with_expected_class(self, rediscoveries, case):
        outcome = rediscoveries[case - 1]
        hit = outcome["hit"]
        assert hit is not None, f"case {case}: no violating schedule found"
        assert hit["violation"] == TABLE3_EXPECTED[case]
        assert hit["verified"] is True
        assert hit["schedule"], "a witness has at least one hold"

    def test_golden_corpus_digest(self, rediscoveries):
        # The pinned content address of the 11 rediscovered witnesses.
        # Do not update to make the test pass: drift means the planner,
        # shrinker, oracles, or simulation changed observable behaviour
        # — bump SEARCH_SCHEMA alongside any intentional change.
        hits = [o["hit"] for o in rediscoveries if o["hit"]]
        assert len(hits) == 11
        assert corpus_digest(hits) == "98739d7d2200d73e57463834d58d7cc7"

    def test_witnesses_replay_from_their_case_records(self, rediscoveries):
        # A corpus case is self-contained: rebuilding the program from
        # the embedded spec and re-running the embedded schedule must
        # reproduce the classified violation and the trace digests.
        for outcome in rediscoveries[:3]:
            hit = outcome["hit"]
            spec = ProgramSpec.from_dict(hit["spec"])
            baseline = run_program(spec)
            attacked = run_program(spec,
                                   schedule_from_lists(hit["schedule"]))
            assert baseline.digest() == hit["baseline_digest"]
            assert attacked.digest() == hit["attacked_digest"]
            assert primary_class(classify(baseline, attacked)) == \
                hit["violation"]
            assert not attacked.invariant_violations

    def test_case4_needs_the_staleness_policy(self):
        # Case 4's disabled execution exists only because the platform
        # discards events older than its staleness window; without the
        # policy the held event still fires late (a delay, not a kill).
        spec = table3_spec(4)
        assert spec.integration_staleness == 30.0
        relaxed = ProgramSpec.from_dict(
            {**spec.to_dict(), "integration_staleness": None}
        )
        [outcome] = plan_specs([relaxed], SearchConfig())
        hit = outcome["hit"]
        assert hit is not None and hit["violation"] == "delay"


class TestGeneratedSearchAcceptance:
    def test_novel_verified_violations_beyond_table3(self, rediscoveries,
                                                     tmp_path):
        # The acceptance bar: a seeded search over generated rule sets
        # must produce verified violation cases that are *novel* — not
        # digest-equal to any Table III rediscovery.  (The full-scale
        # 200-program sweep runs in the CI smoke; this is the
        # tier-1-sized version of the same claim.)
        table3_digests = {
            o["hit"]["case_digest"] for o in rediscoveries if o["hit"]
        }
        report = run_search(16, seed=0, jobs=1, cache=False, manifest=False,
                            corpus_dir=tmp_path)
        assert report.programs == 16
        novel = [h for h in report.hits
                 if h["case_digest"] not in table3_digests]
        assert len(novel) >= 5
        classes = {h["violation"] for h in novel}
        assert len(classes) >= 2, "novel hits span multiple violation classes"
        for hit in report.hits:
            assert hit["verified"] is True
            spec = ProgramSpec.from_dict(hit["spec"])
            assert spec.program_index >= 0  # generated, not an encoding
        assert len(report.case_paths) == len(report.hits)
