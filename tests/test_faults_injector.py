"""Unit tests for the fault-injection layer: profiles and the injector.

The injector's contract is *schedule determinism*: a fixed number of RNG
draws per eligible frame, whatever the outcomes, so two runs with the same
seed see the identical impairment schedule even when unrelated traffic
differs in content.
"""

from __future__ import annotations

import random

import pytest

from repro.faults.injector import DUPLICATE_GAP, FaultInjector, _drift_factor
from repro.faults.profiles import (
    PROFILES,
    FaultProfile,
    get_profile,
    resolve_profile,
)
from repro.simnet.packet import EthernetFrame, IpPacket
from repro.simnet.scheduler import Simulator
from repro.tcp.segment import make_segment


def _data_frame(n: int = 0, payload: bytes = b"payload-bytes") -> EthernetFrame:
    seg = make_segment(40000 + n, 8883, 100 + n, 1, "ACK", "PSH", payload=payload)
    pkt = IpPacket(src_ip="192.168.1.10", dst_ip="34.0.1.1", payload=seg)
    return EthernetFrame("02:00:00:00:00:01", "02:00:00:00:00:02", pkt)


def _arp_like_frame() -> EthernetFrame:
    # No TCP payload -> no src_port -> ineligible (control plane is reliable).
    pkt = IpPacket(src_ip="192.168.1.10", dst_ip="192.168.1.1", payload=b"ctl")
    return EthernetFrame("02:00:00:00:00:01", "ff:ff:ff:ff:ff:ff", pkt)


class _CountingRandom(random.Random):
    def __init__(self, seed: int) -> None:
        super().__init__(seed)
        self.calls = 0

    def random(self) -> float:
        self.calls += 1
        return super().random()


class TestProfiles:
    def test_named_profiles_exist(self):
        for name in ("ideal", "lossy", "bursty", "jittery", "chaotic"):
            assert name in PROFILES
            assert get_profile(name).name == name

    def test_ideal_is_not_impaired(self):
        assert not get_profile("ideal").impaired
        assert get_profile("lossy").impaired

    def test_parse_named(self):
        assert FaultProfile.parse("lossy") == get_profile("lossy")

    def test_parse_spec(self):
        p = FaultProfile.parse("loss=0.05,jitter=0.01")
        assert p.loss == 0.05 and p.jitter == 0.01

    def test_parse_named_with_overrides(self):
        p = FaultProfile.parse("lossy,jitter=0.02")
        assert p.loss == get_profile("lossy").loss and p.jitter == 0.02

    def test_parse_rejects_unknown_field(self):
        with pytest.raises(ValueError):
            FaultProfile.parse("warp=0.5")

    def test_validation_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultProfile(name="bad", loss=1.5)

    def test_resolve_profile(self):
        assert resolve_profile(None) is None
        assert resolve_profile("bursty") == get_profile("bursty")
        prof = FaultProfile(name="x", loss=0.1)
        assert resolve_profile(prof) is prof

    def test_describe_mentions_active_impairments(self):
        text = get_profile("chaotic").describe()
        assert "loss" in text and "chaotic" in text


class TestInjectorDeterminism:
    def test_same_seed_same_plan(self):
        outcomes = []
        for _ in range(2):
            sim = Simulator(seed=0)
            inj = FaultInjector(sim, get_profile("chaotic"), seed=42)
            plans = [inj.plan(_data_frame(i), 0.001) for i in range(300)]
            outcomes.append(
                ([len(p) for p in plans], [d for p in plans for d, _ in p], dict(inj.stats))
            )
        assert outcomes[0] == outcomes[1]

    def test_different_seed_different_schedule(self):
        results = []
        for seed in (1, 2):
            sim = Simulator(seed=0)
            inj = FaultInjector(sim, get_profile("chaotic"), seed=seed)
            results.append([len(inj.plan(_data_frame(i), 0.001)) for i in range(300)])
        assert results[0] != results[1]

    def test_fixed_draws_per_eligible_frame(self):
        sim = Simulator(seed=0)
        inj = FaultInjector(sim, get_profile("chaotic"), seed=7)
        inj.rng = _CountingRandom(7)
        for i in range(50):
            inj.plan(_data_frame(i), 0.001)
        assert inj.rng.calls == 50 * 9

    def test_ineligible_frames_consume_no_draws(self):
        sim = Simulator(seed=0)
        inj = FaultInjector(sim, get_profile("chaotic"), seed=7)
        inj.rng = _CountingRandom(7)
        plan = inj.plan(_arp_like_frame(), 0.002)
        assert inj.rng.calls == 0
        assert plan == [(0.002, _arp_like_frame())] or len(plan) == 1
        assert inj.stats["frames_seen"] == 0


class TestInjectorImpairments:
    def test_certain_loss_drops_everything(self):
        sim = Simulator(seed=0)
        inj = FaultInjector(sim, FaultProfile(name="dead", loss=1.0), seed=1)
        assert inj.plan(_data_frame(), 0.001) == []
        assert inj.stats["dropped_random"] == 1

    def test_certain_duplication_yields_two_copies(self):
        sim = Simulator(seed=0)
        inj = FaultInjector(sim, FaultProfile(name="echo", duplicate=1.0), seed=1)
        plan = inj.plan(_data_frame(), 0.001)
        assert len(plan) == 2
        assert plan[1][0] == pytest.approx(plan[0][0] + DUPLICATE_GAP)
        assert plan[0][1] is plan[1][1]

    def test_corrupt_deliver_flips_exactly_one_byte(self):
        sim = Simulator(seed=0)
        profile = FaultProfile(name="bitrot", corrupt=1.0, corrupt_mode="deliver")
        inj = FaultInjector(sim, profile, seed=1)
        original = _data_frame(payload=b"AAAABBBB")
        [(_, mangled)] = inj.plan(original, 0.001)
        a = original.payload.payload.payload
        b = mangled.payload.payload.payload
        assert len(a) == len(b)
        assert sum(x != y for x, y in zip(a, b)) == 1
        assert inj.stats["corrupted_delivered"] == 1

    def test_corrupt_drop_mode_discards(self):
        sim = Simulator(seed=0)
        profile = FaultProfile(name="fcs", corrupt=1.0, corrupt_mode="drop")
        inj = FaultInjector(sim, profile, seed=1)
        assert inj.plan(_data_frame(), 0.001) == []
        assert inj.stats["dropped_corrupt"] == 1

    def test_jitter_never_reduces_delay(self):
        sim = Simulator(seed=0)
        inj = FaultInjector(sim, FaultProfile(name="j", jitter=0.05), seed=1)
        for i in range(100):
            for delay, _ in inj.plan(_data_frame(i), 0.001):
                assert 0.001 <= delay <= 0.001 + 0.05 + 1e-9

    def test_drift_factor_is_per_host_deterministic(self):
        assert _drift_factor("02:00:00:00:00:01") == _drift_factor("02:00:00:00:00:01")
        assert _drift_factor("02:00:00:00:00:01") != _drift_factor("02:00:00:00:00:02")
        assert 0.5 <= _drift_factor("02:00:00:00:00:01") <= 1.5

    def test_burst_state_advances_and_drops(self):
        sim = Simulator(seed=0)
        profile = FaultProfile(
            name="storm", burst_enter=1.0, burst_exit=0.0, burst_loss=1.0
        )
        inj = FaultInjector(sim, profile, seed=1)
        inj.plan(_data_frame(0), 0.001)  # enters the burst state
        assert inj.plan(_data_frame(1), 0.001) == []
        assert inj.stats["dropped_burst"] >= 1

    def test_summary_mentions_counts(self):
        sim = Simulator(seed=0)
        inj = FaultInjector(sim, FaultProfile(name="dead", loss=1.0), seed=1)
        inj.plan(_data_frame(), 0.001)
        assert "dropped_random" in inj.summary()
