"""Campaign execution, timeline analysis, and the battery model."""

from __future__ import annotations

import pytest

from repro.analysis.timeline import build_timeline, ordering_violations, render_timeline
from repro.automation import parse_rule
from repro.core import PhantomDelayAttacker, TimeoutBehavior
from repro.core.attacks import AttackCampaign, AttackPlanner, render_campaign
from repro.countermeasures.ack_timeout import battery_life_days
from repro.devices.profiles import CATALOGUE
from repro.experiments._util import run_until
from repro.testbed import SmartHomeTestbed


@pytest.fixture
def planned_home():
    tb = SmartHomeTestbed(seed=177)
    contact = tb.add_device("C2")
    lock = tb.add_device("LK1")
    base = tb.add_device("HS1")
    rules = [
        parse_rule("WHEN c2 contact.closed THEN COMMAND lk1 lock", "auto-lock"),
        parse_rule('WHEN hs1 security.triggered THEN NOTIFY push "ALARM"', "alarm-push"),
    ]
    tb.install_rules(rules)
    tb.settle(8.0)
    attacker = PhantomDelayAttacker.deploy(tb)
    profiles = {
        "c2": CATALOGUE.get("C2"),
        "lk1": CATALOGUE.get("LK1"),
        "hs1": CATALOGUE.get("HS1"),
    }
    plan = AttackPlanner(profiles).analyze(rules)
    return tb, contact, lock, base, attacker, plan


class TestCampaign:
    def test_plan_armed_and_executed(self, planned_home):
        tb, contact, lock, base, attacker, plan = planned_home
        campaign = AttackCampaign(tb, attacker)
        report = campaign.arm(plan)
        assert len(report.armed) >= 3  # trigger delays + command delay
        tb.run(40.0)

        lock.state["lock"] = "unlocked"
        contact.stimulate("closed")        # auto-lock rule under attack
        base.stimulate("triggered")        # alarm push under attack
        tb.run(90.0)

        triggered = report.triggered()
        assert len(triggered) >= 2
        assert report.all_stealthy()
        assert tb.alarms.silent
        for armed in triggered:
            assert armed.operation.achieved_delay > 5.0

    def test_infeasible_opportunities_skipped(self, planned_home):
        tb, _contact, _lock, _base, attacker, _plan = planned_home
        from repro.core.attacks.planner import AttackOpportunity

        bogus = AttackOpportunity(
            rule_id="x", rule_text="x", attack_type="spurious-execution",
            delay_target="c2", direction="event", window=(1.0, 2.0),
            severity="low", feasible=False, mechanism="m", caveat="shared session",
        )
        report = AttackCampaign(tb, attacker).arm([bogus])
        assert report.armed == []
        assert report.skipped[0][1] == "shared session"

    def test_missing_device_skipped(self, planned_home):
        tb, _contact, _lock, _base, attacker, _plan = planned_home
        from repro.core.attacks.planner import AttackOpportunity

        ghost = AttackOpportunity(
            rule_id="x", rule_text="x", attack_type="action-delay",
            delay_target="ghost", direction="event", window=(1.0, 2.0),
            severity="low", feasible=True, mechanism="m",
        )
        report = AttackCampaign(tb, attacker).arm([ghost])
        assert report.skipped[0][1] == "device not present"

    def test_render(self, planned_home):
        tb, _c, _l, _b, attacker, plan = planned_home
        report = AttackCampaign(tb, attacker).arm(plan)
        text = render_campaign(report)
        assert "Campaign" in text and "auto-lock" in text


class TestTimeline:
    def test_benign_run_has_no_ordering_violations(self):
        tb = SmartHomeTestbed(seed=179)
        contact = tb.add_device("C2")
        tb.settle(8.0)
        for value in ("open", "closed", "open"):
            contact.stimulate(value)
            tb.run(5.0)
        assert ordering_violations(tb) == []

    def test_attack_produces_ordering_violation(self):
        tb = SmartHomeTestbed(seed=181)
        contact = tb.add_device("C2")    # held
        plug = tb.add_device("P2")       # flows freely
        hub = tb.devices["h1"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(hub.ip)
        tb.run(35.0)
        operation = attacker.delay_next_event(
            hub.ip, TimeoutBehavior.from_profile(hub.profile),
            duration=15.0, trigger_size=355,
        )
        contact.stimulate("open")        # generated first, arrives second
        tb.run(3.0)
        plug.stimulate("on")             # generated second, arrives first
        run_until(tb.sim, lambda: operation.released_at is not None, 60.0)
        tb.run(3.0)
        violations = ordering_violations(tb)
        assert violations
        assert "c2:contact.open" in violations[0][1] or "c2" in violations[0][1]

    def test_timeline_entries_sorted_and_complete(self):
        tb = SmartHomeTestbed(seed=183)
        contact = tb.add_device("C5")
        tb.install_rule(parse_rule('WHEN c5 contact.open THEN NOTIFY push "door"'))
        tb.settle(8.0)
        contact.stimulate("open")
        tb.run(5.0)
        entries = build_timeline(tb)
        kinds = {e.kind for e in entries}
        assert {"physical", "server-event", "rule", "notify"} <= kinds
        times = [e.ts for e in entries]
        assert times == sorted(times)

    def test_render_timeline(self):
        tb = SmartHomeTestbed(seed=185)
        contact = tb.add_device("C5")
        tb.settle(8.0)
        contact.stimulate("open")
        tb.run(2.0)
        text = render_timeline(tb)
        assert "physical" in text and "contact=open" in text


class TestBatteryModel:
    def test_shorter_keepalive_drains_faster(self):
        profile = CATALOGUE.get("HS3")
        lives = [battery_life_days(profile, p) for p in (120.0, 30.0, 10.0, 2.0)]
        assert lives == sorted(lives, reverse=True)

    def test_sub_2s_keepalive_under_a_month(self):
        # The VII-A impracticality claim for battery devices.
        assert battery_life_days(CATALOGUE.get("HS3"), 2.0) < 31.0

    def test_no_keepalive_is_sleep_bound(self):
        life = battery_life_days(CATALOGUE.get("M7"), None)
        assert life > 365.0  # years of sleep-only draw
