"""Cloud servers (endpoint/integration/local) and the automation engine."""

from __future__ import annotations

import pytest

from repro.automation.dsl import RuleSyntaxError, parse_rule, parse_rules
from repro.automation.engine import AutomationEngine
from repro.automation.rules import (
    CommandAction,
    Condition,
    EventPattern,
    NotifyAction,
    Rule,
)
from repro.simnet.scheduler import Simulator
from repro.testbed import SmartHomeTestbed


def _engine(trigger_max_age=None):
    sim = Simulator(seed=4)
    commands, notes = [], []
    engine = AutomationEngine(
        sim,
        command_sink=lambda d, c, data: commands.append((d, c)),
        notify_sink=lambda m, ch: notes.append((m, ch)),
        trigger_max_age=trigger_max_age,
    )
    return sim, engine, commands, notes


class TestEngine:
    def test_unconditional_rule_fires(self):
        sim, engine, commands, _ = _engine()
        engine.install_rule(
            Rule("r1", EventPattern("c1", "contact.open"), CommandAction("l1", "on"))
        )
        engine.handle_event("c1", "contact.open", device_time=0.0)
        assert commands == [("l1", "on")]

    def test_non_matching_event_ignored(self):
        sim, engine, commands, _ = _engine()
        engine.install_rule(
            Rule("r1", EventPattern("c1", "contact.open"), CommandAction("l1", "on"))
        )
        engine.handle_event("c1", "contact.closed", device_time=0.0)
        engine.handle_event("c2", "contact.open", device_time=0.0)
        assert commands == []

    def test_condition_gates_action(self):
        sim, engine, commands, _ = _engine()
        engine.install_rule(
            Rule(
                "r1",
                EventPattern("m1", "motion.active"),
                CommandAction("h1", "on"),
                condition=Condition("c1", "contact", "closed"),
            )
        )
        engine.handle_event("m1", "motion.active", device_time=0.0)
        assert commands == []  # condition unknown -> not met
        engine.handle_event("c1", "contact.closed", device_time=0.0)
        engine.handle_event("m1", "motion.active", device_time=0.0)
        assert commands == [("h1", "on")]

    def test_shadow_updates_in_arrival_order(self):
        sim, engine, _, _ = _engine()
        engine.handle_event("c1", "contact.open", device_time=5.0)
        engine.handle_event("c1", "contact.closed", device_time=1.0)  # older, arrives later
        # Arrival order wins: this is exactly the staleness the attack abuses.
        assert engine.state_of("c1", "contact") == "closed"

    def test_notify_action(self):
        sim, engine, _, notes = _engine()
        engine.install_rule(
            Rule("r1", EventPattern("s1", "smoke.detected"), NotifyAction("fire!", "push"))
        )
        engine.handle_event("s1", "smoke.detected", device_time=0.0)
        assert notes == [("fire!", "push")]

    def test_firing_log_records_condition_result(self):
        sim, engine, _, _ = _engine()
        engine.install_rule(
            Rule(
                "r1",
                EventPattern("m1", "motion.active"),
                CommandAction("h1", "on"),
                condition=Condition("c1", "contact", "closed"),
            )
        )
        engine.handle_event("m1", "motion.active", device_time=0.0)
        assert len(engine.firings) == 1
        assert not engine.firings[0].condition_met
        assert not engine.firings[0].action_taken

    def test_duplicate_rule_id_rejected(self):
        sim, engine, _, _ = _engine()
        rule = Rule("r1", EventPattern("a", "b.c"), CommandAction("d", "e"))
        engine.install_rule(rule)
        with pytest.raises(ValueError):
            engine.install_rule(rule)

    def test_remove_rule(self):
        sim, engine, commands, _ = _engine()
        engine.install_rule(
            Rule("r1", EventPattern("c1", "contact.open"), CommandAction("l1", "on"))
        )
        engine.remove_rule("r1")
        engine.handle_event("c1", "contact.open", device_time=0.0)
        assert commands == []

    def test_stale_trigger_suppressed_with_timestamp_checking(self):
        sim, engine, commands, _ = _engine(trigger_max_age=10.0)
        engine.install_rule(
            Rule("r1", EventPattern("c1", "contact.open"), CommandAction("l1", "on"))
        )
        sim.run_until(100.0)
        engine.handle_event("c1", "contact.open", device_time=50.0)  # 50 s stale
        assert commands == []
        assert len(engine.stale_triggers_suppressed) == 1
        # But the shadow still updated (the paper's asymmetry).
        assert engine.state_of("c1", "contact") == "open"

    def test_fresh_trigger_passes_timestamp_checking(self):
        sim, engine, commands, _ = _engine(trigger_max_age=10.0)
        engine.install_rule(
            Rule("r1", EventPattern("c1", "contact.open"), CommandAction("l1", "on"))
        )
        sim.run_until(100.0)
        engine.handle_event("c1", "contact.open", device_time=95.0)
        assert commands == [("l1", "on")]

    def test_event_without_dot_does_not_update_shadow(self):
        sim, engine, _, _ = _engine()
        engine.handle_event("c1", "heartbeat", device_time=0.0)
        assert engine.shadow == {}


class TestDsl:
    def test_simple_rule(self):
        rule = parse_rule("WHEN c1 contact.open THEN COMMAND lk1 unlock")
        assert rule.trigger == EventPattern("c1", "contact.open")
        assert rule.condition is None
        assert rule.action == CommandAction("lk1", "unlock")

    def test_conditional_rule(self):
        rule = parse_rule(
            "WHEN c1 contact.open IF pr1.presence == present THEN COMMAND lk1 unlock"
        )
        assert rule.condition == Condition("pr1", "presence", "present")

    def test_notify_rule_with_quotes(self):
        rule = parse_rule('WHEN s1 smoke.detected THEN NOTIFY push "Fire in the kitchen"')
        assert rule.action == NotifyAction("Fire in the kitchen", "push")

    def test_rule_id_assigned(self):
        a = parse_rule("WHEN a b.c THEN COMMAND d e")
        b = parse_rule("WHEN a b.c THEN COMMAND d e")
        assert a.rule_id != b.rule_id

    def test_explicit_rule_id(self):
        assert parse_rule("WHEN a b.c THEN COMMAND d e", rule_id="mine").rule_id == "mine"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "WHENEVER a b THEN COMMAND c d",
            "WHEN a b.c IF x == y THEN COMMAND d e",  # bad condition target
            "WHEN a b.c IF x.y != z THEN COMMAND d e",  # bad operator
            "WHEN a b.c THEN EXPLODE d",
            "WHEN a b.c THEN COMMAND",  # truncated
        ],
    )
    def test_bad_rules_rejected(self, bad):
        with pytest.raises(RuleSyntaxError):
            parse_rule(bad)

    def test_parse_rules_block(self):
        rules = parse_rules(
            """
            # burglary alerts
            WHEN c1 contact.open THEN NOTIFY voice "door"

            WHEN m1 motion.active THEN NOTIFY push "motion"
            """
        )
        assert len(rules) == 2


class TestEndpointServer:
    def test_half_open_bookkeeping(self):
        tb = SmartHomeTestbed(seed=6)
        tb.add_device("P2")
        tb.settle(5.0)
        endpoint = tb.endpoints["kasa"]
        assert endpoint.half_open_count("p2") == 1
        assert endpoint.device_appears_online("p2")

    def test_unknown_device_command_returns_none(self):
        tb = SmartHomeTestbed(seed=6)
        tb.add_device("P2")
        tb.settle(5.0)
        assert tb.endpoints["kasa"].send_command("ghost", "on") is None

    def test_child_online_via_hub(self):
        tb = SmartHomeTestbed(seed=6)
        tb.add_device("C2")
        tb.settle(5.0)
        assert tb.endpoints["smartthings"].device_appears_online("c2")

    def test_duplicate_registration_rejected(self):
        tb = SmartHomeTestbed(seed=6)
        tb.add_device("P2")
        with pytest.raises(ValueError):
            tb.endpoints["kasa"].register_device("p2", tb.devices["p2"].profile)

    def test_events_from_filters_by_source(self):
        tb = SmartHomeTestbed(seed=6)
        c2 = tb.add_device("C2")
        m2 = tb.add_device("M2")
        tb.settle(5.0)
        c2.stimulate("open")
        m2.stimulate("active")
        tb.run(2.0)
        endpoint = tb.endpoints["smartthings"]
        assert [m.name for _, m in endpoint.events_from("c2")] == ["contact.open"]
        assert [m.name for _, m in endpoint.events_from("m2")] == ["motion.active"]


class TestIntegrationServer:
    def test_event_flows_to_engine_with_c2c_latency(self):
        tb = SmartHomeTestbed(seed=6)
        c2 = tb.add_device("C2")
        tb.settle(5.0)
        c2.stimulate("open")
        tb.run(2.0)
        log = tb.integration.engine.event_log
        assert [e.event_name for e in log] == ["contact.open"]
        # c2c latency applied on top of the endpoint arrival.
        assert log[0].received_at > log[0].device_time

    def test_cross_vendor_rule(self):
        tb = SmartHomeTestbed(seed=6)
        c5 = tb.add_device("C5")   # tuya
        tb.add_device("P2")        # kasa
        tb.install_rule(parse_rule("WHEN c5 contact.open THEN COMMAND p2 on"))
        tb.settle(5.0)
        c5.stimulate("open")
        tb.run(3.0)
        assert tb.devices["p2"].attribute_value == "on"

    def test_notifications_deliver_with_latency(self):
        tb = SmartHomeTestbed(seed=6)
        note = tb.notifier.deliver("hello", "push")
        tb.run(1.0)
        assert note.delivered
        assert note.delivered_at == pytest.approx(note.sent_at + 0.5)

    def test_first_delivery_time(self):
        tb = SmartHomeTestbed(seed=6)
        tb.notifier.deliver("alpha beta", "push")
        tb.run(1.0)
        assert tb.notifier.first_delivery_time("beta") is not None
        assert tb.notifier.first_delivery_time("gamma") is None


class TestLocalServer:
    def test_local_rule_execution(self):
        tb = SmartHomeTestbed(seed=6)
        motion = tb.add_device("M9", table=2)
        bulb = tb.add_device("L2", table=2)
        tb.install_rule(
            parse_rule("WHEN m9-hk motion.active THEN COMMAND l2-hk on"), local=True
        )
        tb.settle(5.0)
        motion.stimulate("active")
        tb.run(3.0)
        assert bulb.attribute_value == "on"

    def test_local_events_not_acked(self):
        tb = SmartHomeTestbed(seed=6)
        motion = tb.add_device("M9", table=2)
        tb.settle(5.0)
        motion.stimulate("active")
        tb.run(3.0)
        assert motion.client.stats["event_acks"] == 0

    def test_duplicate_pairing_rejected(self):
        tb = SmartHomeTestbed(seed=6)
        motion = tb.add_device("M9", table=2)
        with pytest.raises(ValueError):
            tb.local_server.register_device("m9-hk", motion.profile)
