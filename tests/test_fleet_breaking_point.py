"""Breaking-point ladder regression: ordering, attribution, rendering.

A miniature 4 -> 8 -> 16 step-load run with tiny budgets, checking that the
ladder is monotone, that the stop condition is attributed *in the tripping
step's manifest* (not just in the in-process report), and that
``observe report`` renders that manifest.
"""

from __future__ import annotations

from repro.analysis.reporting import render_manifest
from repro.cli import main
from repro.experiments.breaking_point import (
    REASON_EVENT_BUDGET,
    REASON_MAX_STEPS,
    REASON_SUCCESS_FLOOR,
    REASON_WALL_CLOCK,
    run_breaking_point,
    step_campaign,
)
from repro.obs.manifest import RunManifest


def metric(manifest: RunManifest, name: str, **labels) -> float | None:
    for record in manifest.metrics:
        if (record["component"] == "breaking_point"
                and record["name"] == name
                and record.get("labels", {}) == labels):
            return record["value"]
    return None


class TestMiniatureLadder:
    def test_event_budget_trips_at_sixteen_homes(self):
        report = run_breaking_point(
            start_homes=4, max_steps=3, seed=0, jobs=1,
            step_event_limit=2500, cache=False,
        )
        assert [s.homes for s in report.steps] == [4, 8, 16]
        assert [s.step for s in report.steps] == [0, 1, 2]
        # Monotone: populations strictly double, events grow with them.
        homes = [s.homes for s in report.steps]
        assert homes == sorted(homes)
        assert all(b == 2 * a for a, b in zip(homes, homes[1:]))
        events = [s.events for s in report.steps]
        assert events == sorted(events)
        assert [s.stop_reason for s in report.steps] == [
            None, None, REASON_EVENT_BUDGET,
        ]
        assert report.stop_reason == REASON_EVENT_BUDGET
        assert report.breaking_point == 16
        assert report.max_sustained == 8

    def test_one_manifest_per_step_with_attribution(self):
        report = run_breaking_point(
            start_homes=4, max_steps=3, seed=0, jobs=1,
            step_event_limit=2500, cache=False, manifest=True,
        )
        paths = [s.manifest_path for s in report.steps]
        assert all(p is not None and p.exists() for p in paths)
        assert len(set(paths)) == 3
        assert paths[0].name == step_campaign("breaking-point", 4) + ".jsonl"

        # Passing steps are attributed as such...
        passing = RunManifest.load(paths[0])
        assert metric(passing, "stopped", reason="pass") == 1
        assert metric(passing, "homes") == 4
        assert metric(passing, "step") == 0
        # ...and the tripping step carries the stop condition.
        tripped = RunManifest.load(paths[-1])
        assert metric(tripped, "stopped", reason=REASON_EVENT_BUDGET) == 1
        assert metric(tripped, "stopped", reason="pass") is None
        assert metric(tripped, "homes") == 16
        assert metric(tripped, "homes_completed") == 16
        assert metric(tripped, "step") == 2

    def test_success_floor_attribution(self):
        report = run_breaking_point(
            start_homes=4, max_steps=3, seed=0, jobs=1,
            home_event_budget=400, success_floor=0.95, cache=False,
        )
        assert report.stop_reason == REASON_SUCCESS_FLOOR
        assert report.breaking_point == 8
        tripped = report.steps[-1]
        assert tripped.homes == 8
        assert tripped.success_rate < 0.95
        manifest = RunManifest.load(tripped.manifest_path)
        assert metric(manifest, "stopped", reason=REASON_SUCCESS_FLOOR) == 1
        assert metric(manifest, "homes_failed") == 2

    def test_wall_clock_trips_immediately(self):
        report = run_breaking_point(
            start_homes=4, max_steps=3, seed=0, jobs=1,
            wall_limit=0.0, cache=False, manifest=False,
        )
        assert report.stop_reason == REASON_WALL_CLOCK
        assert len(report.steps) == 1
        assert report.steps[0].manifest_path is None

    def test_ladder_exhaustion_is_not_a_breaking_point(self):
        report = run_breaking_point(
            start_homes=4, max_steps=2, seed=0, jobs=1, cache=False,
        )
        assert report.stop_reason == REASON_MAX_STEPS
        assert report.breaking_point is None
        assert report.max_sustained == 8
        assert all(s.passed for s in report.steps)

    def test_ladder_is_deterministic(self):
        kwargs = dict(start_homes=4, max_steps=2, seed=5, jobs=1, cache=False,
                      manifest=False)
        a = run_breaking_point(**kwargs)
        b = run_breaking_point(**kwargs)
        assert [s.fleet_digest for s in a.steps] == [s.fleet_digest for s in b.steps]
        assert [s.events for s in a.steps] == [s.events for s in b.steps]


class TestRendering:
    def test_report_renders_outcomes(self):
        report = run_breaking_point(
            start_homes=4, max_steps=3, seed=0, jobs=1,
            step_event_limit=2500, cache=False, manifest=False,
        )
        text = report.render()
        assert "breaking point: 16 homes (event-budget)" in text
        assert "max sustained: 8 homes" in text
        assert text.count("pass") == 2

    def test_observe_report_renders_step_manifest(self, capsys):
        report = run_breaking_point(
            start_homes=4, max_steps=1, seed=0, jobs=1,
            wall_limit=0.0, cache=False, manifest=True,
        )
        path = report.steps[0].manifest_path
        assert main(["observe", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "breaking_point/stopped[reason=wall-clock]" in out
        assert "fleet/homes" in out

    def test_render_manifest_helper_directly(self):
        report = run_breaking_point(
            start_homes=4, max_steps=1, seed=0, jobs=1, cache=False,
            manifest=True,
        )
        text = render_manifest(RunManifest.load(report.steps[0].manifest_path))
        assert "breaking_point" in text

    def test_cli_breaking_point_subcommand(self, capsys):
        assert main([
            "--seed", "0", "--no-cache", "fleet", "breaking-point",
            "--start-homes", "4", "--max-steps", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "no breaking point within 2 step(s)" in out
        assert out.count("manifest:") == 2
