"""Stress and property tests across the transport substrates.

These hammer the layers with randomised loss, chunking, and delays and
assert the end-to-end guarantees that the rest of the reproduction takes
for granted.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.attacker import PhantomDelayAttacker
from repro.simnet.link import Lan
from repro.simnet.packet import EthernetFrame, IpPacket
from repro.simnet.scheduler import Simulator
from repro.tcp.segment import TcpSegment
from repro.tcp.stack import TcpStack
from repro.testbed import SmartHomeTestbed


def _lossy_pair(drop_pattern: list[bool], seed: int = 5):
    """Two TCP stacks on a pipe that drops data segments per the pattern."""
    sim = Simulator(seed=seed)
    lan = Lan(sim)
    state = {"i": 0}

    def loss(packet) -> bool:
        segment = packet.payload
        if not isinstance(segment, TcpSegment) or not segment.payload:
            return False
        idx = state["i"]
        state["i"] += 1
        return drop_pattern[idx % len(drop_pattern)]

    class _Host:
        def __init__(self, ip, name):
            self.sim, self.ip, self.hostname = sim, ip, name
            self.ip_handler = None
            self.frame_taps = []
            self.nic = lan.attach(self._on_frame)

        def send_ip(self, packet):
            if loss(packet):
                return
            other = b if self is a else a
            self.nic.send(EthernetFrame(self.nic.mac, other.nic.mac, packet))

        def _on_frame(self, frame):
            payload = frame.payload
            if self.ip_handler and isinstance(payload, IpPacket) and payload.dst_ip == self.ip:
                self.ip_handler(payload)

    a = _Host("10.0.0.1", "a")
    b = _Host("10.0.0.2", "b")
    return sim, TcpStack(a), TcpStack(b)


class TestTcpUnderLoss:
    @given(
        pattern=st.lists(st.booleans(), min_size=3, max_size=12).filter(
            lambda p: sum(p) < len(p) * 0.5  # < 50% loss: recoverable
        ),
        blob_size=st.integers(100, 5000),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_data_delivered_despite_loss(self, pattern, blob_size):
        sim, a, b = _lossy_pair(pattern)
        received = []
        b.listen(80, lambda c: setattr(c.callbacks, "on_data", lambda cc, d: received.append(d)))
        conn = a.connect("10.0.0.2", 80)
        sim.run(5.0)
        if conn.state != "ESTABLISHED":
            sim.run(60.0)
        blob = bytes(i % 251 for i in range(blob_size))
        conn.send(blob)
        sim.run(200.0)
        assert b"".join(received) == blob

    def test_alternating_loss_heavy_retransmission(self):
        sim, a, b = _lossy_pair([True, False])
        received = []
        b.listen(80, lambda c: setattr(c.callbacks, "on_data", lambda cc, d: received.append(d)))
        conn = a.connect("10.0.0.2", 80)
        sim.run(30.0)
        conn.send(b"x" * 4000)
        sim.run(300.0)
        assert len(b"".join(received)) == 4000
        assert conn.stats["retransmissions"] >= 1


class TestHoldReleaseProperty:
    @given(
        durations=st.lists(st.floats(min_value=1.0, max_value=14.0), min_size=1, max_size=4)
    )
    @settings(max_examples=15, deadline=None)
    def test_repeated_bounded_holds_never_alarm(self, durations):
        """Any sequence of holds inside the safe window stays silent and
        delivers every event in order."""
        tb = SmartHomeTestbed(seed=int(sum(durations) * 1000) % 10000)
        contact = tb.add_device("C2")
        hub = tb.devices["h1"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(hub.ip)
        tb.run(35.0)
        expected = []
        for i, duration in enumerate(durations):
            value = "open" if i % 2 == 0 else "closed"
            expected.append(f"contact.{value}")
            hold = attacker.hijacker.hold_events(hub.ip, trigger_size=355)
            contact.stimulate(value)
            tb.run(duration)
            attacker.hijacker.release(hold)
            tb.run(3.0)
        names = [m.name for _, m in tb.endpoints["smartthings"].events_from("c2")]
        assert names == expected
        assert tb.alarms.silent


class TestHijackerEdgeCases:
    def test_suppress_close_leaves_half_open(self):
        tb = SmartHomeTestbed(seed=161)
        keypad = tb.add_device("HS3")
        endpoint = tb.endpoints["simplisafe"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(keypad.host.ip)
        tb.run(30.0)
        hold = attacker.hijacker.hold_events(keypad.host.ip, trigger_size=380)
        hold.suppress_close = True
        keypad.stimulate("code-entered")
        tb.run(25.0)  # past the 20 s event-ack timeout: keypad closes
        assert hold.end_reason == "close-suppressed"
        # The server side never saw the FIN: its session is still live.
        tb.run(1.0)
        assert endpoint.half_open_count("hs3") >= 2

    def test_non_tcp_traffic_forwarded(self):
        tb = SmartHomeTestbed(seed=163)
        contact = tb.add_device("C5")
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(contact.host.ip)
        tb.run(1.0)
        # Raw (non-TCP) IP packet through the hijacked path.
        contact.host.send_ip(IpPacket(contact.host.ip, "34.0.1.1", b"raw-datagram"))
        tb.run(1.0)
        assert attacker.hijacker.stats["forwarded"] >= 1

    def test_two_holds_same_flow_first_wins(self):
        tb = SmartHomeTestbed(seed=165)
        contact = tb.add_device("C2")
        hub = tb.devices["h1"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(hub.ip)
        tb.run(35.0)
        first = attacker.hijacker.hold_events(hub.ip, trigger_size=355)
        second = attacker.hijacker.hold_events(hub.ip, trigger_size=355)
        contact.stimulate("open")
        tb.run(2.0)
        assert first.holding and second.triggered_at is None
        attacker.hijacker.release(first)
        attacker.hijacker.cancel(second)
        tb.run(2.0)
        assert len(tb.endpoints["smartthings"].events_from("c2")) == 1


class TestSimulationScale:
    def test_fifteen_device_home_day_long_idle(self):
        """A bigger home idles for a simulated hour without a single alarm
        or spurious reconnect — the substrate is stable at scale."""
        tb = SmartHomeTestbed(seed=167)
        labels = ["C2", "M2", "P1", "L2", "S2", "C1", "M1", "HS3", "P2",
                  "P3", "T1", "V1", "SM1", "CM1", "SPK1"]
        for label in labels:
            tb.add_device(label)
        tb.settle(10.0)
        tb.run(3600.0)
        assert tb.alarms.silent
        for device_id, device in tb.devices.items():
            client = getattr(device, "client", None)
            if client is not None and client.config.long_live:
                assert client.connected, device_id
                assert client.stats["reconnects"] == 0, device_id
