"""Device/server protocol engine tests: the three timeout parameters."""

from __future__ import annotations


from repro.appproto.base import ProtocolConfig
from repro.appproto.keepalive import FIXED, KeepAlivePolicy, ON_IDLE
from conftest import ProtocolPair, make_pair


class TestConnectionLifecycle:
    def test_connect_connack(self, mqtt_pair):
        mqtt_pair.start_and_settle()
        assert mqtt_pair.client.connected
        assert mqtt_pair.server.device_id == "dev-1"

    def test_server_learns_advertised_keepalive(self, mqtt_pair):
        mqtt_pair.start_and_settle()
        assert mqtt_pair.server.advertised_keepalive == 30.0

    def test_stop_closes_session(self, mqtt_pair):
        mqtt_pair.start_and_settle()
        mqtt_pair.client.stop()
        mqtt_pair.sim.run(5.0)
        assert not mqtt_pair.client.connected
        assert all(s.closed for s in mqtt_pair.server_sessions)

    def test_event_reaches_server(self, mqtt_pair):
        mqtt_pair.start_and_settle()
        mqtt_pair.client.send_event("contact.open", {"value": "open"})
        mqtt_pair.sim.run(2.0)
        assert [m.name for _, m in mqtt_pair.events] == ["contact.open"]

    def test_event_carries_device_time(self, mqtt_pair):
        mqtt_pair.start_and_settle()
        before = mqtt_pair.sim.now
        mqtt_pair.client.send_event("e")
        mqtt_pair.sim.run(2.0)
        _, msg = mqtt_pair.events[0]
        assert before <= msg.device_time <= before + 0.01

    def test_event_ack_received(self, mqtt_pair):
        mqtt_pair.start_and_settle()
        mqtt_pair.client.send_event("e")
        mqtt_pair.sim.run(2.0)
        assert mqtt_pair.client.stats["event_acks"] == 1
        assert mqtt_pair.client.events[0].acked_at is not None

    def test_events_queued_until_connected(self, net):
        pair = make_pair(net, codec_name="mqtt")
        pair.client.start()
        pair.client.send_event("early")  # session still handshaking
        pair.sim.run(5.0)
        assert [m.name for _, m in pair.events] == ["early"]

    def test_command_roundtrip(self, mqtt_pair):
        mqtt_pair.start_and_settle()
        results = []
        mqtt_pair.server.send_command("lock", on_result=lambda p: results.append(p))
        mqtt_pair.sim.run(2.0)
        assert [m.name for _, m in mqtt_pair.commands_received] == ["lock"]
        assert results and results[0].acked_at is not None and not results[0].timed_out


class TestKeepAliveBehaviour:
    def test_keepalives_flow_when_idle(self, mqtt_pair):
        mqtt_pair.start_and_settle()
        mqtt_pair.sim.run(100.0)
        assert mqtt_pair.client.stats["keepalives_sent"] >= 3
        assert mqtt_pair.client.stats["keepalive_acks"] == mqtt_pair.client.stats["keepalives_sent"]

    def test_on_idle_postponed_by_events(self, net):
        pair = make_pair(
            net,
            keepalive=KeepAlivePolicy(period=20.0, strategy=ON_IDLE),
            ka_response_timeout=10.0,
            server_liveness_grace=10.0,
        )
        pair.start_and_settle()
        # Send an event every 15 s: the keep-alive timer keeps resetting.
        for _ in range(6):
            pair.sim.run(15.0)
            pair.client.send_event("tick")
        assert pair.client.stats["keepalives_sent"] == 0

    def test_fixed_not_postponed_by_events(self, net):
        pair = make_pair(
            net,
            keepalive=KeepAlivePolicy(period=20.0, strategy=FIXED),
            ka_response_timeout=10.0,
            server_liveness_grace=10.0,
        )
        pair.start_and_settle()
        for _ in range(6):
            pair.sim.run(15.0)
            pair.client.send_event("tick")
        assert pair.client.stats["keepalives_sent"] >= 3

    def test_no_keepalive_for_none_policy(self, net):
        pair = make_pair(net, keepalive=None, ka_response_timeout=None, server_liveness_grace=None)
        pair.start_and_settle()
        pair.sim.run(300.0)
        assert pair.client.stats["keepalives_sent"] == 0
        assert pair.client.connected

    def test_session_survives_long_idle(self, mqtt_pair):
        mqtt_pair.start_and_settle()
        mqtt_pair.sim.run(1000.0)
        assert mqtt_pair.client.connected
        assert mqtt_pair.alarms.silent


class TestTimeouts:
    def test_event_ack_timeout_raises_alarm_and_reconnects(self, net):
        # The client expects acks within 5 s; the server is configured to
        # never send them, guaranteeing the timeout.
        pair = ProtocolPair(
            net,
            ProtocolConfig(
                keepalive=KeepAlivePolicy(period=60.0),
                ka_response_timeout=30.0,
                server_liveness_grace=None,
                event_ack_timeout=5.0,
                event_acked=True,
            ),
            server_config=ProtocolConfig(
                keepalive=KeepAlivePolicy(period=60.0),
                server_liveness_grace=None,
                event_acked=False,  # silent server
            ),
        )
        pair.start_and_settle()
        sessions_before = pair.client.stats["sessions_opened"]
        pair.client.send_event("unacked")
        pair.sim.run(20.0)
        assert pair.alarms.count("event-ack-timeout") == 1
        assert pair.client.stats["sessions_opened"] == sessions_before + 1

    def test_no_event_timeout_when_none(self, mqtt_pair):
        mqtt_pair.start_and_settle()
        mqtt_pair.client.send_event("e")
        mqtt_pair.sim.run(60.0)
        assert mqtt_pair.alarms.count("event-ack-timeout") == 0

    def test_command_timeout_alarm(self, net):
        pair = make_pair(
            net,
            keepalive=KeepAlivePolicy(period=30.0),
            ka_response_timeout=None,
            server_liveness_grace=None,
            command_response_timeout=5.0,
        )
        pair.start_and_settle()
        # Commands time out when the device never acks: silence the device
        # by stopping it right after connect (its TCP stays half-open).
        pair.client._on_command_message = lambda m: None  # swallow commands
        pair.client.on_command = None
        results = []
        server = pair.server
        # Replace the device's wire handler so no ack is produced.
        pair.client._on_wire_message = lambda data, gen: None
        server.send_command("noop", on_result=lambda p: results.append(p))
        pair.sim.run(10.0)
        assert results and results[0].timed_out
        assert pair.alarms.count("command-timeout") == 1

    def test_server_liveness_expires_without_keepalives(self, net):
        pair = make_pair(
            net,
            keepalive=KeepAlivePolicy(period=10.0),
            ka_response_timeout=None,
            server_liveness_grace=5.0,
        )
        pair.start_and_settle()
        # Gag the device: it stops sending keep-alives entirely.
        pair.client._send_keepalive = lambda: None
        pair.sim.run(30.0)
        assert pair.alarms.count("device-offline") == 1

    def test_connect_timeout_when_server_silent(self, net):
        # Point the client at a black-hole: accepted TCP but no TLS server.
        pair = make_pair(net, connect_timeout=5.0)
        pair.cloud_stack.stop_listening(8883)
        pair.cloud_stack.listen(8883, lambda conn: None)  # bare TCP accept
        pair.client.start()
        pair.sim.run(20.0)
        assert pair.alarms.count("connect-timeout") >= 1


class TestServerBehaviour:
    def test_staleness_discard(self, net):
        pair = make_pair(
            net,
            keepalive=KeepAlivePolicy(period=60.0),
            ka_response_timeout=None,
            server_liveness_grace=None,
            staleness_discard=10.0,
        )
        pair.start_and_settle()
        from repro.appproto.messages import EVENT, IoTMessage

        # Forge an event whose device_time is 20 s in the past.
        stale = IoTMessage(
            kind=EVENT, name="old.news", device_time=pair.sim.now - 20.0, device_id="dev-1"
        )
        codec = pair.client._codec
        pair.client.session.send_message(codec.encode(stale, pad_to=200))
        pair.sim.run(2.0)
        assert pair.events == []
        assert len(pair.server.events_discarded_stale) == 1
        assert pair.alarms.silent  # Finding 2: silent drop

    def test_fresh_event_not_discarded(self, net):
        pair = make_pair(
            net,
            keepalive=KeepAlivePolicy(period=60.0),
            ka_response_timeout=None,
            server_liveness_grace=None,
            staleness_discard=10.0,
        )
        pair.start_and_settle()
        pair.client.send_event("fresh")
        pair.sim.run(2.0)
        assert [m.name for _, m in pair.events] == ["fresh"]

    def test_adopt_config_switches_codec(self, mqtt_pair):
        mqtt_pair.start_and_settle()
        http_cfg = ProtocolConfig(codec_name="http")
        mqtt_pair.server.adopt_config(http_cfg)
        assert mqtt_pair.server._codec.name == "http"

    def test_on_demand_session_lifecycle(self, net):
        pair = make_pair(
            net,
            codec_name="http",
            long_live=False,
            keepalive=None,
            ka_response_timeout=None,
            server_liveness_grace=None,
            event_ack_timeout=60.0,
        )
        # On-demand: nothing until an event happens.
        pair.sim.run(30.0)
        assert pair.client.session is None
        pair.client.send_event("burst")
        pair.sim.run(5.0)
        assert [m.name for _, m in pair.events] == ["burst"]
        # Session hung up after the ack.
        assert pair.client.session is None or pair.client.session.closed
        # A second event opens a fresh session.
        pair.client.send_event("burst-2")
        pair.sim.run(5.0)
        assert len(pair.events) == 2
        assert pair.client.stats["sessions_opened"] == 2
