"""Section VII countermeasure tests: what they stop, what they cost."""

from __future__ import annotations


import pytest

from repro.countermeasures.ack_timeout import (
    harden_profile,
    keepalive_traffic_rate,
    residual_event_window,
    sweep_ack_timeout,
    sweep_keepalive_period,
)
from repro.countermeasures.timestamp_check import DelayAnomalyDetector
from repro.devices.profiles import CATALOGUE


class TestHardening:
    def test_harden_sets_event_ack_timeout(self):
        profile = CATALOGUE.get("HS1")
        hardened = harden_profile(profile, event_ack_timeout=5.0)
        assert hardened.event_ack_timeout == 5.0
        assert hardened.event_acked

    def test_original_profile_untouched(self):
        profile = CATALOGUE.get("HS1")
        harden_profile(profile, event_ack_timeout=5.0)
        assert profile.event_ack_timeout is None

    def test_residual_window_shrinks_monotonically(self):
        profile = CATALOGUE.get("HS1")
        windows = [residual_event_window(profile, t)[1] for t in (30.0, 20.0, 10.0, 5.0)]
        assert windows == sorted(windows, reverse=True)

    def test_sweep_ack_timeout(self):
        rows = sweep_ack_timeout(CATALOGUE.get("HS1"), [30.0, 5.0])
        assert rows[0][1][1] == 30.0 and rows[1][1][1] == 5.0

    def test_harden_keepalive_period(self):
        hardened = harden_profile(CATALOGUE.get("HS1"), ka_period=5.0)
        assert hardened.event_delay_window()[1] == 35.0  # 5 + grace 30


class TestTrafficModel:
    def test_rate_inverse_in_period(self):
        profile = CATALOGUE.get("HS1")
        slow = keepalive_traffic_rate(profile, 60.0)
        fast = keepalive_traffic_rate(profile, 2.0)
        assert fast == pytest.approx(slow * 30.0)

    def test_zero_for_on_demand(self):
        assert keepalive_traffic_rate(CATALOGUE.get("M7")) == 0.0

    def test_sweep_rows_shape(self):
        rows = sweep_keepalive_period(CATALOGUE.get("HS1"), [60.0, 2.0])
        assert len(rows) == 2
        period, window, rate = rows[1]
        assert period == 2.0 and rate > 0 and window[1] == 32.0

    def test_sub_2s_keepalive_is_expensive(self):
        # The LIFX cautionary tale: sub-2 s keep-alives cost two orders of
        # magnitude more idle traffic than a 120 s interval.
        profile = CATALOGUE.get("HS1")
        assert keepalive_traffic_rate(profile, 2.0) > 50 * keepalive_traffic_rate(profile, 120.0)


class TestExperimentRows:
    def test_ack_sweep_measured_matches_prediction(self):
        from repro.experiments.countermeasures import run_ack_timeout_sweep

        rows = run_ack_timeout_sweep(timeouts=(None, 10.0), seed=91)
        baseline, hardened = rows
        assert baseline.achieved_delay > hardened.achieved_delay
        assert hardened.achieved_delay == pytest.approx(8.0, abs=0.5)  # 10 - margin
        assert hardened.stealthy

    def test_timestamp_defense_asymmetry(self):
        from repro.experiments.countermeasures import run_timestamp_defense

        rows = run_timestamp_defense(seed=93)
        by_key = {(r.attack, r.window): r.attack_succeeded for r in rows}
        # Delayed trigger: stopped by the defence.
        assert by_key[("spurious via delayed trigger", None)]
        assert not by_key[("spurious via delayed trigger", 10.0)]
        # Delayed condition: not stopped.
        assert by_key[("spurious via delayed condition (Case 8)", 10.0)]
        # Pure delay: not stopped.
        assert by_key[("state-update delay (Case 1)", 10.0)]

    def test_detection_monitor_fires(self):
        from repro.experiments.countermeasures import run_delay_detection

        result = run_delay_detection(threshold=10.0, seed=95)
        assert result.detected
        assert result.detections >= 1


class TestDetector:
    def test_fresh_events_not_flagged(self):
        from repro.testbed import SmartHomeTestbed

        tb = SmartHomeTestbed(seed=97)
        base = tb.add_device("HS1")
        detector = DelayAnomalyDetector(sim=tb.sim, alarm_log=tb.alarms, threshold=10.0)
        detector.attach(tb.endpoints["ring"])
        tb.settle(5.0)
        base.stimulate("armed-away")
        tb.run(5.0)
        assert detector.detections == []
        assert tb.alarms.silent
