"""Findings 1-3 and the TLS-integrity contrast experiment."""

from __future__ import annotations

import pytest

from repro.experiments.findings import (
    finding1_half_open,
    finding2_event_discard,
    finding3_unidirectional_liveness,
    render_findings,
)
from repro.experiments.tls_integrity import (
    MODES,
    run_integrity_experiment,
    render_integrity,
)


class TestFinding1:
    def test_half_open_reproduced(self):
        result = finding1_half_open(seed=101)
        assert result.reproduced
        assert result.device_timed_out
        assert result.half_open_during == 2
        assert result.half_open_after <= 1
        assert result.offline_alarms == 0


class TestFinding2:
    def test_discard_cliff_at_window(self):
        rows = finding2_event_discard(delays=(10.0, 25.0, 35.0, 50.0), seed=103)
        outcomes = {row.delay: row.delivered_to_engine for row in rows}
        assert outcomes[10.0] and outcomes[25.0]
        assert not outcomes[35.0] and not outcomes[50.0]

    def test_discard_is_silent(self):
        rows = finding2_event_discard(delays=(35.0,), seed=105)
        assert rows[0].discarded
        assert rows[0].alarms == 0


class TestFinding3:
    def test_unidirectional_liveness(self):
        result = finding3_unidirectional_liveness(seed=107)
        assert result.reproduced
        assert result.downlink_data_packets == 0
        assert result.server_still_believes_online


class TestRenderFindings:
    def test_render_mentions_all_three(self):
        f1 = finding1_half_open(seed=109)
        f2 = finding2_event_discard(delays=(35.0,), seed=109)
        f3 = finding3_unidirectional_liveness(seed=109)
        text = render_findings(f1, f2, f3)
        assert "Finding 1" in text and "Finding 2" in text and "Finding 3" in text


class TestTlsIntegrityContrast:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row.mode: row for row in run_integrity_experiment(seed=111)}

    def test_all_modes_run(self, rows):
        assert set(rows) == set(MODES)

    def test_pass_through_silent_and_delivered(self, rows):
        row = rows["pass-through"]
        assert row.silent and row.event_delivered

    def test_phantom_delay_silent_and_delivered(self, rows):
        row = rows["hold-release"]
        assert row.silent and row.event_delivered

    def test_corruption_raises_tls_alert(self, rows):
        row = rows["corrupt"]
        assert row.tls_alerts >= 1 and not row.silent
        assert not row.event_delivered

    def test_stream_injection_raises_tls_alert(self, rows):
        row = rows["inject"]
        assert row.tls_alerts >= 1 and not row.silent

    def test_drop_with_forged_ack_ends_in_timeout_alarms(self, rows):
        row = rows["drop"]
        assert not row.silent
        assert not row.event_delivered

    def test_every_row_matches_paper(self, rows):
        assert all(row.matches_paper for row in rows.values())

    def test_render(self, rows):
        text = render_integrity(list(rows.values()))
        assert "hold-release" in text and "corrupt" in text
