"""Capture export/statistics and the recognition-accuracy experiment."""

from __future__ import annotations

import json

import pytest

from repro.core.attacker import PhantomDelayAttacker
from repro.experiments.recognition import run_recognition
from repro.testbed import SmartHomeTestbed


@pytest.fixture
def sniffed_home(tmp_path):
    tb = SmartHomeTestbed(seed=151)
    contact = tb.add_device("C5")
    tb.settle(8.0)
    attacker = PhantomDelayAttacker.deploy(tb)
    attacker.capture.clear()
    contact.stimulate("open")
    tb.run(10.0)
    return tb, attacker, tmp_path


class TestCaptureExport:
    def test_jsonl_export_roundtrips(self, sniffed_home):
        tb, attacker, tmp_path = sniffed_home
        path = tmp_path / "capture.jsonl"
        count = attacker.capture.export_jsonl(str(path))
        assert count == len(attacker.capture.frames) > 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == count
        tcp_records = [r for r in records if "src_port" in r]
        assert tcp_records, "expected TCP metadata in the export"
        for record in tcp_records:
            assert {"ts", "src_ip", "dst_ip", "flags", "payload_len"} <= set(record)

    def test_export_contains_no_payload_bytes(self, sniffed_home):
        tb, attacker, tmp_path = sniffed_home
        path = tmp_path / "capture.jsonl"
        attacker.capture.export_jsonl(str(path))
        # Metadata only: sizes, never contents.
        assert "payload\":" not in path.read_text()

    def test_flow_summary(self, sniffed_home):
        tb, attacker, _ = sniffed_home
        summary = attacker.capture.flow_summary()
        assert summary
        row = summary[0]
        assert row["packets"] >= row["data_packets"] > 0
        assert row["payload_bytes"] > 0
        assert row["first_ts"] <= row["last_ts"]


class TestRecognitionExperiment:
    def test_small_home_perfect_accuracy(self):
        report = run_recognition(homes=(("P2", "HS1", "C1"),), seed=153)
        assert report.accuracy == 1.0

    def test_rows_labelled(self):
        report = run_recognition(homes=(("HS3",),), seed=155)
        assert report.rows[0].expected_label == "HS3"
        assert report.rows[0].recognised_label == "HS3"

    def test_hub_child_recognised_via_event_length(self):
        report = run_recognition(homes=(("C1",),), seed=157)
        by_label = {r.expected_label: r for r in report.rows}
        assert by_label["C1"].correct
