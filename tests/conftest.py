"""Shared fixtures: simulators, network fabrics, and protocol pairs."""

from __future__ import annotations

import pytest

from repro.alarms import AlarmLog
from repro.appproto.base import DeviceProtocolClient, ProtocolConfig, ServerDeviceSession
from repro.appproto.keepalive import KeepAlivePolicy
from repro.simnet.cloudhost import CloudHost
from repro.simnet.host import Host
from repro.simnet.inet import Internet
from repro.simnet.link import Lan
from repro.simnet.router import Router
from repro.simnet.scheduler import Simulator
from repro.tcp.stack import TcpStack
from repro.tls.session import KeyEscrow


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Keep every test's campaign cache away from ``~/.cache``.

    CLI invocations default the cache on, so without this a test run
    would both pollute and be poisoned by the developer's real cache.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


class NetFabric:
    """A LAN + WAN + router bundle with helpers to add hosts."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.lan = Lan(sim)
        self.internet = Internet(sim)
        self.router = Router(sim, self.lan, self.internet)
        self._next_ip = 10
        self._next_cloud = 1

    def add_lan_host(self, name: str = "host", promiscuous: bool = False) -> Host:
        ip = f"192.168.1.{self._next_ip}"
        self._next_ip += 1
        return Host(
            self.sim, self.lan, ip=ip, hostname=name,
            gateway_ip=self.router.ip, promiscuous=promiscuous,
        )

    def add_cloud_host(self, name: str = "cloud", domain: str | None = None) -> CloudHost:
        ip = f"34.9.{self._next_cloud}.1"
        self._next_cloud += 1
        return CloudHost(self.sim, self.internet, ip=ip, hostname=name, domain=domain)


@pytest.fixture
def net(sim: Simulator) -> NetFabric:
    return NetFabric(sim)


class ProtocolPair:
    """A device protocol client wired to one accepting server session."""

    def __init__(
        self,
        net: NetFabric,
        config: ProtocolConfig,
        device_id: str = "dev-1",
        server_config: ProtocolConfig | None = None,
    ) -> None:
        self.sim = net.sim
        self.alarms = AlarmLog(net.sim)
        self.escrow = KeyEscrow()
        self.device_host = net.add_lan_host("device")
        self.device_stack = TcpStack(self.device_host)
        self.cloud = net.add_cloud_host("vendor", domain="vendor.example")
        self.cloud_stack = TcpStack(self.cloud)
        self.server_sessions: list[ServerDeviceSession] = []
        self.events: list = []
        self.commands_acked: list = []
        srv_cfg = server_config or config

        def on_accept(conn):
            session = ServerDeviceSession(
                conn,
                config=srv_cfg,
                alarm_log=self.alarms,
                escrow=self.escrow,
                server_name="vendor",
                on_event=lambda s, m: self.events.append((self.sim.now, m)),
            )
            self.server_sessions.append(session)

        self.cloud_stack.listen(8883, on_accept)
        self.commands_received: list = []
        self.client = DeviceProtocolClient(
            stack=self.device_stack,
            device_id=device_id,
            server_ip=self.cloud.ip,
            server_port=8883,
            config=config,
            alarm_log=self.alarms,
            escrow=self.escrow,
            on_command=lambda m: self.commands_received.append((self.sim.now, m)),
        )

    @property
    def server(self) -> ServerDeviceSession:
        live = [s for s in self.server_sessions if not s.closed]
        return live[-1]

    def start_and_settle(self, duration: float = 5.0) -> None:
        self.client.start()
        self.sim.run(duration)


@pytest.fixture
def mqtt_pair(net: NetFabric) -> ProtocolPair:
    config = ProtocolConfig(
        codec_name="mqtt",
        keepalive=KeepAlivePolicy(period=30.0, strategy="on-idle"),
        ka_response_timeout=15.0,
        server_liveness_grace=15.0,
        command_response_timeout=20.0,
    )
    return ProtocolPair(net, config)


def make_pair(net: NetFabric, **config_kwargs) -> ProtocolPair:
    """Build a protocol pair with custom configuration."""
    return ProtocolPair(net, ProtocolConfig(**config_kwargs))
