"""Tests for the campaign service (``repro.service``).

The service's contract has three legs:

* **dedup** — submissions with the same content address coalesce onto one
  execution (in-flight or already completed), while failed/cancelled jobs
  never memoise;
* **equivalence** — a served result is byte-identical to the one-shot CLI
  invocation of the same experiment, cold or warm cache;
* **cancellation** — cancelling mid-campaign stops between shards and
  leaves the cache consistent, so a resubmission resumes from it.

Service fixtures run with ``jobs=1`` (serial in-process shards): the shared
fork pool is covered in ``test_parallel.py``, and forking from the
multi-threaded pytest process would trip the dev-mode warning gate.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.experiments.registry import (
    ExperimentSpec,
    experiment_names,
    get_experiment,
    register,
    unregister,
)
from repro.service import (
    JobSpec,
    ProtocolError,
    ServiceClient,
    decode,
    encode,
    start_in_thread,
)


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "submit", "spec": {"experiment": "table1"}}
        assert decode(encode(message)) == message

    def test_encode_is_one_canonical_line(self):
        data = encode({"b": 1, "a": 2})
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        assert data.index(b'"a"') < data.index(b'"b"')

    @pytest.mark.parametrize("line", [b"", b"   \n", b"not json\n", b"[1]\n"])
    def test_decode_rejects_garbage(self, line):
        with pytest.raises(ProtocolError):
            decode(line)

    @pytest.mark.parametrize("payload", [
        None,
        {},
        {"experiment": ""},
        {"experiment": 7},
        {"experiment": "table1", "kwargs": []},
        {"experiment": "table1", "seed": "7"},
        {"experiment": "table1", "seed": True},
        {"experiment": "table1", "priority": 1.5},
        {"experiment": "table1", "bogus": 1},
    ])
    def test_spec_validation_rejects_bad_payloads(self, payload):
        with pytest.raises(ProtocolError):
            JobSpec.from_payload(payload)

    def test_spec_payload_roundtrip(self):
        spec = JobSpec("table1", {"trials": 2}, seed=3, priority=1)
        assert JobSpec.from_payload(spec.to_payload()) == spec


class TestJobKey:
    def test_key_ignores_kwarg_order_and_priority(self):
        a = JobSpec("table1", {"trials": 2, "labels": ["C1"]}, seed=7, priority=0)
        b = JobSpec("table1", {"labels": ["C1"], "trials": 2}, seed=7, priority=9)
        assert a.key() == b.key()

    def test_key_is_sensitive_to_what_executes(self):
        base = JobSpec("table1", {"trials": 2}, seed=7)
        assert base.key() != JobSpec("table2", {"trials": 2}, seed=7).key()
        assert base.key() != JobSpec("table1", {"trials": 3}, seed=7).key()
        assert base.key() != JobSpec("table1", {"trials": 2}, seed=8).key()


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"table1", "table2", "table3", "figure3", "verify",
                "robustness"} <= set(experiment_names())

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="table1"):
            get_experiment("nope")

    def test_register_refuses_to_shadow(self):
        spec = get_experiment("table1")
        with pytest.raises(ValueError, match="already registered"):
            register(spec)


# Toy experiments: module-level so cached calls stay picklable.  Each
# execution appends one line to a log file, which is how the dedup tests
# count actual executions.

def _toy_run(log: str, tag: str = "x", seed: int = 7, runner=None):
    with open(log, "a") as fh:
        fh.write(f"{tag}/{seed}\n")
    return [tag, seed]


def _toy_fail(log: str, seed: int = 7, runner=None):
    with open(log, "a") as fh:
        fh.write(f"fail/{seed}\n")
    raise RuntimeError("toy experiment exploded")


def _release_gated(index: int, release: str, seed: int) -> int:
    # Shard 1 blocks until the test creates the release file, giving the
    # cancel a deterministic window; shards 0 and 2 are instant.
    if index == 1:
        deadline = time.monotonic() + 20.0
        while not Path(release).exists():
            if time.monotonic() > deadline:
                raise TimeoutError("release file never appeared")
            time.sleep(0.02)
    return index * 10 + (seed % 10)


def _toy_sharded(release: str, seed: int = 7, runner=None):
    from repro.parallel import Shard

    shards = [
        Shard(key=f"gated/{i}", fn=_release_gated,
              kwargs={"index": i, "release": release})
        for i in range(3)
    ]
    return runner.run(shards)


@pytest.fixture
def toy_experiments(tmp_path):
    log = tmp_path / "executions.log"
    register(ExperimentSpec(
        name="toy", run=_toy_run, render=lambda rows: f"rows={rows}",
        status=lambda rows: 0, description="test toy",
    ))
    register(ExperimentSpec(
        name="toy-fail", run=_toy_fail, render=str,
        status=lambda rows: 0, description="always raises",
    ))
    register(ExperimentSpec(
        name="toy-sharded", run=_toy_sharded, render=str,
        status=lambda rows: 0, description="3 shards, one gated",
    ))
    yield log
    unregister("toy")
    unregister("toy-fail")
    unregister("toy-sharded")


@pytest.fixture
def service(tmp_path):
    socket_path = tmp_path / "service.sock"
    handle = start_in_thread(socket_path, jobs=1)
    yield ServiceClient(socket_path)
    handle.stop()


def _submissions(log: Path) -> list[str]:
    return log.read_text().splitlines() if log.exists() else []


class TestServiceDedup:
    def test_duplicate_submissions_coalesce_to_one_execution(
            self, service, toy_experiments):
        log = toy_experiments
        spec = {"log": str(log), "tag": "dup"}
        # First submission detaches right after `accepted`, so the job is
        # still in flight (queued or running) when the duplicate arrives.
        first = list(service.submit("toy", kwargs=spec, watch=False))
        assert [e["event"] for e in first] == ["accepted"]
        assert first[0]["deduped"] is False

        accepted, final = service.submit_and_wait("toy", kwargs=spec)
        assert accepted["deduped"] is True
        assert accepted["job_id"] == first[0]["job_id"]
        assert final["event"] == "result"
        assert _submissions(log) == ["dup/7"]

        # Completed jobs memoise too: a third submission replays the
        # stored terminal event without executing anything.
        accepted3, final3 = service.submit_and_wait("toy", kwargs=spec)
        assert accepted3["deduped"] is True
        assert final3["output"] == final["output"]
        assert _submissions(log) == ["dup/7"]

    def test_distinct_specs_each_execute(self, service, toy_experiments):
        log = toy_experiments
        service.submit_and_wait("toy", kwargs={"log": str(log), "tag": "a"})
        service.submit_and_wait("toy", kwargs={"log": str(log), "tag": "b"})
        service.submit_and_wait("toy", kwargs={"log": str(log), "tag": "a"},
                                seed=8)
        assert _submissions(log) == ["a/7", "b/7", "a/8"]

    def test_failed_jobs_do_not_memoise(self, service, toy_experiments):
        log = toy_experiments
        accepted, final = service.submit_and_wait(
            "toy-fail", kwargs={"log": str(log)})
        assert final["event"] == "error"
        assert "toy experiment exploded" in final["message"]
        retry, final2 = service.submit_and_wait(
            "toy-fail", kwargs={"log": str(log)})
        assert retry["deduped"] is False
        assert retry["job_id"] != accepted["job_id"]
        assert _submissions(log) == ["fail/7", "fail/7"]

    def test_unknown_experiment_is_rejected_with_the_catalogue(self, service):
        [error] = list(service.submit("nope", watch=False))
        assert error["event"] == "error"
        assert "table1" in error["message"]

    def test_malformed_request_yields_protocol_error(self, service):
        [error] = list(service.request({"op": "frobnicate"}))
        assert error["event"] == "error"
        assert "unknown op" in error["message"]


class TestServiceCancellation:
    def test_cancel_mid_campaign_leaves_cache_consistent(
            self, service, toy_experiments, tmp_path):
        release = tmp_path / "release"
        spec = {"release": str(release)}
        events = service.submit("toy-sharded", kwargs=spec)
        accepted = next(events)
        job_id = accepted["job_id"]

        final = None
        for event in events:
            kind = event.get("event")
            if kind == "progress" and event["done"] >= 1:
                # Shard 0 booked; shard 1 is (or will be) blocked on the
                # release file.  Cancel, then unblock.
                ack = ServiceClient(service._address).cancel(job_id)
                assert ack["event"] == "cancel-ack"
                release.touch()
            if kind in ("result", "cancelled", "error"):
                final = event
                break
        assert final is not None and final["event"] == "cancelled"
        # The runner stops between shards: never all three, and everything
        # that completed is already cached.
        assert 1 <= final["done"] < final["total"] == 3
        cancelled_done = final["done"]

        # A resubmission is a fresh job (cancelled jobs never memoise) that
        # resumes from the cache the cancelled run left behind.
        retry, final2 = service.submit_and_wait("toy-sharded", kwargs=spec)
        assert retry["deduped"] is False
        assert final2["event"] == "result"
        assert final2["shards"] == 3
        assert final2["cached_shards"] == cancelled_done

    def test_cancel_queued_job_is_instant(self, service, toy_experiments,
                                          tmp_path):
        release = tmp_path / "release"
        blocker = list(service.submit(
            "toy-sharded", kwargs={"release": str(release)}, watch=False))[0]
        queued = list(service.submit(
            "toy", kwargs={"log": str(toy_experiments), "tag": "queued"},
            watch=False))[0]
        ack = service.cancel(queued["job_id"])
        assert ack["state"] == "cancelled"
        [final] = [e for e in service.watch(queued["job_id"])]
        assert final["event"] == "cancelled" and final["done"] == 0
        # Unblock and drain the first job so teardown doesn't wait on it.
        service.cancel(blocker["job_id"])
        release.touch()
        for event in service.watch(blocker["job_id"]):
            if event["event"] in ("result", "cancelled", "error"):
                break

    def test_cancel_unknown_job_reports_error(self, service):
        error = service.cancel("job-999")
        assert error["event"] == "error"
        assert "unknown job" in error["message"]


class TestServedEquivalence:
    def test_served_table1_matches_one_shot_cli_cold_and_warm(
            self, service, capsys):
        kwargs = {"trials": 1, "labels": ["C1", "C2"]}
        # Served run is the cold one: it fills the shared cache.
        _, cold = service.submit_and_wait("table1", kwargs=kwargs, seed=7)
        assert cold["event"] == "result"
        assert cold["cached_shards"] == 0

        # The one-shot CLI replays warm from the same cache and must print
        # byte-for-byte what the service streamed.
        from repro.cli import main

        code = main(["--trials", "1", "--labels", "C1,C2", "--no-manifest",
                     "table1"])
        printed = capsys.readouterr().out
        assert printed == cold["output"] + "\n"
        assert code == cold["status"]

        # And a fresh spec served warm matches its own one-shot run too.
        _, warm = service.submit_and_wait("table1", kwargs=kwargs, seed=7)
        assert warm["output"] == cold["output"]

    def test_served_result_writes_one_manifest_per_job(self, service):
        _, final = service.submit_and_wait(
            "table1", kwargs={"trials": 1, "labels": ["C1"]}, seed=7)
        manifest = Path(final["manifest"])
        assert manifest.is_file()
        assert manifest.parent.name == "service"
        key = JobSpec("table1", {"trials": 1, "labels": ["C1"]}, seed=7).key()
        assert manifest.stem == key

    def test_result_carries_the_merged_metrics_snapshot(self, service):
        _, final = service.submit_and_wait(
            "table1", kwargs={"trials": 1, "labels": ["C1"]}, seed=7)
        components = {record["component"] for record in final["metrics"]}
        assert components  # non-empty deterministic snapshot
        assert "parallel" not in components  # wall-clock noise stays out


class TestServiceStatus:
    def test_status_counts_and_priority_order(self, service, toy_experiments,
                                              tmp_path):
        log = toy_experiments
        release = tmp_path / "release"
        # Occupy the single executor slot, then queue two jobs with
        # inverted priorities: the later, higher-priority one must run
        # first once the blocker is released.
        blocker = list(service.submit(
            "toy-sharded", kwargs={"release": str(release)},
            watch=False))[0]
        low = service.submit("toy", kwargs={"log": str(log), "tag": "low"},
                             priority=0, watch=False)
        high = service.submit("toy", kwargs={"log": str(log), "tag": "high"},
                              priority=5, watch=False)
        low_id = list(low)[0]["job_id"]
        high_id = list(high)[0]["job_id"]

        status = service.status()
        by_id = {row["job_id"]: row for row in status["jobs"]}
        assert by_id[low_id]["state"] == by_id[high_id]["state"] == "queued"
        assert status["service"]["queue_depth"] == 2
        assert "table1" in status["experiments"]

        release.touch()
        for job_id in (blocker["job_id"], high_id, low_id):
            for event in service.watch(job_id):
                if event["event"] in ("result", "cancelled", "error"):
                    break
        assert _submissions(log) == ["high/7", "low/7"]

        status = service.status()
        assert status["service"]["completed"] == 3
        assert status["service"]["queue_depth"] == 0
        one = service.status(job_id=high_id)
        assert [row["job_id"] for row in one["jobs"]] == [high_id]
