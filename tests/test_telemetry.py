"""Tests for campaign-scale telemetry (``repro.obs.telemetry`` + manifest).

The pipeline's contract has three load-bearing properties:

* **merge is order-free** for everything a campaign reports — counts,
  buckets, extrema, and therefore quantiles — so sharding can never change
  a merged metric (property-tested with hypothesis);
* **worker telemetry survives the pool and the cache** — a shard's
  snapshot rides back with its result, is cached alongside it, and warm
  runs replay it byte-identically, so ``jobs=1`` == ``jobs=4`` == warm;
* **the manifest round-trips** — write → load → diff-against-self reports
  zero drift, and degraded runs (in-process replays after worker failures)
  are visible in their shard rows.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.manifest import (
    RunManifest,
    ShardRow,
    diff_manifests,
    git_describe,
    manifest_path_for,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    NONDETERMINISTIC_COMPONENTS,
    RegistrySnapshot,
    ShardTelemetry,
    ShardUsage,
    capture,
    cpu_seconds_now,
    harvest_result,
    merge_telemetry,
)
from repro.parallel import CampaignRunner, Shard, derive_seed, fork_available
from repro.simnet.scheduler import Simulator


def _registry_with(counter: int = 0, gauge: float = 0.0,
                   samples: tuple[float, ...] = ()) -> MetricsRegistry:
    registry = MetricsRegistry(capture=False)
    if counter:
        registry.counter("test", "count").inc(counter)
    if gauge:
        registry.gauge("test", "depth").set(gauge)
    for sample in samples:
        registry.histogram("test", "delay").observe(sample)
    return registry


class TestMetricMerge:
    def test_counter_merge_adds(self):
        a, b = _registry_with(counter=3), _registry_with(counter=4)
        a.merge(b)
        assert a.value("test", "count") == 7

    def test_gauge_merge_adds_values_maxes_high_water(self):
        a, b = MetricsRegistry(capture=False), MetricsRegistry(capture=False)
        ga, gb = a.gauge("g", "depth"), b.gauge("g", "depth")
        ga.set(9.0)
        ga.set(2.0)
        gb.set(5.0)
        ga.merge(gb)
        assert ga.value == 7.0
        assert ga.high_water == 9.0

    def test_histogram_merge_growth_mismatch_rejected(self):
        from repro.obs.metrics import StreamingHistogram, _make_key

        a = StreamingHistogram(_make_key("h", "x", {}))
        b = StreamingHistogram(_make_key("h", "x", {}), growth=1.5)
        with pytest.raises(ValueError, match="growth"):
            a.merge(b)

    def test_registry_merge_kind_conflict_rejected(self):
        a, b = MetricsRegistry(capture=False), MetricsRegistry(capture=False)
        a.counter("c", "thing").inc()
        b.histogram("c", "thing").observe(1.0)
        with pytest.raises(TypeError):
            a.merge(b)

    def test_merge_excludes_components(self):
        a = MetricsRegistry(capture=False)
        b = _registry_with(counter=2)
        b.counter("parallel", "cache_hits").inc(5)
        a.merge(b, exclude_components=NONDETERMINISTIC_COMPONENTS)
        assert a.value("test", "count") == 2
        assert a.get("parallel", "cache_hits") is None


# Hypothesis: merged campaign numbers must not depend on merge order.

_samples = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=12
)


def _hist_fingerprint(registry: MetricsRegistry):
    hist = registry.histogram("test", "delay")
    return (
        hist.count, dict(hist.buckets), hist.zero_count, hist.min, hist.max,
        hist.quantile(0.5), hist.quantile(0.95), hist.quantile(0.99),
    )


class TestMergeProperties:
    @settings(max_examples=50, deadline=None)
    @given(a=_samples, b=_samples)
    def test_histogram_merge_commutes(self, a, b):
        left = _registry_with(samples=tuple(a))
        left.merge(_registry_with(samples=tuple(b)))
        right = _registry_with(samples=tuple(b))
        right.merge(_registry_with(samples=tuple(a)))
        assert _hist_fingerprint(left) == _hist_fingerprint(right)

    @settings(max_examples=50, deadline=None)
    @given(a=_samples, b=_samples, c=_samples)
    def test_histogram_merge_associates(self, a, b, c):
        ab_c = _registry_with(samples=tuple(a))
        ab_c.merge(_registry_with(samples=tuple(b)))
        ab_c.merge(_registry_with(samples=tuple(c)))
        bc = _registry_with(samples=tuple(b))
        bc.merge(_registry_with(samples=tuple(c)))
        a_bc = _registry_with(samples=tuple(a))
        a_bc.merge(bc)
        assert _hist_fingerprint(ab_c) == _hist_fingerprint(a_bc)

    @settings(max_examples=50, deadline=None)
    @given(
        counters=st.lists(st.integers(min_value=0, max_value=100),
                          min_size=1, max_size=6),
        samples=st.lists(_samples, min_size=1, max_size=6),
    )
    def test_registry_merge_order_free(self, counters, samples):
        def build(order):
            merged = MetricsRegistry(capture=False)
            for i in order:
                shard = _registry_with(
                    counter=counters[i % len(counters)],
                    samples=tuple(samples[i % len(samples)]),
                )
                merged.merge(shard)
            return merged

        n = max(len(counters), len(samples))
        forward, backward = build(range(n)), build(reversed(range(n)))
        assert forward.value("test", "count") == backward.value("test", "count")
        assert _hist_fingerprint(forward) == _hist_fingerprint(backward)

    @settings(max_examples=25, deadline=None)
    @given(a=_samples, b=_samples)
    def test_snapshot_merge_matches_registry_merge(self, a, b):
        direct = _registry_with(samples=tuple(a))
        direct.merge(_registry_with(samples=tuple(b)))
        via_snapshots = RegistrySnapshot.of(
            _registry_with(samples=tuple(a))
        ).merge(RegistrySnapshot.of(_registry_with(samples=tuple(b))))
        assert via_snapshots == RegistrySnapshot.of(direct)


class TestRegistrySnapshot:
    def test_round_trip(self):
        registry = _registry_with(counter=3, gauge=2.5, samples=(0.1, 4.2))
        snap = RegistrySnapshot.of(registry)
        assert RegistrySnapshot.of(snap.to_registry()) == snap

    def test_picklable_and_canonical(self):
        snap = RegistrySnapshot.of(_registry_with(counter=2, samples=(1.0,)))
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap

    def test_empty_is_falsy(self):
        assert not RegistrySnapshot.empty()
        assert RegistrySnapshot.of(_registry_with(counter=1))


class TestCapture:
    def test_captures_registries_and_simulators(self):
        with capture() as cap:
            registry = MetricsRegistry()
            registry.counter("app", "messages").inc(4)
            sim = Simulator(seed=3)
            sim.schedule(1.0, lambda: None)
            sim.run(5.0)
        snap = cap.snapshot()
        values = {(r["component"], r["name"]): r for r in snap.records}
        assert values[("app", "messages")]["value"] == 4
        assert values[("scheduler", "simulations")]["value"] == 1
        assert values[("scheduler", "events_processed")]["value"] == 1
        assert sim.now == 5.0

    def test_parallel_component_excluded(self):
        with capture() as cap:
            registry = MetricsRegistry()
            registry.counter("parallel", "cache_hits").inc(9)
            registry.counter("app", "ok").inc()
        records = cap.snapshot().records
        assert all(r["component"] != "parallel" for r in records)
        assert any(r["component"] == "app" for r in records)

    def test_innermost_capture_wins(self):
        with capture() as outer:
            with capture() as inner:
                MetricsRegistry().counter("app", "inner").inc()
            MetricsRegistry().counter("app", "outer").inc()
        assert [r["name"] for r in inner.snapshot().records] == ["inner"]
        assert [r["name"] for r in outer.snapshot().records] == ["outer"]

    def test_no_capture_is_free(self):
        # Constructing registries/simulators outside a capture must not
        # accumulate anywhere (no global leak).
        from repro.obs import telemetry as t

        assert t.active_capture() is None
        MetricsRegistry()
        Simulator()
        assert t.active_capture() is None


class _FakeResult:
    def __init__(self):
        self.fault_stats = {"dropped_frames": 3, "note": "ignored"}
        self.invariant_violations = ["v1", "v2"]
        self.alarms = {"offline": 2}
        self.metrics = {"achieved_delay": 25.0, "unbounded": float("inf")}
        self.baseline = None
        self.attacked = None


class TestHarvest:
    def test_result_shapes_mirrored(self):
        registry = MetricsRegistry(capture=False)
        harvest_result([_FakeResult(), None], registry)
        assert registry.value("faults", "dropped_frames") == 3
        assert registry.value("invariants", "runs_audited") == 1
        assert registry.value("invariants", "violations") == 2
        assert registry.value("alarms", "offline") == 2
        hist = registry.histogram("campaign", "result_metric",
                                  metric="achieved_delay")
        assert hist.count == 1
        # inf metrics are skipped, not recorded as garbage buckets
        assert registry.get("campaign", "result_metric", metric="unbounded") is None


class TestShardTelemetry:
    def test_pickle_round_trip(self):
        with capture() as cap:
            MetricsRegistry().counter("app", "n").inc(2)
        telemetry = cap.finish(usage=ShardUsage(1.0, 0.9, 1024))
        clone = pickle.loads(pickle.dumps(telemetry))
        assert clone == telemetry

    def test_deterministic_strips_run_specific_state(self):
        shard = ShardTelemetry(
            snapshot=RegistrySnapshot.of(_registry_with(counter=1)),
            usage=ShardUsage(1.0, 0.5, 2048),
            replayed=True,
            cached=True,
        )
        det = shard.deterministic()
        assert det.usage is None and not det.replayed and not det.cached
        assert det.snapshot == shard.snapshot

    def test_usage_measure(self):
        usage = ShardUsage.measure(1.0, 3.5, 0.0)
        assert usage.wall_seconds == 2.5
        assert usage.cpu_seconds >= 0.0
        assert usage.peak_rss_kb > 0  # Linux: ru_maxrss is KB and nonzero
        assert cpu_seconds_now() > 0.0

    def test_merge_telemetry_skips_none(self):
        one = ShardTelemetry(snapshot=RegistrySnapshot.of(_registry_with(counter=2)))
        snap, spans = merge_telemetry([None, one, None, one])
        assert spans == ()
        [record] = [r for r in snap.records if r["name"] == "count"]
        assert record["value"] == 4


# Module-level shard fns (workers unpickle by qualified name).

def _sim_shard(label: str, seed: int) -> int:
    sim = Simulator(seed=seed)
    for i in range(3):
        sim.schedule(float(i + 1), lambda: None, label=label)
    sim.run(10.0)
    return sim.events_processed


def _unpicklable_result(seed: int):
    return lambda: seed


class TestRunnerTelemetry:
    def test_serial_run_collects_telemetry_and_manifest(self, tmp_path):
        runner = CampaignRunner(jobs=1, base_seed=5, campaign="tele-serial",
                                manifest=str(tmp_path / "m.jsonl"))
        results = runner.run([
            Shard(key=f"s/{i}", fn=_sim_shard, kwargs={"label": f"l{i}"})
            for i in range(3)
        ])
        assert results == [3, 3, 3]
        assert len(runner.last_telemetry) == 3
        assert all(t is not None for t in runner.last_telemetry)
        assert all(t.usage is not None for t in runner.last_telemetry)
        assert all(t.events_processed() == 3 for t in runner.last_telemetry)
        events = [r for r in runner.last_snapshot.records
                  if (r["component"], r["name"]) == ("scheduler", "events_processed")
                  and not r.get("labels")]
        assert [r["value"] for r in events] == [9]
        assert runner.last_manifest_path == tmp_path / "m.jsonl"
        loaded = RunManifest.load(runner.last_manifest_path)
        assert loaded.header["campaign"] == "tele-serial"
        assert loaded.header["shards"] == 3
        assert [row.key for row in loaded.shards] == ["s/0", "s/1", "s/2"]
        assert all(row.seed == derive_seed(5, row.key) for row in loaded.shards)
        assert all(row.events == 3 for row in loaded.shards)
        assert all(row.cpu_seconds >= 0.0 for row in loaded.shards)
        assert all(row.peak_rss_kb > 0 for row in loaded.shards)

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_pool_telemetry_identical_to_serial(self, tmp_path):
        def merged(jobs: int) -> RegistrySnapshot:
            runner = CampaignRunner(jobs=jobs, base_seed=5, campaign="tele-eq",
                                    manifest=False)
            runner.run([
                Shard(key=f"s/{i}", fn=_sim_shard, kwargs={"label": f"l{i}"})
                for i in range(4)
            ])
            return runner.last_snapshot

        assert merged(1) == merged(4)

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_replayed_flag_reaches_manifest_row(self, tmp_path):
        runner = CampaignRunner(jobs=2, base_seed=0, campaign="tele-replay",
                                manifest=str(tmp_path / "m.jsonl"))
        runner.run([
            Shard(key="ok", fn=_sim_shard, kwargs={"label": "a"}),
            Shard(key="bad", fn=_unpicklable_result),
        ])
        loaded = RunManifest.load(tmp_path / "m.jsonl")
        by_key = {row.key: row for row in loaded.shards}
        assert not by_key["ok"].replayed
        assert by_key["bad"].replayed
        assert loaded.header["replayed_shards"] == 1

    def test_cache_replays_telemetry_byte_identically(self, tmp_path):
        from repro.cache import CampaignCache

        cache = CampaignCache(root=tmp_path / "cache")
        shards = [
            Shard(key=f"s/{i}", fn=_sim_shard, kwargs={"label": f"l{i}"})
            for i in range(3)
        ]
        cold = CampaignRunner(jobs=1, base_seed=5, campaign="tele-cache",
                              cache=cache, manifest=False)
        cold.run(shards)
        warm = CampaignRunner(jobs=1, base_seed=5, campaign="tele-cache",
                              cache=cache, manifest=False)
        warm.run(shards)
        assert warm.completed == 3
        assert all(t is not None and t.cached for t in warm.last_telemetry)
        # the deterministic merged snapshot is byte-identical warm vs cold
        assert warm.last_snapshot == cold.last_snapshot
        # but the warm run's rows carry no usage (nothing executed)
        assert all(t.usage is None for t in warm.last_telemetry)


class TestManifest:
    def _manifest(self, tmp_path, campaign="m-test"):
        runner = CampaignRunner(jobs=1, base_seed=5, campaign=campaign,
                                manifest=str(tmp_path / f"{campaign}.jsonl"))
        runner.run([
            Shard(key=f"s/{i}", fn=_sim_shard, kwargs={"label": f"l{i}"})
            for i in range(2)
        ])
        return runner.last_manifest_path

    def test_round_trip_and_self_diff_empty(self, tmp_path):
        path = self._manifest(tmp_path)
        loaded = RunManifest.load(path)
        diff = diff_manifests(loaded, loaded)
        assert diff.clean
        assert diff.metric_drift == []
        assert diff.attribution_deltas == []
        assert diff.notes == []

    def test_diff_detects_metric_drift(self, tmp_path):
        a = RunManifest.load(self._manifest(tmp_path, "m-a"))
        b = RunManifest.load(self._manifest(tmp_path, "m-b"))
        # same shape, same values -> clean
        assert diff_manifests(a, b).clean
        # perturb one counter record
        perturbed = RunManifest(
            header=b.header,
            metrics=tuple(
                {**r, "value": r["value"] + 1} if r["name"] == "events_processed"
                else r
                for r in b.metrics
            ),
            shards=b.shards,
        )
        diff = diff_manifests(a, perturbed)
        assert not diff.clean
        assert any(d["field"] == "value" for d in diff.metric_drift)

    def test_load_rejects_headerless_file(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"record": "metric", "component": "x"}\n')
        with pytest.raises(ValueError, match="no header"):
            RunManifest.load(bogus)

    def test_load_rejects_newer_schema(self, tmp_path):
        too_new = tmp_path / "new.jsonl"
        too_new.write_text('{"record": "header", "schema": 99}\n')
        with pytest.raises(ValueError, match="newer"):
            RunManifest.load(too_new)

    def test_shard_row_record_round_trip(self):
        row = ShardRow(index=1, key="k", seed=9, cached=True, replayed=True,
                       wall_seconds=1.25, cpu_seconds=1.0, peak_rss_kb=2048,
                       events=17)
        assert ShardRow.from_record(row.to_record()) == row

    def test_default_path_under_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path / "mdir"))
        assert manifest_path_for("c") == tmp_path / "mdir" / "c.jsonl"
        monkeypatch.delenv("REPRO_MANIFEST_DIR")
        # falls back next to the campaign cache (isolated by conftest)
        assert "repro-cache" in str(manifest_path_for("c"))

    def test_git_describe_is_best_effort(self):
        assert isinstance(git_describe(), str)
        assert git_describe() != ""


class TestExperimentIntegration:
    """The acceptance criterion, on a small slice: jobs=1 == jobs=4 == warm."""

    LABELS = ["M7", "C2"]

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_table1_manifest_metrics_identical_across_jobs_and_cache(self, tmp_path):
        from repro.cache import CampaignCache
        from repro.experiments.table1 import run_table1

        def manifest_for(jobs: int, cache, tag: str) -> RunManifest:
            runner = CampaignRunner(
                jobs=jobs, base_seed=7, campaign="table1", cache=cache,
                manifest=str(tmp_path / f"{tag}.jsonl"),
            )
            run_table1(labels=self.LABELS, trials=1, seed=7, runner=runner)
            return RunManifest.load(runner.last_manifest_path)

        cache = CampaignCache(root=tmp_path / "cache")
        serial = manifest_for(1, cache, "serial")
        parallel = manifest_for(4, CampaignCache(root=tmp_path / "cache2"),
                                "parallel")
        warm = manifest_for(1, cache, "warm")

        assert serial.metrics == parallel.metrics == warm.metrics
        assert diff_manifests(serial, parallel).clean
        assert diff_manifests(serial, warm).clean
        assert all(row.cached for row in warm.shards)


class TestObserveCli:
    def test_report_and_diff(self, tmp_path, capsys):
        from repro.cli import main

        runner = CampaignRunner(jobs=1, base_seed=3, campaign="cli-test",
                                manifest=str(tmp_path / "m.jsonl"))
        runner.run([Shard(key="s/0", fn=_sim_shard, kwargs={"label": "x"})])

        assert main(["observe", "report", str(tmp_path / "m.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert "Per-shard execution" in out

        assert main(["observe", "diff", str(tmp_path / "m.jsonl"),
                     str(tmp_path / "m.jsonl")]) == 0
        assert "zero drift" in capsys.readouterr().out

    def test_diff_exit_code_on_drift(self, tmp_path, capsys):
        from repro.cli import main

        for shards, tag in ((1, "a"), (2, "b")):
            runner = CampaignRunner(jobs=1, base_seed=3, campaign="cli-test",
                                    manifest=str(tmp_path / f"{tag}.jsonl"))
            runner.run([
                Shard(key=f"s/{i}", fn=_sim_shard, kwargs={"label": "x"})
                for i in range(shards)
            ])
        assert main(["observe", "diff", str(tmp_path / "a.jsonl"),
                     str(tmp_path / "b.jsonl")]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_campaign_prints_manifest_path(self, capsys):
        from repro.cli import main

        assert main(["--trials", "1", "--labels", "M7", "table1"]) == 0
        out = capsys.readouterr().out
        assert "\nmanifest: " in out

    def test_no_manifest_flag(self, capsys, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path / "none"))
        assert main(["--trials", "1", "--labels", "M7", "--no-manifest",
                     "table1"]) == 0
        assert "manifest:" not in capsys.readouterr().out
        assert not (tmp_path / "none").exists()
