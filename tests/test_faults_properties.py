"""Property tests for the fault-injection layer.

Two guarantees, for *any* seed and profile:

* whatever the injector does to frames, the byte stream TCP hands the
  application (and therefore TLS) is identical to the no-fault run's —
  impairment may cost time, never bytes; and
* sharded campaigns are schedule-deterministic: a parallel sweep produces
  byte-for-byte the output of the serial one.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantSuite
from repro.faults.profiles import get_profile
from repro.simnet.link import Lan
from repro.simnet.packet import EthernetFrame, IpPacket
from repro.simnet.scheduler import Simulator
from repro.tcp.segment import TcpSegment
from repro.tcp.stack import TcpStack


def _impaired_pair(profile_name: str | None, seed: int):
    """Two TCP stacks joined by a LAN that runs the given fault profile."""
    sim = Simulator(seed=seed)
    lan = Lan(sim)
    if profile_name is not None:
        FaultInjector(sim, get_profile(profile_name), seed=seed).attach(lan)
    suite = InvariantSuite(sim).install()

    class _Host:
        def __init__(self, ip, name):
            self.sim = sim
            self.ip = ip
            self.hostname = name
            self.ip_handler = None
            self.frame_taps = []
            self.nic = lan.attach(self._on_frame)

        def send_ip(self, packet):
            other = b_host if self is a_host else a_host
            self.nic.send(EthernetFrame(self.nic.mac, other.nic.mac, packet))

        def _on_frame(self, frame):
            if self.ip_handler and isinstance(frame.payload, IpPacket):
                if frame.payload.dst_ip == self.ip:
                    self.ip_handler(frame.payload)

    a_host = _Host("10.0.0.1", "a")
    b_host = _Host("10.0.0.2", "b")
    return sim, TcpStack(a_host), TcpStack(b_host), suite


def _transfer(profile_name: str | None, seed: int, chunks: list[bytes]):
    """Send chunks a->b over the (possibly impaired) link; return delivery."""
    sim, a, b, suite = _impaired_pair(profile_name, seed)
    received: list[bytes] = []
    b.listen(
        8883,
        lambda c: setattr(c.callbacks, "on_data", lambda cc, d: received.append(d)),
    )
    conn = a.connect("10.0.0.2", 8883)
    sim.run(5.0)
    for i, chunk in enumerate(chunks):
        sim.schedule(0.5 * i, conn.send, chunk)
    # Generous horizon: every loss pattern short of give-up repairs inside it.
    sim.run(180.0)
    return b"".join(received), suite


class TestByteStreamUnderImpairment:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        profile=st.sampled_from(["lossy", "bursty", "jittery", "chaotic"]),
        chunks=st.lists(
            st.binary(min_size=1, max_size=600), min_size=1, max_size=5
        ),
    )
    def test_delivered_stream_identical_to_no_fault_run(self, seed, profile, chunks):
        impaired, suite = _transfer(profile, seed, chunks)
        ideal, _ = _transfer(None, seed, chunks)
        assert impaired == ideal == b"".join(chunks)
        assert suite.ok, suite.summary()

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        chunks=st.lists(st.binary(min_size=1, max_size=600), min_size=1, max_size=4),
    )
    def test_same_seed_same_impairment_schedule(self, seed, chunks):
        """Replays of a seeded run are byte- and stat-identical."""
        results = []
        for _ in range(2):
            sim, a, b, _suite = _impaired_pair("chaotic", seed)
            received: list[bytes] = []
            b.listen(
                8883,
                lambda c: setattr(
                    c.callbacks, "on_data", lambda cc, d: received.append(d)
                ),
            )
            conn = a.connect("10.0.0.2", 8883)
            sim.run(5.0)
            for chunk in chunks:
                conn.send(chunk)
            sim.run(120.0)
            results.append((b"".join(received), dict(conn.stats)))
        assert results[0] == results[1]


def _row_fingerprint(row):
    return (
        row.scenario.case_id,
        row.consequence_reproduced,
        row.stealthy,
        sorted(row.baseline.metrics.items()),
        sorted(row.attacked.metrics.items()),
        row.attacked.fault_stats,
        row.attacked.invariant_violations,
    )


class TestSerialParallelEquivalence:
    def test_table3_sweep_identical_serial_and_parallel(self):
        from repro.core.attacks.scenarios import TABLE3_SCENARIOS
        from repro.experiments.table3 import run_table3

        cases = TABLE3_SCENARIOS[:3]
        serial = run_table3(
            seed=3, scenarios=cases, jobs=1, faults="lossy", check_invariants=True
        )
        parallel = run_table3(
            seed=3, scenarios=cases, jobs=2, faults="lossy", check_invariants=True
        )
        assert [_row_fingerprint(r) for r in serial] == [
            _row_fingerprint(r) for r in parallel
        ]

    def test_robustness_grid_identical_serial_and_parallel(self):
        from repro.core.attacks.scenarios import TABLE3_SCENARIOS
        from repro.experiments.robustness import run_robustness

        kwargs = dict(
            seed=3,
            loss_grid=(0.0, 0.03),
            jitter_grid=(0.0,),
            scenarios=TABLE3_SCENARIOS[:2],
        )
        assert run_robustness(jobs=1, **kwargs) == run_robustness(jobs=2, **kwargs)


class TestRobustnessAcceptance:
    """The PR's acceptance bar: Table III holds at <=5% loss, invariants on."""

    def test_all_cases_succeed_at_five_percent_loss(self):
        from repro.experiments.table3 import run_table3

        rows = run_table3(seed=3, faults="loss=0.05", check_invariants=True)
        failures = [
            r.scenario.case_id
            for r in rows
            if not (r.consequence_reproduced and r.stealthy)
        ]
        assert failures == []
        for r in rows:
            assert r.baseline.invariant_violations == []
            assert r.attacked.invariant_violations == []
            assert r.attacked.fault_stats is not None
            assert r.attacked.fault_stats["frames_seen"] > 0
