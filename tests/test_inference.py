"""Rule-inference tests (paper Section VI-D2's passive + active steps)."""

from __future__ import annotations

import pytest

from repro.automation import parse_rule
from repro.core import PhantomDelayAttacker, TimeoutBehavior
from repro.core.inference import (
    RuleInferencer,
    extract_messages,
    render_hypotheses,
)
from repro.testbed import SmartHomeTestbed


@pytest.fixture
def inference_home():
    tb = SmartHomeTestbed(seed=131)
    contact = tb.add_device("C2")
    lock = tb.add_device("LK1")
    tb.install_rule(parse_rule("WHEN c2 contact.closed THEN COMMAND lk1 lock"))
    tb.settle(8.0)
    attacker = PhantomDelayAttacker.deploy(tb)
    attacker.interpose(tb.devices["h1"].ip)
    attacker.interpose(tb.devices["h3"].ip)
    tb.run(5.0)
    return tb, contact, lock, attacker


def _simulate_day(tb, contact, lock, cycles=3):
    for _ in range(cycles):
        tb.run(40.0)
        contact.stimulate("open")
        tb.run(10.0)
        lock.state["lock"] = "unlocked"
        contact.stimulate("closed")
    tb.run(10.0)


class TestExtraction:
    def test_messages_oriented_and_filtered(self, inference_home):
        tb, contact, lock, attacker = inference_home
        mark = tb.now
        contact.stimulate("closed")
        tb.run(5.0)
        messages = extract_messages(attacker.capture, since=mark)
        uplinks = [m for m in messages if m.uplink]
        downlinks = [m for m in messages if not m.uplink]
        assert any(m.size == 355 for m in uplinks)       # the contact event
        assert any(m.size == 505 for m in downlinks)     # the lock command
        # Control chatter (keep-alives, compact acks) filtered out.
        assert all(m.size >= 150 for m in messages)


class TestHypothesisMining:
    def test_finds_the_hidden_rule(self, inference_home):
        tb, contact, lock, attacker = inference_home
        _simulate_day(tb, contact, lock)
        hypotheses = RuleInferencer(attacker).hypothesize()
        assert hypotheses
        best = hypotheses[0]
        assert best.trigger_size == 355
        assert best.command_size == 505
        assert best.support >= 3
        assert best.mean_latency < 1.0

    def test_no_rule_no_hypothesis(self):
        tb = SmartHomeTestbed(seed=133)
        contact = tb.add_device("C2")
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(tb.devices["h1"].ip)
        tb.run(5.0)
        for _ in range(3):
            tb.run(30.0)
            contact.stimulate("open")
            contact.stimulate("closed")
        assert RuleInferencer(attacker).hypothesize() == []

    def test_min_support_threshold(self, inference_home):
        tb, contact, lock, attacker = inference_home
        _simulate_day(tb, contact, lock, cycles=1)
        strict = RuleInferencer(attacker, min_support=3)
        assert strict.hypothesize() == []
        loose = RuleInferencer(attacker, min_support=1)
        assert loose.hypothesize()


class TestActiveVerification:
    def test_probe_confirms_real_rule(self, inference_home):
        tb, contact, lock, attacker = inference_home
        _simulate_day(tb, contact, lock)
        inferencer = RuleInferencer(attacker)
        hypothesis = inferencer.hypothesize()[0]
        lock.state["lock"] = "unlocked"
        ok = inferencer.verify(
            hypothesis,
            TimeoutBehavior.from_profile(tb.devices["h1"].profile),
            trigger_physical=lambda: contact.stimulate("closed"),
        )
        assert ok
        assert hypothesis.probe_shift == pytest.approx(5.0, abs=0.5)

    def test_probe_rejects_coincidence(self, inference_home):
        tb, contact, lock, attacker = inference_home
        _simulate_day(tb, contact, lock)
        inferencer = RuleInferencer(attacker)
        hypothesis = inferencer.hypothesize()[0]
        # Sabotage the hypothesis: claim the trigger is a different size.
        hypothesis.trigger_size = 362
        ok = inferencer.verify(
            hypothesis,
            TimeoutBehavior.from_profile(tb.devices["h1"].profile),
            trigger_physical=lambda: contact.stimulate("closed"),
        )
        assert not ok

    def test_render(self, inference_home):
        tb, contact, lock, attacker = inference_home
        _simulate_day(tb, contact, lock)
        text = render_hypotheses(RuleInferencer(attacker).hypothesize())
        assert "355B" in text and "505B" in text
