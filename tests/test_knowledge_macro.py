"""Knowledge-base persistence, bidirectional holds, and a day-in-the-life."""

from __future__ import annotations

import pytest

from repro.core import KnowledgeBase, PhantomDelayAttacker, TimeoutBehavior
from repro.experiments._util import run_until
from repro.testbed import SmartHomeTestbed


class TestKnowledgeBase:
    def test_catalogue_bootstrap(self):
        kb = KnowledgeBase.from_catalogue()
        assert len(kb) == 50
        assert kb.behavior_of("H1").ka_period == 31.0

    def test_unknown_label(self):
        with pytest.raises(LookupError):
            KnowledgeBase().lookup("ZZ")

    def test_save_load_roundtrip(self, tmp_path):
        kb = KnowledgeBase.from_catalogue()
        path = tmp_path / "kb.json"
        kb.save(path)
        loaded = KnowledgeBase.load(path)
        assert len(loaded) == len(kb)
        for label in ("H1", "L2", "HS3", "M7"):
            assert loaded.behavior_of(label) == kb.behavior_of(label)

    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99, "entries": []}')
        with pytest.raises(ValueError):
            KnowledgeBase.load(path)

    def test_profiled_report_entry(self):
        from repro.experiments.table1 import profile_label

        row = profile_label("HS3", trials=1)
        kb = KnowledgeBase()
        entry = kb.add_report("HS3", row.profile.model, row.report)
        assert entry.source == "profiled"
        assert kb.behavior_of("HS3").event_timeout == pytest.approx(20.0, abs=2.0)

    def test_merge_prefers_profiled(self):
        catalogue_kb = KnowledgeBase.from_catalogue()
        profiled_kb = KnowledgeBase()
        custom = TimeoutBehavior(long_live=True, ka_period=99.0, ka_timeout=9.0)
        profiled_kb.add_behavior("H1", "SmartThings Hub v3", custom, source="profiled")
        catalogue_kb.merge(profiled_kb)
        assert catalogue_kb.behavior_of("H1").ka_period == 99.0
        # Catalogue entries never overwrite profiled ones.
        profiled_kb.merge(KnowledgeBase.from_catalogue())
        assert profiled_kb.behavior_of("H1").ka_period == 99.0

    def test_shared_knowledge_drives_attack(self, tmp_path):
        """Attacker B uses attacker A's exported knowledge file."""
        path = tmp_path / "shared.json"
        KnowledgeBase.from_catalogue().save(path)
        kb = KnowledgeBase.load(path)

        tb = SmartHomeTestbed(seed=241)
        contact = tb.add_device("C2")
        hub = tb.devices["h1"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(hub.ip)
        tb.run(40.0)
        operation = attacker.delay_next_event(
            hub.ip, kb.behavior_of("H1"), trigger_size=kb.behavior_of("C2").event_size
        )
        contact.stimulate("open")
        run_until(tb.sim, lambda: operation.released_at is not None, 120.0)
        tb.run(5.0)
        assert operation.stealthy and operation.achieved_delay > 20.0
        assert tb.alarms.silent


class TestBidirectionalHolds:
    def test_both_directions_held_no_ack_storm(self):
        """e-Delay and c-Delay on the *same* flow at once: the dup-ACK
        throttle keeps the probe traffic bounded and both delays work."""
        tb = SmartHomeTestbed(seed=243)
        contact = tb.add_device("C2")
        outlet = tb.add_device("P1")
        hub = tb.devices["h1"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(hub.ip)
        tb.run(35.0)

        up = attacker.hijacker.hold_events(hub.ip, trigger_size=355)
        down = attacker.hijacker.hold_commands(hub.ip, trigger_size=336)
        contact.stimulate("open")
        tb.endpoints["smartthings"].send_command("p1", "on")
        frames_before = tb.lan.frames_transmitted
        tb.run(10.0)
        # Bounded chatter: well under a storm (a storm would be hundreds
        # of frames per second).
        assert tb.lan.frames_transmitted - frames_before < 200
        assert up.holding and down.holding
        attacker.hijacker.release(down)
        attacker.hijacker.release(up)
        tb.run(3.0)
        assert outlet.attribute_value == "on"
        assert tb.endpoints["smartthings"].events_from("c2")
        assert tb.alarms.silent


class TestDayInTheLife:
    def test_24h_home_with_rules_and_activity(self):
        """A full simulated day: periodic resident activity, three rules,
        every automation fires, zero alarms, no reconnects."""
        from repro.automation import parse_rule

        tb = SmartHomeTestbed(seed=245)
        contact = tb.add_device("C2")
        motion = tb.add_device("M2")
        plug = tb.add_device("P1")
        lock = tb.add_device("LK1")
        tb.install_rules([
            parse_rule("WHEN c2 contact.closed THEN COMMAND lk1 lock", "auto-lock"),
            parse_rule("WHEN m2 motion.active THEN COMMAND p1 on", "lights-on"),
            parse_rule("WHEN m2 motion.inactive THEN COMMAND p1 off", "lights-off"),
        ])
        tb.settle(10.0)

        # Hourly comings and goings for 24 hours.
        for hour in range(24):
            base = 3600.0 * hour
            tb.sim.at(tb.now + base + 600.0, motion.stimulate, "active")
            tb.sim.at(tb.now + base + 1200.0, motion.stimulate, "inactive")
            tb.sim.at(tb.now + base + 1800.0, contact.stimulate, "open")
            tb.sim.at(tb.now + base + 1860.0, lock.stimulate, "unlocked")
            tb.sim.at(tb.now + base + 1900.0, contact.stimulate, "closed")
        tb.run(24 * 3600.0 + 100.0)

        assert tb.alarms.silent
        engine = tb.integration.engine
        assert len(engine.actions_taken("auto-lock")) == 24
        assert len(engine.actions_taken("lights-on")) == 24
        assert len(engine.actions_taken("lights-off")) == 24
        assert lock.attribute_value == "locked"
        for device in (contact, motion, plug, lock):
            client = getattr(device, "client", None)
            if client is not None:
                assert client.stats["reconnects"] == 0
        hub_client = tb.devices["h1"].client
        assert hub_client.stats["reconnects"] == 0
        # Keep-alives ran all day: ~31 s period over 24 h.
        assert hub_client.stats["keepalives_sent"] > 2000
