"""Camera streaming, HomeKit command delays, seed robustness, CLI coverage."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core import PhantomDelayAttacker, TimeoutBehavior
from repro.core.attacks.base import compare_scenario
from repro.core.attacks.scenarios import Case8StormDoorUnlock
from repro.devices.base import CameraDevice
from repro.experiments._util import run_until
from repro.testbed import SmartHomeTestbed


class TestCameraStreaming:
    def _streaming_home(self):
        tb = SmartHomeTestbed(seed=251)
        camera = tb.add_device("CM1")
        assert isinstance(camera, CameraDevice)
        tb.settle(8.0)
        camera.start_stream()
        tb.run(10.0)
        return tb, camera

    def test_stream_frames_flow(self):
        tb, camera = self._streaming_home()
        assert camera.stream_frames_sent >= 9
        assert tb.alarms.silent

    def test_stop_stream(self):
        tb, camera = self._streaming_home()
        camera.stop_stream()
        sent = camera.stream_frames_sent
        tb.run(10.0)
        assert camera.stream_frames_sent == sent

    def test_event_hold_does_not_stall_stream(self):
        """Holding the camera's 1200 B motion event leaves the 1400 B
        stream... also held — they share the flow!  The attacker must know
        this: the stream stalls visibly, so camera events are poor e-Delay
        targets while streaming.  The test documents the physics."""
        tb, camera = self._streaming_home()
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(camera.host.ip)
        tb.run(5.0)
        hold = attacker.hijacker.hold_events(camera.host.ip, trigger_size=1200)
        camera.stimulate("active")
        tb.run(5.0)
        assert hold.holding
        # Subsequent stream frames are held behind the event (in-order flow).
        assert hold.held_count > 3
        attacker.hijacker.release(hold)
        tb.run(2.0)
        assert tb.alarms.silent

    def test_idle_camera_event_hold_is_clean(self):
        tb = SmartHomeTestbed(seed=253)
        camera = tb.add_device("CM1")
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(camera.host.ip)
        tb.run(25.0)
        operation = attacker.delay_next_event(
            camera.host.ip, TimeoutBehavior.from_profile(camera.profile),
            trigger_size=1200,
        )
        camera.stimulate("active")
        run_until(tb.sim, lambda: operation.released_at is not None, 120.0)
        tb.run(5.0)
        assert operation.stealthy and tb.alarms.silent


class TestHomeKitCommandDelay:
    def test_local_command_delayed_within_hap_timeout(self):
        """Table II's other column: HomeKit commands do have a timeout
        (the 'No Response' UI), so c-Delay against local actuators is
        bounded — unlike the unbounded events."""
        tb = SmartHomeTestbed(seed=255)
        bulb = tb.add_device("L2", table=2)
        server = tb.ensure_local_server()
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(bulb.host.ip, peer_ip=server.ip)
        tb.run(5.0)
        behavior = TimeoutBehavior.from_profile(bulb.profile)
        assert behavior.command_delay_window() == (10.0, 10.0)
        operation = attacker.c_delay(bulb.host.ip, behavior).arm(
            trigger_size=bulb.profile.command_size
        )
        server.send_command("l2-hk", "on")
        run_until(tb.sim, lambda: operation.released_at is not None, 60.0)
        tb.run(3.0)
        assert operation.stealthy
        assert operation.achieved_delay == pytest.approx(8.0, abs=0.5)  # 10 - margin
        assert bulb.attribute_value == "on"
        assert tb.alarms.silent


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [1, 17, 42, 99, 1234])
    def test_case8_reproduces_across_seeds(self, seed):
        baseline, attacked = compare_scenario(Case8StormDoorUnlock(), seed=seed)
        assert not baseline.metrics["unlocked"]
        assert attacked.metrics["unlocked"], seed
        assert attacked.alarms == {}, seed


class TestCliCoverage:
    def test_plan_command(self, capsys):
        assert main(["plan"]) == 0
        assert "Attack plan" in capsys.readouterr().out

    def test_integrity_command(self, capsys):
        assert main(["integrity"]) == 0
        out = capsys.readouterr().out
        assert "hold-release" in out

    def test_findings_command(self, capsys):
        assert main(["findings"]) == 0
        assert "Finding 1" in capsys.readouterr().out

    def test_export_knowledge(self, tmp_path, capsys):
        path = str(tmp_path / "kb.json")
        assert main(["--labels", path, "export-knowledge"]) == 0
        from repro.core import KnowledgeBase

        assert len(KnowledgeBase.load(path)) == 50
