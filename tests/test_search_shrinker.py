"""Determinism of the search pipeline and the witness shrinker.

The corpus a search emits is a reproducibility artefact: it must be
byte-identical for every ``--jobs`` value, every batch partition, and a
warm-cache replay — the same contract the fleet engine's equivalence
suite pins, extended to the full generate/plan/shrink/write pipeline.
The shrinker itself is deterministic and monotone: it never returns a
longer schedule than it was given, and every accepted or rejected step
is one full re-verification run.
"""

from __future__ import annotations

import pytest

from repro.cache import CampaignCache
from repro.search import (
    SearchConfig,
    SearchRunner,
    candidate_schedules,
    plan_program,
    run_search,
    shrink,
    table3_spec,
)
from repro.search import planner as planner_mod
from repro.search.engine import run_program
from repro.search.generator import RuleSetGenerator
from repro.search.oracles import classify, primary_class


def _corpus_bytes(directory):
    return {
        path.name: path.read_bytes()
        for path in directory.glob("case-*.jsonl")
    }


class TestCorpusDeterminism:
    PROGRAMS = 12

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("corpus-ref")
        report = run_search(self.PROGRAMS, seed=0, jobs=1, cache=False,
                            manifest=False, corpus_dir=out)
        assert report.hits, "the reference search must find something"
        return report, _corpus_bytes(out)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_jobs_do_not_change_the_corpus(self, reference, tmp_path, jobs):
        report, files = reference
        parallel = run_search(self.PROGRAMS, seed=0, jobs=jobs, cache=False,
                              manifest=False, corpus_dir=tmp_path)
        assert parallel.corpus_digest == report.corpus_digest
        assert _corpus_bytes(tmp_path) == files

    @pytest.mark.parametrize("batch_size", [1, 5, 12])
    def test_batch_partition_does_not_change_the_corpus(
            self, reference, tmp_path, batch_size):
        # The partition changes every shard key; the corpus must not care.
        report, files = reference
        runner = SearchRunner(self.PROGRAMS, base_seed=0, jobs=1,
                              batch_size=batch_size, manifest=False)
        other = runner.run(corpus_dir=tmp_path)
        assert other.corpus_digest == report.corpus_digest
        assert _corpus_bytes(tmp_path) == files

    def test_warm_cache_replays_byte_identically(self, reference, tmp_path):
        report, files = reference
        cache = CampaignCache(root=tmp_path / "cache")
        cold_dir = tmp_path / "cold"
        warm_dir = tmp_path / "warm"
        cold = run_search(self.PROGRAMS, seed=0, jobs=1, cache=cache,
                          manifest=False, corpus_dir=cold_dir)
        warm = run_search(self.PROGRAMS, seed=0, jobs=1, cache=cache,
                          manifest=False, corpus_dir=warm_dir)
        assert cold.corpus_digest == warm.corpus_digest == report.corpus_digest
        assert _corpus_bytes(cold_dir) == _corpus_bytes(warm_dir) == files
        assert "hit" in warm.runner_summary  # the replay actually hit


class TestShrinker:
    @pytest.fixture(scope="class")
    def sample(self):
        """A violating (spec, schedule, class, baseline) quadruple."""
        spec = table3_spec(5)
        config = SearchConfig()
        baseline = run_program(spec)
        for schedule in candidate_schedules(spec, config):
            attacked = run_program(spec, schedule)
            violations = classify(baseline, attacked)
            if violations and not attacked.invariant_violations:
                return spec, schedule, primary_class(violations), baseline
        raise AssertionError("no violating candidate for case 5")

    def test_shrink_never_lengthens(self, sample):
        spec, schedule, violation, baseline = sample
        witness, steps = shrink(spec, schedule, violation, baseline,
                                SearchConfig())
        assert len(witness) <= len(schedule)
        assert len(witness) >= 1
        assert steps >= 1

    def test_shrink_is_deterministic(self, sample):
        spec, schedule, violation, baseline = sample
        config = SearchConfig()
        first = shrink(spec, schedule, violation, baseline, config)
        second = shrink(spec, schedule, violation, baseline, config)
        assert first == second

    def test_minimal_witness_still_violates(self, sample):
        spec, schedule, violation, baseline = sample
        witness, _ = shrink(spec, schedule, violation, baseline,
                            SearchConfig())
        attacked = run_program(spec, witness)
        assert primary_class(classify(baseline, attacked)) == violation
        assert not attacked.invariant_violations

    def test_every_shrink_step_is_a_verification_run(self, sample,
                                                     monkeypatch):
        # The shrinker's step count is its run count: each candidate
        # edit — kept or rejected — is verified by one full re-run,
        # never accepted on faith.
        spec, schedule, violation, baseline = sample
        runs = 0
        real = planner_mod.run_program

        def counting(*args, **kwargs):
            nonlocal runs
            runs += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(planner_mod, "run_program", counting)
        _, steps = shrink(spec, schedule, violation, baseline, SearchConfig())
        assert runs == steps

    def test_finite_durations_preferred_over_max_safe(self):
        # The ladder pass trades every max-safe hold for the smallest
        # finite duration that keeps the violation — witnesses should
        # normally carry concrete durations, not None.
        outcome = plan_program(table3_spec(5), SearchConfig())
        hit = outcome["hit"]
        assert hit is not None
        durations = [duration for _dev, _at, duration in hit["schedule"]]
        assert all(d is not None for d in durations)

    def test_generated_hits_already_minimal_under_reshrink(self):
        # Shrinking a shrunk witness again is a fixed point (up to the
        # verification runs it performs): nothing further to remove.
        config = SearchConfig()
        gen = RuleSetGenerator(0, config)
        shrunk = 0
        for index in range(4):
            spec = gen.sample(index)
            outcome = plan_program(spec, config)
            hit = outcome["hit"]
            if hit is None:
                continue
            from repro.search import schedule_from_lists

            witness = schedule_from_lists(hit["schedule"])
            baseline = run_program(spec)
            again, _ = shrink(spec, witness, hit["violation"], baseline,
                              config)
            assert again == witness
            shrunk += 1
        assert shrunk >= 2
