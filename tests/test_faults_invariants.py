"""Regression tests for the invariant checkers: seed each known violation
class and assert the right checker catches it with an actionable message.

A checker that never fires is indistinguishable from a checker that works;
these tests are the proof the suite can actually catch a dishonest stack.
The env-matrix test at the bottom backs the CI ``faults-matrix`` job.
"""

from __future__ import annotations

import os

import pytest

from repro.faults.invariants import (
    ALL_INVARIANTS,
    INV_HOLD_ORDER,
    INV_RULE_PROVENANCE,
    INV_TCP_STREAM,
    INV_TLS_INTEGRITY,
    InvariantError,
    InvariantSuite,
)
from repro.faults.profiles import FaultProfile
from repro.simnet.scheduler import Simulator
from repro.testbed import SmartHomeTestbed


class _FakeConn:
    """Just enough of a TcpConnection for the stream checker's key/label."""

    def __init__(self, local_ip, local_port, remote_ip, remote_port):
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port

    def flow_label(self):
        return f"{self.local_ip}:{self.local_port}<->{self.remote_ip}:{self.remote_port}"


def _pair():
    sender = _FakeConn("10.0.0.1", 40000, "10.0.0.2", 8883)
    receiver = _FakeConn("10.0.0.2", 8883, "10.0.0.1", 40000)
    return sender, receiver


@pytest.fixture
def suite():
    return InvariantSuite(Simulator(seed=0)).install()


class TestTcpStreamChecker:
    def test_faithful_delivery_passes(self, suite):
        sender, receiver = _pair()
        suite.on_tcp_send(sender, b"hello world")
        suite.on_tcp_deliver(receiver, b"hello ")
        suite.on_tcp_deliver(receiver, b"world")
        assert suite.ok

    def test_skipped_retransmission_caught(self, suite):
        """A hole in the stream (lost segment never repaired) is detected."""
        sender, receiver = _pair()
        suite.on_tcp_send(sender, b"aaaabbbbcccc")
        suite.on_tcp_deliver(receiver, b"aaaa")
        suite.on_tcp_deliver(receiver, b"cccc")  # skipped the b's
        assert not suite.ok
        v = suite.violations[0]
        assert v.invariant == INV_TCP_STREAM
        assert "byte 4" in v.message  # names the exact stream offset
        assert "10.0.0.1:40000" in v.message  # names the flow

    def test_mangled_bytes_caught(self, suite):
        sender, receiver = _pair()
        suite.on_tcp_send(sender, b"precious-data")
        suite.on_tcp_deliver(receiver, b"precioXs-data")
        [v] = suite.violations
        assert v.invariant == INV_TCP_STREAM
        assert "0x58" in v.message and "0x75" in v.message  # got X, sent u

    def test_duplicate_delivery_caught(self, suite):
        sender, receiver = _pair()
        suite.on_tcp_send(sender, b"once")
        suite.on_tcp_deliver(receiver, b"once")
        suite.on_tcp_deliver(receiver, b"once")  # delivered twice
        [v] = suite.violations
        assert v.invariant == INV_TCP_STREAM
        assert "exactly-once" in v.message

    def test_invented_data_caught(self, suite):
        _, receiver = _pair()
        suite.on_tcp_deliver(receiver, b"from thin air")
        [v] = suite.violations
        assert v.invariant == INV_TCP_STREAM
        assert "no recorded sender" in v.message


class TestTlsIntegrityChecker:
    def test_any_fatal_alert_is_a_violation(self, suite):
        suite.on_tls_alert("server@flow-x", "bad_record_mac")
        [v] = suite.violations
        assert v.invariant == INV_TLS_INTEGRITY
        assert "bad_record_mac" in v.message and "flow-x" in v.message

    def test_corrupt_deliver_mode_end_to_end(self):
        """A frame mangled past the FCS must be caught by the TLS MAC."""
        profile = FaultProfile(
            name="bitrot", corrupt=0.25, corrupt_mode="deliver"
        )
        tb = SmartHomeTestbed(seed=1, faults=profile, check_invariants=True)
        tb.add_device("SM1")
        tb.settle()
        tb.run(60.0)
        tls_violations = [
            v for v in tb.invariants.violations if v.invariant == INV_TLS_INTEGRITY
        ]
        assert tls_violations, "corrupted records reached TLS but no alert fired"
        assert tb.fault_injector.stats["corrupted_delivered"] > 0

    def test_corrupt_drop_mode_stays_silent(self):
        """The honest default: FCS discards, TCP repairs, TLS never sees it."""
        profile = FaultProfile(name="fcs", corrupt=0.1, corrupt_mode="drop")
        tb = SmartHomeTestbed(seed=1, faults=profile, check_invariants=True)
        tb.add_device("SM1")
        tb.settle()
        tb.run(60.0)
        assert tb.invariants.ok, tb.invariants.summary()
        assert tb.fault_injector.stats["dropped_corrupt"] > 0


class TestHoldOrderChecker:
    def test_in_order_release_passes(self, suite):
        suite.on_hold_release("flow-a", [1.0, 2.0, 3.0])
        suite.on_hold_release("flow-a", [4.0])
        assert suite.ok

    def test_shuffled_release_caught(self, suite):
        suite.on_hold_release("flow-a", [5.0, 4.0])
        [v] = suite.violations
        assert v.invariant == INV_HOLD_ORDER
        assert "capture order" in v.message

    def test_release_older_than_previous_batch_caught(self, suite):
        suite.on_hold_release("flow-a", [1.0, 2.0])
        suite.on_hold_release("flow-a", [1.5])  # older than the last release
        [v] = suite.violations
        assert v.invariant == INV_HOLD_ORDER

    def test_flows_are_independent(self, suite):
        suite.on_hold_release("flow-a", [5.0])
        suite.on_hold_release("flow-b", [1.0])  # different flow: fine
        assert suite.ok


class TestRuleProvenanceChecker:
    def test_fire_with_emission_passes(self, suite):
        suite.on_event_emitted("c1", "contact.open")
        suite.on_rule_fired("rule-1", "c1", "contact.open")
        assert suite.ok

    def test_phantom_firing_caught(self, suite):
        suite.on_rule_fired("rule-1", "c1", "contact.open")
        [v] = suite.violations
        assert v.invariant == INV_RULE_PROVENANCE
        assert "rule-1" in v.message and "c1" in v.message

    def test_double_firing_from_one_emission_caught(self, suite):
        suite.on_event_emitted("c1", "contact.open")
        suite.on_rule_fired("rule-1", "c1", "contact.open")
        suite.on_rule_fired("rule-1", "c1", "contact.open")
        [v] = suite.violations
        assert "fired 2 time(s)" in v.message and "1 time(s)" in v.message


class TestSuiteMechanics:
    def test_check_raises_with_every_violation_listed(self, suite):
        suite.on_hold_release("f", [2.0, 1.0])
        suite.on_rule_fired("r", "d", "e")
        with pytest.raises(InvariantError) as exc:
            suite.check()
        assert len(exc.value.violations) == 2
        assert INV_HOLD_ORDER in str(exc.value)
        assert INV_RULE_PROVENANCE in str(exc.value)

    def test_strict_mode_raises_at_the_moment_of_violation(self):
        suite = InvariantSuite(Simulator(seed=0), strict=True).install()
        with pytest.raises(InvariantError):
            suite.on_hold_release("f", [2.0, 1.0])

    def test_summary_reports_checks_and_violations(self, suite):
        suite.on_hold_release("f", [1.0])
        assert "all held" in suite.summary()
        suite.on_rule_fired("r", "d", "e")
        assert "1 violation" in suite.summary()

    def test_all_invariants_enumerated(self):
        assert set(ALL_INVARIANTS) == {
            INV_TCP_STREAM, INV_TLS_INTEGRITY, INV_HOLD_ORDER, INV_RULE_PROVENANCE,
        }


class TestFaultsMatrix:
    """CI entry point: REPRO_FAULT_PROFILE x REPRO_FAULT_SEED sweep.

    Locally this runs one (lossy, seed 3) cell; the ``faults-matrix`` CI job
    fans it out over three seeds and three profiles via the env vars.
    """

    def test_table3_succeeds_under_profile(self):
        from repro.experiments.table3 import run_table3

        profile = os.environ.get("REPRO_FAULT_PROFILE", "lossy")
        seed = int(os.environ.get("REPRO_FAULT_SEED", "3"))
        rows = run_table3(seed=seed, faults=profile, check_invariants=True)
        failures = [
            r.scenario.case_id
            for r in rows
            if not (r.consequence_reproduced and r.stealthy)
        ]
        assert failures == [], f"{profile}@seed={seed}: {failures}"
        violations = [
            v
            for r in rows
            for v in (r.baseline.invariant_violations or [])
            + (r.attacked.invariant_violations or [])
        ]
        assert violations == [], f"{profile}@seed={seed}: {violations}"
