"""Property and pin tests for the search rule-set generator.

The generator's contract mirrors the fleet sampler's: program *i* of a
search is a pure function of ``(base_seed, i)``, every generated rule
line is legal DSL that round-trips through parse/unparse, specs survive
the JSON round trip digest-intact, and loaders reject records written by
a newer schema.  The seed and digest pins are part of the
reproducibility contract — do not update them to make the test pass;
bump ``SEARCH_SCHEMA`` instead.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automation.dsl import parse_rule, unparse_rule
from repro.devices.profiles import CATALOGUE
from repro.parallel import derive_seed
from repro.search import (
    SEARCH_SCHEMA,
    Hold,
    ProgramSpec,
    RuleSetGenerator,
    SearchConfig,
    program_seed,
    schedule_from_lists,
    schedule_to_lists,
    session_of,
)


class TestProgramSeeds:
    def test_pinned_values_never_drift(self):
        # The search namespace pins: every previously generated program
        # replays byte-identically only while these hold.  Do not update
        # them to make the test pass — bump SEARCH_SCHEMA instead.
        assert program_seed(0, 0) == 719046569849950451
        assert program_seed(0, 1) == 1935413437187983039
        assert program_seed(0, 2) == 1185285789311657292
        assert program_seed(0, 63) == 2552485082471241565
        assert program_seed(7, 0) == 3373751155317006170

    def test_matches_campaign_namespace(self):
        assert program_seed(7, 12) == derive_seed(7, "search/12")


class TestGeneratorDeterminism:
    def test_golden_spec_digests_never_drift(self):
        # Digest pins for the first programs of the seed-0 search: any
        # drift silently re-rolls every generated corpus.
        gen = RuleSetGenerator(0)
        assert gen.sample(0).digest() == "54ecb4a0754b3594747c5929b64dd41e"
        assert gen.sample(1).digest() == "f44bb0dc84b3b006279dd0c8a35d1188"
        assert gen.sample(2).digest() == "bc0d1e22d0c94d3d8c90310a00733b62"

    @given(base=st.integers(0, 2**31), index=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_sample_is_a_pure_function(self, base, index):
        # Same (base_seed, index) -> identical spec, regardless of what
        # was sampled before: no hidden state between draws.
        gen = RuleSetGenerator(base)
        first = gen.sample(index)
        gen.sample(index + 1)
        assert gen.sample(index) == first
        assert RuleSetGenerator(base).sample(index) == first

    def test_batching_does_not_change_programs(self):
        # sample_many over any partition equals per-index sampling —
        # the property the shard partition relies on.
        gen = RuleSetGenerator(3)
        whole = gen.sample_many(12)
        parts = gen.sample_many(5) + gen.sample_many(7, start=5)
        assert whole == parts

    def test_distinct_programs_across_indices(self):
        specs = RuleSetGenerator(0).sample_many(32)
        assert len({spec.digest() for spec in specs}) == 32


class TestGeneratedStructure:
    @pytest.fixture(scope="class")
    def specs(self):
        return RuleSetGenerator(0).sample_many(48)

    def test_every_rule_line_parses_and_round_trips(self, specs):
        for spec in specs:
            for line in spec.rules:
                rule = parse_rule(line, rule_id="probe")
                again = parse_rule(unparse_rule(rule), rule_id="probe")
                assert again.trigger == rule.trigger
                assert again.condition == rule.condition
                assert again.action == rule.action

    def test_rules_reference_only_program_devices(self, specs):
        for spec in specs:
            ids = {label.lower() for label in spec.devices}
            for line in spec.rules:
                rule = parse_rule(line, rule_id="probe")
                assert rule.trigger.device_id in ids
                if rule.condition is not None:
                    assert rule.condition.device_id in ids

    def test_conditions_live_on_a_different_session(self, specs):
        # A condition on the trigger's own uplink session cannot be held
        # independently; the generator must never produce one.
        found = 0
        for spec in specs:
            for line in spec.rules:
                rule = parse_rule(line, rule_id="probe")
                if rule.condition is None:
                    continue
                found += 1
                assert (session_of(rule.condition.device_id.upper())
                        != session_of(rule.trigger.device_id.upper()))
        assert found > 10  # the space actually contains conditioned rules

    def test_stimuli_are_ordered_and_within_duration(self, specs):
        for spec in specs:
            times = [s.at for s in spec.stimuli]
            assert times == sorted(times)
            assert spec.stimuli, "every program has a timeline"
            assert spec.duration >= times[-1] + 10.0

    def test_stimulus_values_are_legal_for_the_device(self, specs):
        from repro.devices.behaviors import behavior_for

        label_of = {label.lower(): label for spec in specs
                    for label in spec.devices}
        for spec in specs:
            for stimulus in spec.stimuli:
                kind = CATALOGUE.get(label_of[stimulus.device_id]).kind
                assert stimulus.value in behavior_for(kind).sensor_values


class TestSpecSerialisation:
    @given(index=st.integers(0, 200), base=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_dict_round_trip_preserves_identity(self, index, base):
        spec = RuleSetGenerator(base).sample(index)
        again = ProgramSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_digest_ignores_meta(self):
        spec = RuleSetGenerator(0).sample(0)
        tagged = ProgramSpec.from_dict({**spec.to_dict(), "meta": {"x": 1}})
        assert tagged.digest() == spec.digest()
        assert tagged == spec  # meta is compare=False provenance

    def test_newer_schema_rejected(self):
        record = RuleSetGenerator(0).sample(0).to_dict()
        record["schema"] = SEARCH_SCHEMA + 1
        with pytest.raises(ValueError, match="newer than supported"):
            ProgramSpec.from_dict(record)

    def test_newer_config_schema_rejected(self):
        record = SearchConfig().to_dict()
        record["schema"] = SEARCH_SCHEMA + 1
        with pytest.raises(ValueError, match="newer than supported"):
            SearchConfig.from_dict(record)

    def test_config_round_trip(self):
        config = SearchConfig(max_candidates=3, duration_ladder=(2.0, 4.0))
        assert SearchConfig.from_dict(config.to_dict()) == config
        assert SearchConfig.from_dict(None) == SearchConfig()

    def test_schedule_round_trip(self):
        schedule = (Hold("c1", 3.0, 5.0), Hold("m2", 10.5, None))
        assert schedule_from_lists(schedule_to_lists(schedule)) == schedule
