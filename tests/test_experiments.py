"""Experiment-driver structure tests: rows, renderers, and criteria.

The heavyweight full campaigns run in the benchmarks; these tests exercise
the drivers on small subsets so regressions in row structure, matching
criteria, or renderers surface in the unit suite.
"""

from __future__ import annotations


import pytest

from repro.experiments.table1 import profile_label, render_table1, run_table1
from repro.experiments.table2 import profile_local_label, render_table2
from repro.experiments.table3 import CaseRow, render_table3, run_table3
from repro.experiments.verification import render_verification, verify_device
from repro.core.attacks.scenarios import Case1FrontDoorVoiceAlert, Case8StormDoorUnlock


class TestTable1Driver:
    def test_row_structure(self):
        row = profile_label("HS1", trials=1)
        assert row.profile.label == "HS1"
        assert row.expected_event_window == (30.0, 60.0)
        assert row.measured_event_window[1] == pytest.approx(60.0, abs=3.0)
        assert row.matches_expectation()

    def test_run_table1_subset(self):
        rows = run_table1(labels=["HS3", "M7"], trials=1)
        assert [r.profile.label for r in rows] == ["HS3", "M7"]

    def test_render_contains_anchors(self):
        rows = run_table1(labels=["HS3"], trials=1)
        text = render_table1(rows)
        assert "SimpliSafe Keypad" in text and "Matches" in text

    def test_matches_expectation_rejects_divergence(self):
        row = profile_label("HS1", trials=1)
        # Tamper with the report to simulate a wrong measurement.
        row.report.ka_timeout = 5.0
        assert not row.matches_expectation()


class TestTable2Driver:
    def test_local_row_unbounded(self):
        row = profile_local_label("S2", trials=1)
        assert row.event_unbounded
        assert row.report.event_size == 275
        assert row.matches_expectation

    def test_render(self):
        row = profile_local_label("S2", trials=1)
        assert "HomePod" in render_table2([row])


class TestTable3Driver:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table3(
            seed=5, scenarios=[Case1FrontDoorVoiceAlert(), Case8StormDoorUnlock()]
        )

    def test_rows_reproduce(self, rows):
        assert all(r.consequence_reproduced for r in rows)
        assert all(r.stealthy for r in rows)

    def test_render(self, rows):
        text = render_table3(rows)
        assert "Case 1" in text and "Case 8" in text and "Stealthy" in text

    def test_consequence_criterion_strict(self, rows):
        row = rows[0]
        broken = CaseRow(
            scenario=row.scenario, baseline=row.baseline, attacked=row.baseline
        )
        assert not broken.consequence_reproduced  # no delta -> not reproduced


class TestVerificationDriver:
    def test_single_device(self):
        row = verify_device("C2", trials=2, seed=141)
        assert row.success_rate == 1.0
        assert all(t.achieved_delay > 10.0 for t in row.trials)

    def test_render(self):
        row = verify_device("C2", trials=1, seed=143)
        text = render_verification([row])
        assert "100%" in text
