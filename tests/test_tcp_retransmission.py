"""RTO edge cases: exact-tick retransmission, backoff cap, duplicate-ACK
fast retransmit, and the forged-ACK interplay the attack depends on.

These pin down the retransmission clock the paper measures (Section IV-A1):
the phantom delay works *because* forged ACKs silence this exact machinery,
so its behaviour must stay honest under the fault injector.
"""

from __future__ import annotations

from repro.simnet.packet import EthernetFrame, IpPacket
from repro.simnet.link import Lan
from repro.simnet.scheduler import Simulator
from repro.tcp.connection import (
    REASON_RETRANSMIT_TIMEOUT,
    TcpCallbacks,
    TcpConfig,
)
from repro.tcp.segment import TcpSegment, make_segment, seq_add
from repro.tcp.stack import TcpStack


def _wire_pair(seed=5, loss_filter=None, tap=None):
    """Two stacks joined by a LAN, with optional drop filter and send tap."""
    sim = Simulator(seed=seed)
    lan = Lan(sim)

    class _Host:
        def __init__(self, ip, name):
            self.sim = sim
            self.ip = ip
            self.hostname = name
            self.ip_handler = None
            self.frame_taps = []
            self.nic = lan.attach(self._on_frame)

        def send_ip(self, packet):
            if tap is not None:
                tap(sim.now, packet)
            if loss_filter is not None and loss_filter(packet):
                return
            other = b_host if self is a_host else a_host
            self.nic.send(EthernetFrame(self.nic.mac, other.nic.mac, packet))

        def _on_frame(self, frame):
            if self.ip_handler and isinstance(frame.payload, IpPacket):
                if frame.payload.dst_ip == self.ip:
                    self.ip_handler(frame.payload)

    a_host = _Host("10.0.0.1", "a")
    b_host = _Host("10.0.0.2", "b")
    return sim, TcpStack(a_host), TcpStack(b_host)


def _data_times(record, src_ip="10.0.0.1"):
    return [
        t for t, p in record
        if p.src_ip == src_ip
        and isinstance(p.payload, TcpSegment)
        and p.payload.payload
    ]


class TestRtoTiming:
    def test_retransmit_fires_at_exactly_the_initial_rto(self):
        """First retransmission happens one rto_initial after the send."""
        record = []
        drop = {"n": 0}

        def loss(packet):
            seg = packet.payload
            if isinstance(seg, TcpSegment) and seg.payload and drop["n"] == 0:
                drop["n"] += 1
                return True
            return False

        sim, a, b = _wire_pair(loss_filter=loss, tap=lambda t, p: record.append((t, p)))
        b.listen(80, lambda c: None)
        conn = a.connect("10.0.0.2", 80, config=TcpConfig(rto_initial=1.0))
        sim.run(1.0)
        conn.send(b"once")
        sim.run(5.0)
        times = _data_times(record)
        assert len(times) == 2
        # The retx timer is armed at send time for exactly rto_initial.
        assert abs((times[1] - times[0]) - 1.0) < 1e-9
        assert conn.stats["retransmissions"] == 1

    def test_backoff_doubles_then_caps_at_rto_max(self):
        record = []
        sim, a, b = _wire_pair(
            loss_filter=lambda p: isinstance(p.payload, TcpSegment)
            and bool(p.payload.payload),
            tap=lambda t, p: record.append((t, p)),
        )
        closed = []
        b.listen(80, lambda c: None)
        conn = a.connect(
            "10.0.0.2", 80,
            callbacks=TcpCallbacks(on_closed=lambda c, r: closed.append(r)),
            config=TcpConfig(
                rto_initial=1.0, rto_backoff=2.0, rto_max=4.0, max_retransmits=6
            ),
        )
        sim.run(1.0)
        conn.send(b"doomed")
        sim.run(120.0)
        gaps = [b_ - a_ for a_, b_ in zip(_data_times(record), _data_times(record)[1:])]
        # 6 retransmissions: gaps 1, ~2, ~4, then pinned at ~4 (±10% jitter).
        assert len(gaps) == 6
        assert abs(gaps[0] - 1.0) < 1e-9
        for gap in gaps[1:]:
            assert gap <= 4.0 * 1.1 + 1e-9
        assert abs(gaps[-1] - 4.0) <= 4.0 * 0.1 + 1e-9
        assert gaps[-1] >= gaps[0]
        # Give-up after the cap was hit repeatedly.
        assert closed == [REASON_RETRANSMIT_TIMEOUT]

    def test_ack_before_rto_cancels_the_timer(self):
        record = []
        sim, a, b = _wire_pair(tap=lambda t, p: record.append((t, p)))
        b.listen(80, lambda c: None)
        conn = a.connect("10.0.0.2", 80, config=TcpConfig(rto_initial=1.0))
        sim.run(1.0)
        conn.send(b"fine")
        sim.run(10.0)
        assert len(_data_times(record)) == 1
        assert conn.stats["retransmissions"] == 0


class TestFastRetransmit:
    def test_three_dup_acks_trigger_fast_retransmit(self):
        """A hole followed by later segments is repaired well before the RTO."""
        drop = {"n": 0}

        def loss(packet):
            seg = packet.payload
            if isinstance(seg, TcpSegment) and seg.payload and drop["n"] == 0:
                drop["n"] += 1
                return True
            return False

        sim, a, b = _wire_pair(loss_filter=loss)
        received = []
        b.listen(
            80,
            lambda c: setattr(
                c.callbacks, "on_data", lambda cc, d: received.append(d)
            ),
        )
        conn = a.connect(
            "10.0.0.2", 80, config=TcpConfig(mss=4, rto_initial=30.0)
        )
        sim.run(1.0)
        conn.send(b"aaaabbbbccccdddd")  # 4 segments; the first is dropped
        sim.run(5.0)  # far less than the 30 s RTO
        assert b"".join(received) == b"aaaabbbbccccdddd"
        assert conn.stats["fast_retransmits"] == 1
        assert conn.stats["retransmissions"] == 0  # RTO clock never consulted

    def test_fast_retransmit_does_not_burn_the_give_up_counter(self):
        """Fast retransmits must not count against max_retransmits."""
        drop = {"n": 0}

        def loss(packet):
            seg = packet.payload
            if isinstance(seg, TcpSegment) and seg.payload and drop["n"] == 0:
                drop["n"] += 1
                return True
            return False

        sim, a, b = _wire_pair(loss_filter=loss)
        closed = []
        b.listen(80, lambda c: None)
        conn = a.connect(
            "10.0.0.2", 80,
            callbacks=TcpCallbacks(on_closed=lambda c, r: closed.append(r)),
            config=TcpConfig(mss=4, rto_initial=30.0, max_retransmits=1),
        )
        sim.run(1.0)
        conn.send(b"aaaabbbbccccdddd")
        sim.run(10.0)
        assert conn.stats["fast_retransmits"] == 1
        assert closed == []  # the connection survived

    def test_dup_acks_below_threshold_do_nothing(self):
        sim, a, b = _wire_pair()
        b.listen(80, lambda c: None)
        conn = a.connect("10.0.0.2", 80, config=TcpConfig(rto_initial=30.0))
        sim.run(1.0)
        conn.send(b"data")
        sim.run(0.5)
        # Two forged pure duplicate ACKs at snd_una: below the threshold.
        for _ in range(2):
            conn.on_segment(
                make_segment(80, conn.local_port, conn.rcv_nxt, conn.snd_una, "ACK")
            )
        sim.run(0.5)
        assert conn.stats["fast_retransmits"] == 0


class TestForgedAckInterplay:
    """The hijacker's forged ACK vs. the sender's retransmission machinery."""

    def _held_sender(self, rto=1.0):
        """Sender whose data segment is swallowed (as a hold would)."""
        swallowed = []

        def loss(packet):
            seg = packet.payload
            if isinstance(seg, TcpSegment) and seg.payload:
                swallowed.append(packet)
                return True
            return False

        sim, a, b = _wire_pair(loss_filter=loss)
        b.listen(80, lambda c: None)
        conn = a.connect("10.0.0.2", 80, config=TcpConfig(rto_initial=rto))
        sim.run(1.0)
        conn.send(b"held-payload")
        return sim, conn, swallowed

    def test_forged_ack_silences_the_retransmission_timer(self):
        sim, conn, swallowed = self._held_sender()
        assert len(swallowed) == 1
        seg = swallowed[0].payload
        forged = make_segment(
            80, conn.local_port, conn.rcv_nxt, seq_add(seg.seq, seg.seq_space), "ACK"
        )
        conn.on_segment(forged)
        sim.run(30.0)
        # No retransmission ever: the sender believes the data arrived.
        assert conn.stats["retransmissions"] == 0
        assert conn.snd_una == seq_add(seg.seq, seg.seq_space)
        assert conn.established

    def test_without_forged_ack_the_hold_would_be_loud(self):
        sim, conn, swallowed = self._held_sender()
        sim.run(30.0)
        assert conn.stats["retransmissions"] >= 1

    def test_repeated_forged_acks_never_fast_retransmit(self):
        """Forged ACKs land when nothing is unacked: not duplicate signals."""
        sim, conn, swallowed = self._held_sender(rto=60.0)
        seg = swallowed[0].payload
        forged = make_segment(
            80, conn.local_port, conn.rcv_nxt, seq_add(seg.seq, seg.seq_space), "ACK"
        )
        for _ in range(5):
            conn.on_segment(forged)
        sim.run(5.0)
        assert conn.stats["fast_retransmits"] == 0
        assert conn.stats["retransmissions"] == 0


class TestOutOfOrderLimits:
    def test_ooo_buffer_cap_discards_excess_segments(self):
        sim, a, b = _wire_pair()
        server = []
        b.listen(80, server.append, config=TcpConfig(ooo_limit=2))
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        srv = server[0]
        base = srv.rcv_nxt
        # Three distinct out-of-order segments; the third exceeds the cap.
        for i in (1, 2, 3):
            srv.on_segment(
                make_segment(
                    conn.local_port, 80, seq_add(base, i * 4), srv.snd_nxt,
                    "ACK", payload=b"xxxx",
                )
            )
        assert srv.stats["ooo_buffered"] == 2
        assert srv.stats["ooo_discarded"] == 1

    def test_duplicate_ooo_segment_is_not_double_counted(self):
        sim, a, b = _wire_pair()
        server = []
        b.listen(80, server.append, config=TcpConfig(ooo_limit=2))
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        srv = server[0]
        seg = make_segment(
            conn.local_port, 80, seq_add(srv.rcv_nxt, 4), srv.snd_nxt,
            "ACK", payload=b"xxxx",
        )
        srv.on_segment(seg)
        srv.on_segment(seg)  # same hole again: replaces, never discards
        assert srv.stats["ooo_discarded"] == 0
