"""TLS record layer and session tests: integrity without timeliness."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.tls.errors import HandshakeError, MacVerificationError, RecordFormatError
from repro.tls.record import (
    CONTENT_APPLICATION,
    HEADER_BYTES,
    MAC_BYTES,
    RecordReader,
    RecordWriter,
    derive_keys,
    memo_stats,
    reset_memo,
)
from repro.tls.session import KeyEscrow, RECORD_OVERHEAD, TlsSession
from repro.tcp.stack import TcpStack


def _channel(master=b"m" * 32):
    writer = RecordWriter(*derive_keys(master, "client"))
    reader = RecordReader(*derive_keys(master, "server"))
    # reader must read what the *client* writes
    reader = RecordReader(*derive_keys(master, "client"))
    return writer, reader


class TestRecordLayer:
    def test_roundtrip(self):
        writer, reader = _channel()
        wire = writer.seal(CONTENT_APPLICATION, b"hello")
        records = reader.feed(wire)
        assert records == [(CONTENT_APPLICATION, b"hello")]

    def test_wire_size_is_plaintext_plus_overhead(self):
        writer, _ = _channel()
        wire = writer.seal(CONTENT_APPLICATION, b"x" * 100)
        assert len(wire) == 100 + HEADER_BYTES + MAC_BYTES

    def test_multiple_records_in_order(self):
        writer, reader = _channel()
        wire = b"".join(writer.seal(CONTENT_APPLICATION, bytes([i])) for i in range(5))
        records = reader.feed(wire)
        assert [p for _, p in records] == [bytes([i]) for i in range(5)]

    def test_partial_feed_buffers(self):
        writer, reader = _channel()
        wire = writer.seal(CONTENT_APPLICATION, b"split")
        assert reader.feed(wire[:3]) == []
        assert reader.feed(wire[3:]) == [(CONTENT_APPLICATION, b"split")]

    def test_ciphertext_differs_from_plaintext(self):
        writer, _ = _channel()
        wire = writer.seal(CONTENT_APPLICATION, b"secret-payload")
        assert b"secret-payload" not in wire

    def test_same_plaintext_different_ciphertext_per_seq(self):
        writer, _ = _channel()
        w1 = writer.seal(CONTENT_APPLICATION, b"same")
        w2 = writer.seal(CONTENT_APPLICATION, b"same")
        assert w1[HEADER_BYTES:] != w2[HEADER_BYTES:]

    def test_corrupted_byte_fails_mac(self):
        writer, reader = _channel()
        wire = bytearray(writer.seal(CONTENT_APPLICATION, b"data"))
        wire[HEADER_BYTES] ^= 0x01
        with pytest.raises(MacVerificationError):
            reader.feed(bytes(wire))

    def test_corrupted_mac_fails(self):
        writer, reader = _channel()
        wire = bytearray(writer.seal(CONTENT_APPLICATION, b"data"))
        wire[-1] ^= 0x01
        with pytest.raises(MacVerificationError):
            reader.feed(bytes(wire))

    def test_replayed_record_fails(self):
        writer, reader = _channel()
        wire = writer.seal(CONTENT_APPLICATION, b"once")
        reader.feed(wire)
        with pytest.raises(MacVerificationError):
            reader.feed(wire)  # same bytes, but reader seq advanced

    def test_dropped_record_fails_on_next(self):
        writer, reader = _channel()
        _lost = writer.seal(CONTENT_APPLICATION, b"lost")
        kept = writer.seal(CONTENT_APPLICATION, b"kept")
        with pytest.raises(MacVerificationError):
            reader.feed(kept)

    def test_reordered_records_fail(self):
        writer, reader = _channel()
        first = writer.seal(CONTENT_APPLICATION, b"first")
        second = writer.seal(CONTENT_APPLICATION, b"second")
        with pytest.raises(MacVerificationError):
            reader.feed(second + first)

    def test_delayed_but_ordered_records_verify(self):
        # The paper's whole point: arbitrary delay, same order -> silence.
        writer, reader = _channel()
        batch = [writer.seal(CONTENT_APPLICATION, bytes([i])) for i in range(10)]
        out = []
        for wire in batch:  # "released" long after sealing, in order
            out.extend(reader.feed(wire))
        assert [p for _, p in out] == [bytes([i]) for i in range(10)]

    def test_wrong_key_fails(self):
        writer, _ = _channel(master=b"a" * 32)
        reader = RecordReader(*derive_keys(b"b" * 32, "client"))
        with pytest.raises(MacVerificationError):
            reader.feed(writer.seal(CONTENT_APPLICATION, b"x"))

    def test_oversized_plaintext_rejected(self):
        writer, _ = _channel()
        with pytest.raises(ValueError):
            writer.seal(CONTENT_APPLICATION, b"x" * (2**14 + 1))

    def test_bad_version_rejected(self):
        _, reader = _channel()
        with pytest.raises(RecordFormatError):
            reader.feed(b"\x17\x01\x01\x00\x20" + b"x" * 32)

    def test_direction_keys_differ(self):
        client_enc, client_mac = derive_keys(b"m" * 32, "client")
        server_enc, server_mac = derive_keys(b"m" * 32, "server")
        assert client_enc != server_enc and client_mac != server_mac

    def test_bad_role_rejected(self):
        with pytest.raises(ValueError):
            derive_keys(b"m" * 32, "middlebox")

    @given(st.lists(st.binary(min_size=0, max_size=500), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_roundtrip_any_payloads(self, payloads):
        writer, reader = _channel()
        out = []
        for payload in payloads:
            out.extend(reader.feed(writer.seal(CONTENT_APPLICATION, payload)))
        assert [p for _, p in out] == payloads

    @given(st.binary(min_size=1, max_size=300), st.data())
    @settings(max_examples=50)
    def test_roundtrip_under_arbitrary_chunking(self, payload, data):
        writer, reader = _channel()
        wire = writer.seal(CONTENT_APPLICATION, payload)
        out = []
        i = 0
        while i < len(wire):
            step = data.draw(st.integers(1, len(wire) - i))
            out.extend(reader.feed(wire[i : i + step]))
            i += step
        assert out == [(CONTENT_APPLICATION, payload)]


class TestKeyEscrow:
    def test_register_redeem(self):
        escrow = KeyEscrow()
        escrow.register(b"t" * 16, b"s" * 32)
        assert escrow.redeem(b"t" * 16) == b"s" * 32

    def test_unknown_token(self):
        with pytest.raises(HandshakeError):
            KeyEscrow().redeem(b"?" * 16)

    def test_token_collision(self):
        escrow = KeyEscrow()
        escrow.register(b"t" * 16, b"a" * 32)
        with pytest.raises(HandshakeError):
            escrow.register(b"t" * 16, b"b" * 32)


def _tls_pair(net):
    from repro.tls.session import KeyEscrow

    escrow = KeyEscrow()
    device = net.add_lan_host("device")
    cloud = net.add_cloud_host("cloud")
    dev_stack, cloud_stack = TcpStack(device), TcpStack(cloud)
    server_sessions, server_msgs = [], []

    def on_accept(conn):
        server_sessions.append(
            TlsSession(conn, "server", escrow=escrow,
                       on_message=lambda s, m: server_msgs.append(m))
        )

    cloud_stack.listen(443, on_accept)
    client_msgs = []
    conn = dev_stack.connect(cloud.ip, 443)
    client = TlsSession(conn, "client", escrow=escrow,
                        on_message=lambda s, m: client_msgs.append(m))
    return client, server_sessions, server_msgs, client_msgs


class TestTlsSession:
    def test_handshake_establishes_both(self, net):
        client, servers, _, _ = _tls_pair(net)
        net.sim.run(2.0)
        assert client.established and servers[0].established

    def test_pre_handshake_sends_are_queued(self, net):
        client, _, server_msgs, _ = _tls_pair(net)
        client.send_message(b"early")
        net.sim.run(2.0)
        assert server_msgs == [b"early"]

    def test_bidirectional_messages(self, net):
        client, servers, server_msgs, client_msgs = _tls_pair(net)
        net.sim.run(2.0)
        client.send_message(b"up")
        net.sim.run(1.0)
        servers[0].send_message(b"down")
        net.sim.run(1.0)
        assert server_msgs == [b"up"] and client_msgs == [b"down"]

    def test_message_boundaries_preserved(self, net):
        client, _, server_msgs, _ = _tls_pair(net)
        net.sim.run(2.0)
        for i in range(4):
            client.send_message(bytes([i]) * (i + 1))
        net.sim.run(1.0)
        assert server_msgs == [bytes([i]) * (i + 1) for i in range(4)]

    def test_wire_size_helper(self, net):
        client, _, _, _ = _tls_pair(net)
        assert client.wire_size(100) == 100 + RECORD_OVERHEAD

    def test_close_propagates(self, net):
        client, servers, _, _ = _tls_pair(net)
        net.sim.run(2.0)
        closed = []
        servers[0].on_closed = lambda s, r: closed.append(r)
        client.close()
        net.sim.run(5.0)
        assert client.closed and servers[0].closed
        assert closed

    def test_send_after_close_rejected(self, net):
        client, _, _, _ = _tls_pair(net)
        net.sim.run(2.0)
        client.close()
        with pytest.raises(RuntimeError):
            client.send_message(b"late")

    def test_bad_role_rejected(self, net):
        device = net.add_lan_host("d2")
        stack = TcpStack(device)
        conn = stack.connect("34.9.9.9", 443)
        with pytest.raises(ValueError):
            TlsSession(conn, "peer")


class TestEncodeMemo:
    """The shared writer/reader encode memo: fast path, never a trust path."""

    def setup_method(self):
        reset_memo()

    def teardown_method(self):
        reset_memo()

    def test_reader_hits_what_writer_published(self):
        writer, reader = _channel()
        n = 8
        wire = b"".join(
            writer.seal(CONTENT_APPLICATION, bytes([i]) * 20) for i in range(n)
        )
        assert reader.feed(wire) == [
            (CONTENT_APPLICATION, bytes([i]) * 20) for i in range(n)
        ]
        stats = memo_stats()
        # Writer computes (miss) and publishes; reader pops (hit) — for
        # both the keystream and the record MAC of every record.
        assert stats["keystream_misses"] == n and stats["keystream_hits"] == n
        assert stats["mac_misses"] == n and stats["mac_hits"] == n

    def test_tampered_record_still_rejected_with_warm_memo(self):
        writer, reader = _channel()
        wire = bytearray(writer.seal(CONTENT_APPLICATION, b"integrity matters"))
        wire[HEADER_BYTES + 2] ^= 0x01  # flip one ciphertext bit
        with pytest.raises(MacVerificationError):
            reader.feed(bytes(wire))
        # The mangled ciphertext changed the memo key, so the check was an
        # honest recompute, not a stale hit.
        assert memo_stats()["mac_hits"] == 0

    def test_replay_rejected_after_memo_consumed(self):
        writer, reader = _channel()
        wire = writer.seal(CONTENT_APPLICATION, b"once only")
        assert reader.feed(wire) == [(CONTENT_APPLICATION, b"once only")]
        # Pop-on-hit: the memo entry is gone, and the reader's seq moved,
        # so the replayed copy recomputes against seq=1 and fails.
        with pytest.raises(MacVerificationError):
            reader.feed(wire)

    def test_memo_is_bounded(self):
        from repro.tls.record import _KEYSTREAM_MEMO, _MAC_MEMO

        writer, _ = _channel()
        for _ in range(_KEYSTREAM_MEMO.max_entries + 100):
            writer.seal(CONTENT_APPLICATION, b"undelivered")
        assert len(_KEYSTREAM_MEMO.cache) <= _KEYSTREAM_MEMO.max_entries
        assert len(_MAC_MEMO.cache) <= _MAC_MEMO.max_entries

    def test_sealed_bytes_identical_cold_and_warm(self):
        payloads = [bytes([i]) * (i + 1) for i in range(6)]
        warm_writer, warm_reader = _channel()
        warm = []
        for p in payloads:
            wire = warm_writer.seal(CONTENT_APPLICATION, p)
            warm_reader.feed(wire)  # keeps the memo cycling hit/put
            warm.append(wire)
        reset_memo()
        cold_writer, _ = _channel()
        cold = []
        for p in payloads:
            cold.append(cold_writer.seal(CONTENT_APPLICATION, p))
            reset_memo()  # force every computation from scratch
        assert warm == cold

    def test_reset_memo_clears_state_and_counters(self):
        from repro.tls.record import _KEYSTREAM_MEMO

        writer, reader = _channel()
        reader.feed(writer.seal(CONTENT_APPLICATION, b"x"))
        assert memo_stats()["keystream_misses"] == 1
        reset_memo()
        assert all(v == 0 for v in memo_stats().values())
        assert not _KEYSTREAM_MEMO.cache
