"""Unit tests for the virtual clock and the discrete-event scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.simnet.clock import Clock
from repro.simnet.scheduler import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(start=5.5).now == 5.5

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(start=-1.0)

    def test_advance(self):
        clock = Clock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_time_allowed(self):
        clock = Clock(start=2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_backwards_rejected(self):
        clock = Clock(start=2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)


class TestScheduling:
    def test_schedule_runs_callback(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.run(2.0)
        assert fired == ["x"]

    def test_callback_sees_fire_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run(2.0)
        assert seen == [1.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_at_absolute_time(self, sim):
        fired = []
        sim.at(3.0, fired.append, 1)
        sim.run(5.0)
        assert fired == [1]

    def test_at_in_past_rejected(self, sim):
        sim.run_until(2.0)
        with pytest.raises(ValueError):
            sim.at(1.0, lambda: None)

    def test_call_soon_runs_at_current_time(self, sim):
        sim.run_until(1.0)
        seen = []
        sim.call_soon(lambda: seen.append(sim.now))
        sim.run(0.0)
        assert seen == [1.0]

    def test_fifo_for_simultaneous_events(self, sim):
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run(2.0)
        assert order == list(range(10))

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = sim.schedule(1.0, fired.append, 1)
        timer.cancel()
        sim.run(2.0)
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        assert not timer.active

    def test_timer_active_lifecycle(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        assert timer.active
        sim.run(2.0)
        assert not timer.active

    def test_nested_scheduling(self, sim):
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run(5.0)
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestRunSemantics:
    def test_run_until_stops_clock_at_deadline(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run_until(5.0)
        assert sim.now == 5.0

    def test_run_until_executes_events_at_deadline(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, 1)
        sim.run_until(5.0)
        assert fired == [1]

    def test_run_is_relative(self, sim):
        sim.run(3.0)
        sim.run(3.0)
        assert sim.now == 6.0

    def test_run_none_drains_queue(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(100.0, fired.append, 2)
        sim.run()
        assert fired == [1, 2]
        assert sim.now == 100.0

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_peek_skips_cancelled(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        timer.cancel()
        assert sim.peek() == 2.0

    def test_peek_empty(self, sim):
        assert sim.peek() is None

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(10.0)
        assert sim.events_processed == 5


class TestHotLoop:
    """Regression guards for the timer-wheel fused ``run_until`` loop."""

    def test_wheel_nodes_are_plain_tuples(self, sim):
        # The hot loop relies on C-level tuple comparison; a dataclass node
        # regresses events/sec by ~2x (see benchmarks/bench_scheduler.py).
        from repro.simnet.scheduler import _INV_TICK, WHEEL_MASK

        timer = sim.schedule(1.0, lambda: None)
        bucket = sim._buckets[int(1.0 * _INV_TICK) & WHEEL_MASK]
        assert bucket is timer._bucket
        node = bucket[0]
        assert type(node) is tuple
        when, seq, held = node
        assert (when, seq) == (1.0, 0)
        assert held is timer and timer.active

    def test_run_until_ties_break_by_insertion_order(self, sim):
        order = []
        for i in range(8):
            sim.at(2.0, order.append, i)
        sim.run_until(2.0)
        assert order == list(range(8))

    def test_run_until_skips_timer_cancelled_midway(self, sim):
        fired = []
        victim = sim.at(2.0, fired.append, "victim")
        sim.at(1.0, victim.cancel)
        sim.at(3.0, fired.append, "survivor")
        sim.run_until(5.0)
        assert fired == ["survivor"]
        assert sim.events_processed == 2  # canceller + survivor, not victim

    def test_run_until_skips_timer_cancelled_same_instant(self, sim):
        # Cancellation by an earlier-seq event at the same timestamp: the
        # fused loop must check the flag after the pop, not at peek time.
        fired = []
        victim = sim.at(1.0, fired.append, "victim")
        # Scheduled later, but call_soon at t=1.0 runs... no: same instant,
        # later seq runs after.  Cancel from an event at an earlier time.
        canceller = sim.at(1.0, victim.cancel)
        assert canceller.when == victim.when and fired == []
        sim.run_until(1.0)
        # victim was inserted first, so it fires before the canceller runs.
        assert fired == ["victim"]
        # Reverse order: canceller inserted first wins.
        fired2 = []
        victim2 = None

        def cancel_victim2():
            victim2.cancel()

        sim.at(2.0, cancel_victim2)
        victim2 = sim.at(2.0, fired2.append, "victim2")
        sim.run_until(2.0)
        assert fired2 == []

    def test_run_until_deadline_exact(self, sim):
        fired = []
        sim.at(5.0, fired.append, "at-deadline")
        sim.at(5.000001, fired.append, "after-deadline")
        sim.run_until(5.0)
        assert fired == ["at-deadline"]
        assert sim.now == 5.0
        sim.run_until(6.0)
        assert fired == ["at-deadline", "after-deadline"]

    def test_run_until_advances_clock_with_empty_queue(self, sim):
        sim.run_until(7.5)
        assert sim.now == 7.5

    def test_run_until_past_deadline_is_noop(self, sim):
        sim.run_until(5.0)
        sim.run_until(3.0)  # never moves the clock backwards
        assert sim.now == 5.0

    def test_observer_installed_mid_run_takes_effect(self, sim):
        seen = []

        class Probe:
            def timer_scheduled(self, timer, now):
                pass

            def timer_fired(self, timer, now, queue_depth):
                seen.append((timer.label, now))

        sim.schedule(1.0, lambda: sim.set_observer(Probe()), label="installer")
        sim.schedule(2.0, lambda: None, label="observed")
        sim.run_until(3.0)
        assert seen == [("observed", 2.0)]


class TestEventBudget:
    def test_small_budget_clamps_tally_window(self, sim):
        # Budgets below BUDGET_TALLY_WINDOW used to make _tally_after
        # negative, which kept the tally branch permanently hot.
        sim.max_events = 10
        assert sim.max_events == 10
        assert sim._tally_after == 0

    def test_budget_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            sim.max_events = 0
        with pytest.raises(ValueError):
            sim.max_events = -5

    def test_exceeding_small_budget_names_hot_timer(self, sim):
        sim.max_events = 5

        def respawn():
            sim.schedule(1.0, respawn, label="runaway-ka")

        sim.schedule(1.0, respawn, label="runaway-ka")
        with pytest.raises(RuntimeError, match="runaway-ka") as err:
            sim.run(100.0)
        # The reported tally window is the budget, not the full 100k default.
        assert "last 5 events" in str(err.value)

    def test_budget_not_exceeded_when_equal(self, sim):
        sim.max_events = 3
        for i in range(3):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(10.0)
        assert sim.events_processed == 3

    def test_budget_tightened_mid_run_takes_effect(self, sim):
        # Regression: run_until hoisted _tally_after into a local, so a
        # callback tightening max_events mid-run was ignored until the
        # *next* run_until call — the budget check ran against the stale
        # pre-tightening threshold.
        def tighten():
            sim.max_events = sim.events_processed + 2

        sim.schedule(1.0, tighten, label="tighten")
        for i in range(10):
            sim.schedule(2.0 + i, lambda: None, label="bulk")
        with pytest.raises(RuntimeError, match="event budget"):
            sim.run_until(50.0)
        # The tightened budget stopped the run well before the queue drained.
        assert sim.events_processed <= 4


class TestDeterminism:
    def test_same_seed_same_rng_stream(self):
        a = Simulator(seed=9)
        b = Simulator(seed=9)
        assert [a.rng.random() for _ in range(10)] == [b.rng.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = Simulator(seed=1)
        b = Simulator(seed=2)
        assert a.rng.random() != b.rng.random()

    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=50))
    def test_events_always_fire_in_time_order(self, delays):
        sim = Simulator(seed=0)
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.integers(0, 5)),
            min_size=1,
            max_size=30,
        )
    )
    def test_ties_break_by_insertion_order(self, spec):
        sim = Simulator(seed=0)
        fired = []
        for idx, (delay, _) in enumerate(spec):
            sim.schedule(delay, fired.append, (delay, idx))
        sim.run()
        # Within one timestamp, insertion indices must ascend.
        for (t1, i1), (t2, i2) in zip(fired, fired[1:]):
            if t1 == t2:
                assert i1 < i2


class TestTimerWheel:
    def test_overflow_migrates_into_wheel(self, sim):
        """A timer beyond the 8s wheel horizon starts in the overflow heap
        and still fires at the right instant after migration."""
        from repro.simnet.scheduler import TICK, WHEEL_SIZE

        horizon = TICK * WHEEL_SIZE
        fired = []
        far = sim.schedule(horizon * 3.5, lambda: fired.append(sim.now), label="far")
        assert far._bucket is sim._overflow
        sim.schedule(0.1, lambda: fired.append(sim.now), label="near")
        sim.run_until(horizon * 4)
        assert fired == [0.1, horizon * 3.5]

    def test_cancel_removes_node_from_bucket(self, sim):
        """True cancellation: cancelling the last timer in a bucket frees
        the node immediately instead of leaving a tombstone to pop later."""
        timer = sim.schedule(1.0, lambda: None, label="doomed")
        bucket = timer._bucket
        assert bucket is not None and len(bucket) == 1
        timer.cancel()
        assert not bucket
        assert sim.pending_events == 0

    def test_cancel_interior_node_is_lazy(self, sim):
        """Cancelling a non-tail node leaves a tombstone (skipped at pop)."""
        first = sim.schedule(1.0, lambda: None, label="a")
        sim.schedule(1.0 + 1e-4, lambda: None, label="b")
        bucket = first._bucket
        first.cancel()
        assert bucket is not None and len(bucket) == 2  # tombstone remains
        assert sim.pending_events == 1
        sim.run_until(2.0)
        assert sim.events_processed == 1

    def test_pending_events_tracks_live_timers(self, sim):
        timers = [sim.schedule(i + 1.0, lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        timers[0].cancel()
        assert sim.pending_events == 4
        sim.run_until(3.0)
        assert sim.pending_events == 2

    def test_fired_timer_recycled_through_free_list(self, sim):
        """A fired one-shot with no surviving references is recycled; a
        fresh schedule reuses the object without semantic bleed-through."""
        from repro.simnet.scheduler import _RECYCLE_REFS

        if _RECYCLE_REFS is None:
            pytest.skip("refcount recycling disabled on this interpreter")
        sim.schedule(0.5, lambda: None, label="recycled")
        sim.run_until(1.0)
        assert len(sim._free) == 1
        recycled = sim._free[-1]
        fresh = sim.schedule(0.5, lambda: None, label="fresh")
        assert fresh is recycled
        assert fresh.active and not fresh._fired and fresh.label == "fresh"
        sim.run_until(2.0)
        assert sim.events_processed == 2

    def test_held_timer_is_not_recycled(self, sim):
        """Holding the handle keeps a fired timer out of the free list, so
        a stale cancel() can never hit a recycled object."""
        held = sim.schedule(0.5, lambda: None, label="held")
        sim.run_until(1.0)
        assert held not in sim._free
        held.cancel()  # harmless: the timer already fired
        fresh = sim.schedule(0.5, lambda: None)
        assert fresh is not held
        sim.run_until(2.0)
        assert sim.events_processed == 2


class TestPeriodicAndQuiescence:
    def test_schedule_periodic_fires_every_period(self, sim):
        fired = []
        sim.schedule_periodic(1.0, lambda: fired.append(sim.now), label="ka")
        sim.run_until(4.5)
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_first_overrides_initial_delay(self, sim):
        fired = []
        sim.schedule_periodic(2.0, lambda: fired.append(sim.now), first=0.5)
        sim.run_until(5.0)
        assert fired == [0.5, 2.5, 4.5]

    def test_non_positive_period_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule_periodic(0.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_periodic(-1.0, lambda: None)

    def test_cancel_stops_periodic(self, sim):
        fired = []
        timer = sim.schedule_periodic(1.0, lambda: fired.append(sim.now))
        sim.schedule(2.5, timer.cancel)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0]
        assert sim.pending_events == 0

    def test_periodic_rearm_allocates_no_new_timer(self, sim):
        seen = set()
        timer = sim.schedule_periodic(1.0, lambda: seen.add(id(timer)))
        sim.run_until(5.0)
        assert seen == {id(timer)}

    def test_quiescent_and_general_paths_fire_identically(self):
        """The batch-stepping fast path and the general wheel loop must
        produce the same fire log, event count, and final clock."""

        def drive(sim):
            log = []
            sim.schedule_periodic(0.7, lambda: log.append(("a", sim.now)))
            sim.schedule_periodic(1.1, lambda: log.append(("b", sim.now)))
            sim.run_until(500.0)
            return log, sim.events_processed, sim.now

        fast = Simulator()
        slow = Simulator()
        slow.block_quiescence()
        assert drive(fast) == drive(slow)

    def test_oneshot_blocks_quiescence_until_fired(self, sim):
        """A pending one-shot forces the general path; once it fires the
        run goes quiescent — and the trace is seamless either way."""
        fired = []
        sim.schedule_periodic(1.0, lambda: fired.append(sim.now))
        sim.schedule(2.5, lambda: fired.append(-sim.now), label="burst")
        sim.run_until(6.0)
        assert fired == [1.0, 2.0, -2.5, 3.0, 4.0, 5.0, 6.0]

    def test_callback_spawning_oneshot_breaks_quiescence(self, sim):
        """A periodic callback scheduling a one-shot mid-batch must yield
        back to the general loop so the one-shot fires on time."""
        log = []

        def beat():
            log.append(("beat", sim.now))
            if sim.now == 3.0:
                sim.schedule(0.25, lambda: log.append(("spawn", sim.now)))

        sim.schedule_periodic(1.0, beat)
        sim.run_until(5.0)
        assert log == [
            ("beat", 1.0), ("beat", 2.0), ("beat", 3.0),
            ("spawn", 3.25), ("beat", 4.0), ("beat", 5.0),
        ]

    def test_block_unblock_quiescence_is_counted(self, sim):
        sim.block_quiescence()
        sim.block_quiescence()
        assert sim.quiescence_blocked
        sim.unblock_quiescence()
        assert sim.quiescence_blocked
        sim.unblock_quiescence()
        assert not sim.quiescence_blocked
        with pytest.raises(RuntimeError):
            sim.unblock_quiescence()

    def test_observer_installed_mid_quiescent_run_takes_effect(self, sim):
        """Installing an observer from inside a batch-stepped callback must
        invalidate the fast path's hoisted locals (the _qepoch guard)."""
        seen = []

        class Obs:
            def timer_scheduled(self, timer, now):
                pass

            def timer_fired(self, timer, now, depth):
                seen.append(now)

        def beat():
            if sim.now == 2.0:
                sim.set_observer(Obs())

        sim.schedule_periodic(1.0, beat)
        sim.run_until(5.0)
        # The fire that installed the observer was already in flight; every
        # subsequent fire must be observed.
        assert seen == [3.0, 4.0, 5.0]

    def test_budget_tightened_mid_quiescent_run_takes_effect(self, sim):
        def beat():
            if sim.now == 2.0:
                sim.max_events = 4

        sim.schedule_periodic(1.0, beat)
        with pytest.raises(RuntimeError, match="event budget"):
            sim.run_until(50.0)
        assert sim.events_processed == 5  # fifth event tripped the budget


class TestTallyBounds:
    def test_distinct_labels_bounded_by_fold(self, sim):
        """The near-budget tally caps distinct labels; the long tail folds
        into <other> instead of growing one dict entry per label."""
        sim.max_events = 10_000
        cap = Simulator.TALLY_MAX_LABELS

        count = [0]

        def spin():
            count[0] += 1
            sim.schedule(0.001, spin, label=f"hot{count[0] % (cap * 2)}")

        sim.schedule(0.001, spin, label="seed")
        with pytest.raises(RuntimeError, match="event budget"):
            sim.run_until(1e9)
        # At most the cap plus the fold bucket itself.
        assert len(sim._label_fires) <= cap + 1
        assert "<other>" in sim._label_fires

    def test_tally_decay_keeps_persistent_labels_on_top(self, sim):
        sim.max_events = 10_000
        sim._tally_after = 0  # tally from the first event
        window = Simulator.BUDGET_TALLY_WINDOW

        def spin():
            sim.schedule(0.001, spin, label="steady")

        sim.schedule(0.001, spin, label="steady")
        with pytest.raises(RuntimeError, match="steady"):
            sim.run_until(1e9)
        # Decay halves the counts; the tally total stays under one window
        # even though 10k+ events fired.
        assert sim._tally_total <= 2 * window
