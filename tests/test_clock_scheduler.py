"""Unit tests for the virtual clock and the discrete-event scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.simnet.clock import Clock
from repro.simnet.scheduler import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(start=5.5).now == 5.5

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(start=-1.0)

    def test_advance(self):
        clock = Clock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_time_allowed(self):
        clock = Clock(start=2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_backwards_rejected(self):
        clock = Clock(start=2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)


class TestScheduling:
    def test_schedule_runs_callback(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.run(2.0)
        assert fired == ["x"]

    def test_callback_sees_fire_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run(2.0)
        assert seen == [1.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_at_absolute_time(self, sim):
        fired = []
        sim.at(3.0, fired.append, 1)
        sim.run(5.0)
        assert fired == [1]

    def test_at_in_past_rejected(self, sim):
        sim.run_until(2.0)
        with pytest.raises(ValueError):
            sim.at(1.0, lambda: None)

    def test_call_soon_runs_at_current_time(self, sim):
        sim.run_until(1.0)
        seen = []
        sim.call_soon(lambda: seen.append(sim.now))
        sim.run(0.0)
        assert seen == [1.0]

    def test_fifo_for_simultaneous_events(self, sim):
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run(2.0)
        assert order == list(range(10))

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = sim.schedule(1.0, fired.append, 1)
        timer.cancel()
        sim.run(2.0)
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        assert not timer.active

    def test_timer_active_lifecycle(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        assert timer.active
        sim.run(2.0)
        assert not timer.active

    def test_nested_scheduling(self, sim):
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run(5.0)
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestRunSemantics:
    def test_run_until_stops_clock_at_deadline(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run_until(5.0)
        assert sim.now == 5.0

    def test_run_until_executes_events_at_deadline(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, 1)
        sim.run_until(5.0)
        assert fired == [1]

    def test_run_is_relative(self, sim):
        sim.run(3.0)
        sim.run(3.0)
        assert sim.now == 6.0

    def test_run_none_drains_queue(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(100.0, fired.append, 2)
        sim.run()
        assert fired == [1, 2]
        assert sim.now == 100.0

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_peek_skips_cancelled(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        timer.cancel()
        assert sim.peek() == 2.0

    def test_peek_empty(self, sim):
        assert sim.peek() is None

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(10.0)
        assert sim.events_processed == 5


class TestDeterminism:
    def test_same_seed_same_rng_stream(self):
        a = Simulator(seed=9)
        b = Simulator(seed=9)
        assert [a.rng.random() for _ in range(10)] == [b.rng.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = Simulator(seed=1)
        b = Simulator(seed=2)
        assert a.rng.random() != b.rng.random()

    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=50))
    def test_events_always_fire_in_time_order(self, delays):
        sim = Simulator(seed=0)
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.integers(0, 5)),
            min_size=1,
            max_size=30,
        )
    )
    def test_ties_break_by_insertion_order(self, spec):
        sim = Simulator(seed=0)
        fired = []
        for idx, (delay, _) in enumerate(spec):
            sim.schedule(delay, fired.append, (delay, idx))
        sim.run()
        # Within one timestamp, insertion indices must ascend.
        for (t1, i1), (t2, i2) in zip(fired, fired[1:]):
            if t1 == t2:
                assert i1 < i2
