"""Unit tests for the virtual clock and the discrete-event scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.simnet.clock import Clock
from repro.simnet.scheduler import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(start=5.5).now == 5.5

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(start=-1.0)

    def test_advance(self):
        clock = Clock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_time_allowed(self):
        clock = Clock(start=2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_backwards_rejected(self):
        clock = Clock(start=2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)


class TestScheduling:
    def test_schedule_runs_callback(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.run(2.0)
        assert fired == ["x"]

    def test_callback_sees_fire_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run(2.0)
        assert seen == [1.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_at_absolute_time(self, sim):
        fired = []
        sim.at(3.0, fired.append, 1)
        sim.run(5.0)
        assert fired == [1]

    def test_at_in_past_rejected(self, sim):
        sim.run_until(2.0)
        with pytest.raises(ValueError):
            sim.at(1.0, lambda: None)

    def test_call_soon_runs_at_current_time(self, sim):
        sim.run_until(1.0)
        seen = []
        sim.call_soon(lambda: seen.append(sim.now))
        sim.run(0.0)
        assert seen == [1.0]

    def test_fifo_for_simultaneous_events(self, sim):
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run(2.0)
        assert order == list(range(10))

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = sim.schedule(1.0, fired.append, 1)
        timer.cancel()
        sim.run(2.0)
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        assert not timer.active

    def test_timer_active_lifecycle(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        assert timer.active
        sim.run(2.0)
        assert not timer.active

    def test_nested_scheduling(self, sim):
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run(5.0)
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestRunSemantics:
    def test_run_until_stops_clock_at_deadline(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run_until(5.0)
        assert sim.now == 5.0

    def test_run_until_executes_events_at_deadline(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, 1)
        sim.run_until(5.0)
        assert fired == [1]

    def test_run_is_relative(self, sim):
        sim.run(3.0)
        sim.run(3.0)
        assert sim.now == 6.0

    def test_run_none_drains_queue(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(100.0, fired.append, 2)
        sim.run()
        assert fired == [1, 2]
        assert sim.now == 100.0

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_peek_skips_cancelled(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        timer.cancel()
        assert sim.peek() == 2.0

    def test_peek_empty(self, sim):
        assert sim.peek() is None

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(10.0)
        assert sim.events_processed == 5


class TestHotLoop:
    """Regression guards for the tuple-heap-node fused ``run_until`` loop."""

    def test_heap_nodes_are_plain_tuples(self, sim):
        # The hot loop relies on C-level tuple comparison; a dataclass node
        # regresses events/sec by ~2x (see benchmarks/bench_scheduler.py).
        sim.schedule(1.0, lambda: None)
        node = sim._queue[0]
        assert type(node) is tuple
        when, seq, timer = node
        assert (when, seq) == (1.0, 0)
        assert timer.active

    def test_run_until_ties_break_by_insertion_order(self, sim):
        order = []
        for i in range(8):
            sim.at(2.0, order.append, i)
        sim.run_until(2.0)
        assert order == list(range(8))

    def test_run_until_skips_timer_cancelled_midway(self, sim):
        fired = []
        victim = sim.at(2.0, fired.append, "victim")
        sim.at(1.0, victim.cancel)
        sim.at(3.0, fired.append, "survivor")
        sim.run_until(5.0)
        assert fired == ["survivor"]
        assert sim.events_processed == 2  # canceller + survivor, not victim

    def test_run_until_skips_timer_cancelled_same_instant(self, sim):
        # Cancellation by an earlier-seq event at the same timestamp: the
        # fused loop must check the flag after the pop, not at peek time.
        fired = []
        victim = sim.at(1.0, fired.append, "victim")
        # Scheduled later, but call_soon at t=1.0 runs... no: same instant,
        # later seq runs after.  Cancel from an event at an earlier time.
        canceller = sim.at(1.0, victim.cancel)
        assert canceller.when == victim.when and fired == []
        sim.run_until(1.0)
        # victim was inserted first, so it fires before the canceller runs.
        assert fired == ["victim"]
        # Reverse order: canceller inserted first wins.
        fired2 = []
        victim2 = None

        def cancel_victim2():
            victim2.cancel()

        sim.at(2.0, cancel_victim2)
        victim2 = sim.at(2.0, fired2.append, "victim2")
        sim.run_until(2.0)
        assert fired2 == []

    def test_run_until_deadline_exact(self, sim):
        fired = []
        sim.at(5.0, fired.append, "at-deadline")
        sim.at(5.000001, fired.append, "after-deadline")
        sim.run_until(5.0)
        assert fired == ["at-deadline"]
        assert sim.now == 5.0
        sim.run_until(6.0)
        assert fired == ["at-deadline", "after-deadline"]

    def test_run_until_advances_clock_with_empty_queue(self, sim):
        sim.run_until(7.5)
        assert sim.now == 7.5

    def test_run_until_past_deadline_is_noop(self, sim):
        sim.run_until(5.0)
        sim.run_until(3.0)  # never moves the clock backwards
        assert sim.now == 5.0

    def test_observer_installed_mid_run_takes_effect(self, sim):
        seen = []

        class Probe:
            def timer_scheduled(self, timer, now):
                pass

            def timer_fired(self, timer, now, queue_depth):
                seen.append((timer.label, now))

        sim.schedule(1.0, lambda: sim.set_observer(Probe()), label="installer")
        sim.schedule(2.0, lambda: None, label="observed")
        sim.run_until(3.0)
        assert seen == [("observed", 2.0)]


class TestEventBudget:
    def test_small_budget_clamps_tally_window(self, sim):
        # Budgets below BUDGET_TALLY_WINDOW used to make _tally_after
        # negative, which kept the tally branch permanently hot.
        sim.max_events = 10
        assert sim.max_events == 10
        assert sim._tally_after == 0

    def test_budget_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            sim.max_events = 0
        with pytest.raises(ValueError):
            sim.max_events = -5

    def test_exceeding_small_budget_names_hot_timer(self, sim):
        sim.max_events = 5

        def respawn():
            sim.schedule(1.0, respawn, label="runaway-ka")

        sim.schedule(1.0, respawn, label="runaway-ka")
        with pytest.raises(RuntimeError, match="runaway-ka") as err:
            sim.run(100.0)
        # The reported tally window is the budget, not the full 100k default.
        assert "last 5 events" in str(err.value)

    def test_budget_not_exceeded_when_equal(self, sim):
        sim.max_events = 3
        for i in range(3):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(10.0)
        assert sim.events_processed == 3

    def test_budget_tightened_mid_run_takes_effect(self, sim):
        # Regression: run_until hoisted _tally_after into a local, so a
        # callback tightening max_events mid-run was ignored until the
        # *next* run_until call — the budget check ran against the stale
        # pre-tightening threshold.
        def tighten():
            sim.max_events = sim.events_processed + 2

        sim.schedule(1.0, tighten, label="tighten")
        for i in range(10):
            sim.schedule(2.0 + i, lambda: None, label="bulk")
        with pytest.raises(RuntimeError, match="event budget"):
            sim.run_until(50.0)
        # The tightened budget stopped the run well before the queue drained.
        assert sim.events_processed <= 4


class TestDeterminism:
    def test_same_seed_same_rng_stream(self):
        a = Simulator(seed=9)
        b = Simulator(seed=9)
        assert [a.rng.random() for _ in range(10)] == [b.rng.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = Simulator(seed=1)
        b = Simulator(seed=2)
        assert a.rng.random() != b.rng.random()

    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=50))
    def test_events_always_fire_in_time_order(self, delays):
        sim = Simulator(seed=0)
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.integers(0, 5)),
            min_size=1,
            max_size=30,
        )
    )
    def test_ties_break_by_insertion_order(self, spec):
        sim = Simulator(seed=0)
        fired = []
        for idx, (delay, _) in enumerate(spec):
            sim.schedule(delay, fired.append, (delay, idx))
        sim.run()
        # Within one timestamp, insertion indices must ascend.
        for (t1, i1), (t2, i2) in zip(fired, fired[1:]):
            if t1 == t2:
                assert i1 < i2
