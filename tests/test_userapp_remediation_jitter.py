"""User-app staleness, remedial actions, and jitter robustness."""

from __future__ import annotations

import pytest

from repro.cloud.user_app import UserApp
from repro.core.attacker import PhantomDelayAttacker
from repro.core.predictor import TimeoutBehavior
from repro.countermeasures.remediation import RemediationPolicy
from repro.experiments._util import run_until
from repro.testbed import SmartHomeTestbed


class TestUserApp:
    def test_app_shows_current_state_in_benign_home(self):
        tb = SmartHomeTestbed(seed=221)
        contact = tb.add_device("C5")
        app = UserApp(tb.integration)
        tb.settle(8.0)
        contact.stimulate("open")
        tb.run(2.0)
        view = app.view("c5", "contact")
        assert view.value == "open"
        assert view.true_age < 2.5

    def test_app_shows_stale_state_during_attack(self):
        """The Section V-A horror: the app says 'closed' while the door
        stands open."""
        tb = SmartHomeTestbed(seed=223)
        contact = tb.add_device("C2")
        hub = tb.devices["h1"]
        app = UserApp(tb.integration)
        tb.settle(8.0)
        contact.stimulate("closed")
        tb.run(2.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(hub.ip)
        tb.run(35.0)
        attacker.delay_next_event(
            hub.ip, TimeoutBehavior.from_profile(hub.profile),
            duration=25.0, trigger_size=355,
        )
        contact.stimulate("open")  # physically open NOW
        tb.run(10.0)
        assert contact.attribute_value == "open"          # physical truth
        assert app.view("c2", "contact").value == "closed"  # app's belief

    def test_unknown_device_view(self):
        tb = SmartHomeTestbed(seed=225)
        app = UserApp(tb.integration)
        view = app.view("ghost", "contact")
        assert not view.known and view.value is None

    def test_manual_tap_reaches_device(self):
        tb = SmartHomeTestbed(seed=227)
        plug = tb.add_device("P2")
        app = UserApp(tb.integration)
        tb.settle(8.0)
        app.tap("p2", "on")
        tb.run(3.0)
        assert plug.attribute_value == "on"
        assert len(app.taps) == 1

    def test_dashboard(self):
        tb = SmartHomeTestbed(seed=229)
        contact = tb.add_device("C5")
        tb.settle(8.0)
        contact.stimulate("open")
        tb.run(2.0)
        app = UserApp(tb.integration)
        views = app.dashboard({"c5": "contact", "ghost": "motion"})
        assert views[0].known and not views[1].known


class TestRemediationPolicy:
    def test_benign_home_never_remediates(self):
        from repro.automation import parse_rule

        tb = SmartHomeTestbed(seed=231)
        presence = tb.add_device("PR1")
        tb.add_device("LK1")
        storm = tb.add_device("C5")
        tb.install_rule(parse_rule(
            "WHEN c5 contact.open IF pr1.presence == present THEN COMMAND lk1 unlock"
        ))
        policy = RemediationPolicy(sim=tb.sim, engine=tb.integration.engine)
        policy.install()
        tb.settle(8.0)
        presence.stimulate("present")
        tb.run(5.0)
        storm.stimulate("open")
        tb.run(5.0)
        presence.stimulate("away")
        tb.run(5.0)
        assert policy.remediations == []  # all orders were genuine

    def test_attack_remediated_but_exposure_remains(self):
        from repro.experiments.countermeasures import run_remediation_experiment

        result = run_remediation_experiment(seed=233)
        assert result.spuriously_unlocked        # the attack worked
        assert result.remediated                 # the defence reacted
        assert result.exposure > 10.0            # ...too late
        assert not result.damage_prevented

    def test_install_is_idempotent(self):
        tb = SmartHomeTestbed(seed=235)
        policy = RemediationPolicy(sim=tb.sim, engine=tb.integration.engine)
        policy.install()
        policy.install()
        contact = tb.add_device("C5")
        tb.settle(8.0)
        contact.stimulate("open")
        tb.run(2.0)
        # Wrapping twice would double-log events.
        assert len(tb.integration.engine.event_log) == 1


class TestJitterRobustness:
    def test_benign_home_stable_under_jitter(self):
        tb = SmartHomeTestbed(seed=237, lan_jitter=0.02)
        tb.add_device("C2")
        tb.add_device("HS1")
        tb.settle(10.0)
        tb.run(600.0)
        assert tb.alarms.silent

    def test_attack_still_works_under_jitter(self):
        tb = SmartHomeTestbed(seed=239, lan_jitter=0.02)
        contact = tb.add_device("C2")
        hub = tb.devices["h1"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(hub.ip)
        tb.run(40.0)
        operation = attacker.delay_next_event(
            hub.ip, TimeoutBehavior.from_profile(hub.profile), trigger_size=355
        )
        contact.stimulate("open")
        run_until(tb.sim, lambda: operation.released_at is not None, 120.0)
        tb.run(5.0)
        assert operation.stealthy
        assert operation.achieved_delay > 20.0
        assert tb.alarms.silent
        assert tb.endpoints["smartthings"].events_from("c2")

    def test_jitter_validation(self):
        from repro.simnet.link import Lan
        from repro.simnet.scheduler import Simulator

        with pytest.raises(ValueError):
            Lan(Simulator(seed=1), jitter=-0.1)
