"""The attack primitives and the timeout profiler against live sessions."""

from __future__ import annotations


import pytest

from repro.core.attacker import PhantomDelayAttacker
from repro.core.predictor import TimeoutBehavior
from repro.experiments._util import run_until
from repro.testbed import SmartHomeTestbed


@pytest.fixture
def st_home():
    tb = SmartHomeTestbed(seed=77)
    contact = tb.add_device("C2")
    outlet = tb.add_device("P1")
    tb.settle(8.0)
    attacker = PhantomDelayAttacker.deploy(tb)
    attacker.interpose(tb.devices["h1"].ip)
    tb.run(35.0)  # observe a keep-alive so the phase is known
    return tb, contact, outlet, tb.devices["h1"], attacker


class TestEDelay:
    def test_max_safe_delay_is_stealthy_and_delivered(self, st_home):
        tb, contact, _outlet, hub, attacker = st_home
        operation = attacker.delay_next_event(
            hub.ip, TimeoutBehavior.from_profile(hub.profile), trigger_size=355
        )
        contact.stimulate("open")
        run_until(tb.sim, lambda: operation.released_at is not None, 120.0)
        tb.run(5.0)
        assert operation.stealthy
        assert operation.achieved_delay > 20.0  # meaningful fraction of [16, 47]
        assert tb.alarms.silent
        assert tb.endpoints["smartthings"].events_from("c2")

    def test_requested_duration_honoured_when_safe(self, st_home):
        tb, contact, _outlet, hub, attacker = st_home
        operation = attacker.delay_next_event(
            hub.ip, TimeoutBehavior.from_profile(hub.profile),
            duration=10.0, trigger_size=355,
        )
        contact.stimulate("open")
        run_until(tb.sim, lambda: operation.released_at is not None, 60.0)
        assert operation.achieved_delay == pytest.approx(10.0, abs=0.1)

    def test_unsafe_request_clamped(self, st_home):
        tb, contact, _outlet, hub, attacker = st_home
        operation = attacker.delay_next_event(
            hub.ip, TimeoutBehavior.from_profile(hub.profile),
            duration=500.0, trigger_size=355,  # way past the 47 s ceiling
        )
        contact.stimulate("open")
        run_until(tb.sim, lambda: operation.released_at is not None, 120.0)
        tb.run(5.0)
        assert operation.achieved_delay < 50.0
        assert operation.stealthy and tb.alarms.silent

    def test_clamp_off_provokes_timeout(self, st_home):
        tb, contact, _outlet, hub, attacker = st_home
        operation = attacker.delay_next_event(
            hub.ip, TimeoutBehavior.from_profile(hub.profile),
            duration=500.0, trigger_size=355, clamp=False,
        )
        contact.stimulate("open")
        tb.run(120.0)
        assert not operation.stealthy
        assert not tb.alarms.silent  # the timeout fired somewhere

    def test_on_release_callback(self, st_home):
        tb, contact, _outlet, hub, attacker = st_home
        released = []
        operation = attacker.delay_next_event(
            hub.ip, TimeoutBehavior.from_profile(hub.profile),
            duration=5.0, trigger_size=355, on_release=released.append,
        )
        contact.stimulate("open")
        tb.run(30.0)
        assert released == [operation]

    def test_prediction_recorded(self, st_home):
        tb, contact, _outlet, hub, attacker = st_home
        operation = attacker.delay_next_event(
            hub.ip, TimeoutBehavior.from_profile(hub.profile), trigger_size=355
        )
        contact.stimulate("open")
        tb.run(5.0)
        assert operation.prediction is not None
        assert operation.prediction.bounded

    def test_homekit_hold_is_unbounded(self):
        tb = SmartHomeTestbed(seed=78)
        motion = tb.add_device("M9", table=2)
        server = tb.ensure_local_server()
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(motion.host.ip, peer_ip=server.ip)
        tb.run(5.0)
        behavior = TimeoutBehavior.from_profile(motion.profile)
        primitive = attacker.e_delay(motion.host.ip, behavior)
        operation = primitive.arm(trigger_size=motion.profile.event_size)
        motion.stimulate("active")
        tb.run(400.0)  # nothing ever times out
        assert operation.released_at is None
        assert tb.alarms.silent
        assert not tb.local_server.events  # still held
        primitive.release(operation)
        tb.run(2.0)
        assert [m.name for _, _s, m in tb.local_server.events] == ["motion.active"]


class TestCDelay:
    def test_command_delayed_then_executed(self, st_home):
        tb, _contact, outlet, hub, attacker = st_home
        operation = attacker.delay_next_command(
            hub.ip, TimeoutBehavior.from_profile(hub.profile),
            duration=15.0, trigger_size=336,
        )
        tb.endpoints["smartthings"].send_command("p1", "on")
        tb.run(5.0)
        assert outlet.attribute_value == "off"
        run_until(tb.sim, lambda: operation.released_at is not None, 60.0)
        tb.run(3.0)
        assert outlet.attribute_value == "on"
        assert operation.achieved_delay == pytest.approx(15.0, abs=0.1)
        assert tb.alarms.silent

    def test_max_safe_command_delay(self, st_home):
        tb, _contact, outlet, hub, attacker = st_home
        operation = attacker.delay_next_command(
            hub.ip, TimeoutBehavior.from_profile(hub.profile), trigger_size=336
        )
        tb.endpoints["smartthings"].send_command("p1", "on")
        run_until(tb.sim, lambda: operation.released_at is not None, 120.0)
        tb.run(5.0)
        assert operation.stealthy
        assert operation.achieved_delay > 10.0
        assert tb.alarms.silent
        assert outlet.attribute_value == "on"


class TestProfilerAgainstGroundTruth:
    @pytest.mark.parametrize(
        "label,expect_period,expect_strategy,expect_grace",
        [
            ("H1", 31.0, "on-idle", 16.0),
            ("H2", 120.0, "fixed", 60.0),
        ],
    )
    def test_session_parameters_measured(self, label, expect_period, expect_strategy, expect_grace):
        from repro.experiments.table1 import profile_label

        row = profile_label(label, trials=1)
        report = row.report
        assert report.ka_period == pytest.approx(expect_period, abs=1.0)
        assert report.ka_strategy == expect_strategy
        assert report.ka_timeout == pytest.approx(expect_grace, abs=2.0)

    def test_explicit_event_timeout_detected(self):
        from repro.experiments.table1 import profile_label

        row = profile_label("HS3", trials=1)
        assert row.report.event_timeout == pytest.approx(20.0, abs=2.0)

    def test_anchored_timeout_reported_as_infinite(self):
        from repro.experiments.table1 import profile_label

        row = profile_label("H1", trials=1)
        assert row.report.event_timeout is None
        assert row.report.command_timeout is None

    def test_on_demand_device_recognised(self):
        from repro.experiments.table1 import profile_label

        row = profile_label("M7", trials=1)
        assert not row.report.long_live
        assert row.report.event_timeout == pytest.approx(150.0, abs=2.0)

    def test_measured_windows_match_catalogue(self):
        from repro.experiments.table1 import profile_label

        for label in ("H1", "HS1"):
            row = profile_label(label, trials=1)
            assert row.matches_expectation(), (label, row.report)
