"""Attacker substrate tests: spoofing, hijacking, fingerprinting, prediction."""

from __future__ import annotations


import pytest

from repro.core.attacker import PhantomDelayAttacker
from repro.core.fingerprint import FingerprintDatabase, extract_observation
from repro.core.predictor import (
    CAUSE_EVENT_ACK,
    CAUSE_KEEPALIVE_REPLY,
    CAUSE_NONE,
    CAUSE_SERVER_LIVENESS,
    TimeoutBehavior,
    TimeoutPredictor,
)
from repro.devices.profiles import CATALOGUE
from repro.testbed import SmartHomeTestbed


@pytest.fixture
def home():
    tb = SmartHomeTestbed(seed=42)
    contact = tb.add_device("C2")
    tb.settle(8.0)
    attacker = PhantomDelayAttacker.deploy(tb)
    return tb, contact, tb.devices["h1"], attacker


class TestArpSpoofing:
    def test_poison_redirects_victim_cache(self, home):
        tb, _contact, hub, attacker = home
        genuine = hub.host.arp.lookup(tb.router.ip)
        attacker.interpose(hub.ip)
        tb.run(1.0)
        assert hub.host.arp.lookup(tb.router.ip) == attacker.host.mac
        assert tb.router.arp.lookup(hub.ip) == attacker.host.mac
        assert genuine != attacker.host.mac

    def test_repoison_survives_cache_expiry(self, home):
        tb, _contact, hub, attacker = home
        attacker.interpose(hub.ip)
        tb.run(300.0)  # several ARP TTLs
        assert hub.host.arp.lookup(tb.router.ip) == attacker.host.mac

    def test_stop_allows_recovery(self, home):
        tb, _contact, hub, attacker = home
        attacker.interpose(hub.ip)
        tb.run(1.0)
        attacker.spoofer.stop()
        tb.run(200.0)  # poison expires; genuine ARP re-learned on demand
        hub.client.send_event("probe")
        tb.run(2.0)
        assert hub.host.arp.lookup(tb.router.ip) == tb.router.mac

    def test_traffic_still_flows_through_attacker(self, home):
        tb, contact, hub, attacker = home
        attacker.interpose(hub.ip)
        tb.run(1.0)
        before = attacker.hijacker.stats["forwarded"]
        contact.stimulate("open")
        tb.run(2.0)
        assert attacker.hijacker.stats["forwarded"] > before
        # ... and still reaches the cloud:
        assert tb.endpoints["smartthings"].events_from("c2")

    def test_discover_mac(self, home):
        tb, _contact, hub, attacker = home
        assert attacker.discover_mac(hub.ip) == hub.host.mac
        assert attacker.discover_mac("192.168.1.254") is None

    def test_scan(self, home):
        tb, _contact, hub, attacker = home
        found = attacker.scan([hub.ip, "192.168.1.250"])
        assert found == {hub.ip: hub.host.mac}


class TestHijackerHolds:
    def test_pass_through_is_transparent(self, home):
        tb, contact, hub, attacker = home
        attacker.interpose(hub.ip)
        tb.run(1.0)
        contact.stimulate("open")
        tb.run(120.0)
        assert tb.alarms.silent

    def test_hold_triggers_on_exact_size_only(self, home):
        tb, contact, hub, attacker = home
        attacker.interpose(hub.ip)
        tb.run(35.0)
        hold = attacker.hijacker.hold_events(hub.ip, trigger_size=999)  # no such size
        contact.stimulate("open")
        tb.run(5.0)
        assert hold.triggered_at is None
        assert tb.endpoints["smartthings"].events_from("c2")  # delivered

    def test_hold_and_release_preserves_tls(self, home):
        tb, contact, hub, attacker = home
        attacker.interpose(hub.ip)
        tb.run(35.0)
        hold = attacker.hijacker.hold_events(hub.ip, trigger_size=355)
        contact.stimulate("open")
        tb.run(10.0)
        assert hold.holding and hold.held_count == 1
        assert not tb.endpoints["smartthings"].events_from("c2")
        attacker.hijacker.release(hold)
        tb.run(2.0)
        events = tb.endpoints["smartthings"].events_from("c2")
        assert len(events) == 1
        assert tb.alarms.silent

    def test_forged_ack_prevents_retransmission(self, home):
        tb, contact, hub, attacker = home
        attacker.interpose(hub.ip)
        tb.run(35.0)
        hold = attacker.hijacker.hold_events(hub.ip, trigger_size=355)
        contact.stimulate("open")
        tb.run(10.0)
        conn = hub.stack.connections()[0]
        assert conn.stats["retransmissions"] == 0
        assert hold.forged_acks >= 1

    def test_subsequent_messages_held_in_order(self, home):
        tb, contact, hub, attacker = home
        attacker.interpose(hub.ip)
        tb.run(35.0)
        hold = attacker.hijacker.hold_events(hub.ip, trigger_size=355)
        contact.stimulate("open")
        tb.run(1.0)
        contact.stimulate("closed")
        tb.run(1.0)
        assert hold.held_count == 2
        attacker.hijacker.release(hold)
        tb.run(2.0)
        names = [m.name for _, m in tb.endpoints["smartthings"].events_from("c2")]
        assert names == ["contact.open", "contact.closed"]

    def test_downlink_hold_delays_commands(self, home):
        tb, _contact, hub, attacker = home
        outlet = tb.add_device("P1")
        tb.settle(5.0)
        attacker.interpose(hub.ip)
        tb.run(5.0)
        hold = attacker.hijacker.hold_commands(hub.ip, trigger_size=336)
        tb.endpoints["smartthings"].send_command("p1", "on")
        tb.run(5.0)
        assert hold.holding
        assert outlet.attribute_value == "off"
        attacker.hijacker.release(hold)
        tb.run(2.0)
        assert outlet.attribute_value == "on"

    def test_cancel_untriggered_hold(self, home):
        tb, contact, hub, attacker = home
        attacker.interpose(hub.ip)
        tb.run(1.0)
        hold = attacker.hijacker.hold_events(hub.ip, trigger_size=355)
        attacker.hijacker.cancel(hold)
        contact.stimulate("open")
        tb.run(2.0)
        assert hold.triggered_at is None
        assert tb.endpoints["smartthings"].events_from("c2")

    def test_release_idempotent(self, home):
        tb, contact, hub, attacker = home
        attacker.interpose(hub.ip)
        tb.run(35.0)
        hold = attacker.hijacker.hold_events(hub.ip, trigger_size=355)
        contact.stimulate("open")
        tb.run(2.0)
        attacker.hijacker.release(hold)
        attacker.hijacker.release(hold)
        tb.run(2.0)
        assert len(tb.endpoints["smartthings"].events_from("c2")) == 1

    def test_flow_events_record_lifecycle(self, home):
        tb, _contact, hub, attacker = home
        attacker.interpose(hub.ip)
        tb.run(1.0)
        # Force a reconnect: stop and restart the hub's client.
        hub.client.stop()
        tb.run(5.0)
        hub.client.start()
        tb.run(5.0)
        kinds = {e.kind for e in attacker.hijacker.flow_events}
        assert "syn" in kinds and "fin" in kinds

    def test_last_delivery_tracking(self, home):
        tb, contact, hub, attacker = home
        attacker.interpose(hub.ip)
        tb.run(1.0)
        contact.stimulate("open")
        tb.run(2.0)
        last = attacker.hijacker.last_delivery_from(hub.ip)
        assert last is not None and last <= tb.now


class TestFingerprinting:
    def test_idle_observation_detects_keepalive(self, home):
        tb, _contact, hub, attacker = home
        attacker.interpose(hub.ip)
        attacker.capture.clear()
        tb.run(150.0)
        obs = extract_observation(attacker.capture, hub.ip, tb.internet.dns)
        assert len(obs) == 1
        assert obs[0].long_live
        assert obs[0].ka_wire_size == 40
        assert obs[0].ka_period == pytest.approx(31.0, abs=0.5)
        assert obs[0].server_domain == "api.smartthings.example"

    def test_database_covers_catalogue(self):
        db = FingerprintDatabase.from_catalogue()
        assert len(db.signatures) == len(CATALOGUE)

    def test_match_identifies_smartthings_hub(self, home):
        tb, _contact, hub, attacker = home
        results = attacker.survey(150.0, [hub.ip])
        matches = results[hub.ip]
        assert matches
        assert matches[0].signature.label == "H1"

    def test_classify_size_disambiguates_children(self):
        db = FingerprintDatabase.from_catalogue()
        hits = db.classify_size("fw.prd.ring.solution", 986)
        assert [h.label for h in hits] == ["C1"]

    def test_classify_size_rejects_wrong_domain(self):
        db = FingerprintDatabase.from_catalogue()
        assert db.classify_size("api.smartthings.example", 986) == []

    def test_signature_lookup(self):
        db = FingerprintDatabase.from_catalogue()
        assert db.signature_of("H1").ka_period == 31.0
        with pytest.raises(LookupError):
            db.signature_of("ZZ")


class TestPredictor:
    def _behavior(self, **kw):
        defaults = dict(
            long_live=True, ka_period=31.0, ka_strategy="on-idle", ka_timeout=16.0,
            event_timeout=None, command_timeout=None,
        )
        defaults.update(kw)
        return TimeoutBehavior(**defaults)

    def test_event_hold_on_idle_uses_server_liveness(self):
        predictor = TimeoutPredictor(self._behavior())
        prediction = predictor.event_hold_timeout(hold_start=100.0, last_delivered=100.0)
        assert prediction.at == pytest.approx(147.0)
        assert prediction.cause in (CAUSE_SERVER_LIVENESS, CAUSE_KEEPALIVE_REPLY)

    def test_event_hold_phase_shifts_prediction(self):
        predictor = TimeoutPredictor(self._behavior())
        late_phase = predictor.event_hold_timeout(hold_start=100.0, last_delivered=80.0)
        assert late_phase.at == pytest.approx(127.0)

    def test_unknown_phase_is_conservative(self):
        predictor = TimeoutPredictor(self._behavior())
        prediction = predictor.event_hold_timeout(hold_start=100.0, last_delivered=None)
        assert prediction.at == pytest.approx(116.0)  # grace only

    def test_event_ack_timeout_dominates(self):
        predictor = TimeoutPredictor(self._behavior(event_timeout=10.0))
        prediction = predictor.event_hold_timeout(hold_start=0.0, last_delivered=0.0)
        assert prediction.cause == CAUSE_EVENT_ACK
        assert prediction.at == 10.0

    def test_no_timeout_at_all(self):
        behavior = TimeoutBehavior(long_live=True, ka_period=None, ka_timeout=None)
        prediction = TimeoutPredictor(behavior).event_hold_timeout(0.0)
        assert prediction.cause == CAUSE_NONE
        assert not prediction.bounded

    def test_max_safe_delay_applies_margin(self):
        predictor = TimeoutPredictor(self._behavior(), margin=2.0)
        assert predictor.max_safe_event_delay(100.0, last_delivered=100.0) == pytest.approx(45.0)

    def test_max_safe_never_negative(self):
        predictor = TimeoutPredictor(self._behavior(event_timeout=1.0), margin=5.0)
        assert predictor.max_safe_event_delay(0.0) == 0.0

    def test_command_hold_bounded_by_response_timeout(self):
        predictor = TimeoutPredictor(self._behavior(command_timeout=21.0))
        prediction = predictor.command_hold_timeout(hold_start=0.0, next_ka_send=100.0)
        assert prediction.at == 21.0

    def test_command_hold_bounded_by_ka_reply(self):
        predictor = TimeoutPredictor(self._behavior())
        prediction = predictor.command_hold_timeout(hold_start=0.0, next_ka_send=10.0)
        assert prediction.at == pytest.approx(26.0)
        assert prediction.cause == CAUSE_KEEPALIVE_REPLY

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            TimeoutPredictor(self._behavior(), margin=-1.0)

    def test_behavior_from_profile_matches_windows(self):
        for label in ("H1", "L2", "HS3", "M7"):
            profile = CATALOGUE.get(label)
            behavior = TimeoutBehavior.from_profile(profile)
            assert behavior.event_delay_window() == profile.event_delay_window()
