"""TCP substrate tests: handshake, transfer, timers, and teardown."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.simnet.link import Lan
from repro.simnet.packet import EthernetFrame, IpPacket
from repro.simnet.scheduler import Simulator
from repro.tcp.connection import (
    CLOSED,
    ESTABLISHED,
    REASON_KEEPALIVE_TIMEOUT,
    REASON_REMOTE_CLOSE,
    REASON_RESET,
    REASON_RETRANSMIT_TIMEOUT,
    TcpCallbacks,
    TcpConfig,
)
from repro.tcp.segment import TcpSegment, make_segment, seq_add, seq_leq, seq_lt
from repro.tcp.stack import TcpStack


class TestSegment:
    def test_flags_validation(self):
        with pytest.raises(ValueError):
            make_segment(1, 2, 0, 0, "BOGUS")

    def test_flag_predicates(self):
        seg = make_segment(1, 2, 0, 0, "SYN", "ACK")
        assert seg.syn and seg.ack_flag and not seg.fin and not seg.rst

    def test_seq_space_counts_payload_and_flags(self):
        assert make_segment(1, 2, 0, 0, payload=b"abc").seq_space == 3
        assert make_segment(1, 2, 0, 0, "SYN").seq_space == 1
        assert make_segment(1, 2, 0, 0, "FIN", "ACK").seq_space == 1
        assert make_segment(1, 2, 0, 0, "ACK").seq_space == 0

    def test_byte_size(self):
        assert make_segment(1, 2, 0, 0, payload=b"x" * 10).byte_size() == 30

    def test_seq_wraparound(self):
        assert seq_add(2**32 - 1, 2) == 1

    def test_seq_lt_basic(self):
        assert seq_lt(1, 2)
        assert not seq_lt(2, 1)
        assert not seq_lt(5, 5)

    def test_seq_lt_wraparound(self):
        assert seq_lt(2**32 - 10, 5)

    @given(st.integers(0, 2**32 - 1), st.integers(1, 2**20))
    def test_seq_lt_after_add(self, base, delta):
        assert seq_lt(base, seq_add(base, delta))

    @given(st.integers(0, 2**32 - 1))
    def test_seq_leq_reflexive(self, a):
        assert seq_leq(a, a)


def _wire_pair(seed=5, loss_filter=None):
    """Two stacks joined by a LAN, with optional frame dropping."""
    sim = Simulator(seed=seed)
    lan = Lan(sim)

    class _Medium(Lan):
        pass

    class _Host:
        def __init__(self, ip, name):
            self.sim = sim
            self.ip = ip
            self.hostname = name
            self.ip_handler = None
            self.frame_taps = []
            self.nic = lan.attach(self._on_frame)

        def send_ip(self, packet):
            if loss_filter is not None and loss_filter(packet):
                return
            other = b_host if self is a_host else a_host
            self.nic.send(EthernetFrame(self.nic.mac, other.nic.mac, packet))

        def _on_frame(self, frame):
            if self.ip_handler and isinstance(frame.payload, IpPacket):
                if frame.payload.dst_ip == self.ip:
                    self.ip_handler(frame.payload)

    a_host = _Host("10.0.0.1", "a")
    b_host = _Host("10.0.0.2", "b")
    return sim, TcpStack(a_host), TcpStack(b_host)


class TestHandshakeAndTransfer:
    def test_three_way_handshake(self):
        sim, a, b = _wire_pair()
        accepted = []
        b.listen(80, accepted.append)
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        assert conn.state == ESTABLISHED
        assert accepted and accepted[0].state == ESTABLISHED

    def test_on_connected_callback(self):
        sim, a, b = _wire_pair()
        b.listen(80, lambda c: None)
        fired = []
        conn = a.connect("10.0.0.2", 80, callbacks=TcpCallbacks(on_connected=lambda c: fired.append(c)))
        sim.run(1.0)
        assert fired == [conn]

    def test_data_both_directions(self):
        sim, a, b = _wire_pair()
        server_rx, client_rx = [], []
        server_conn = []

        def on_accept(conn):
            server_conn.append(conn)
            conn.callbacks.on_data = lambda c, d: server_rx.append(d)

        b.listen(80, on_accept)
        conn = a.connect("10.0.0.2", 80, callbacks=TcpCallbacks(on_data=lambda c, d: client_rx.append(d)))
        sim.run(1.0)
        conn.send(b"ping")
        sim.run(1.0)
        server_conn[0].send(b"pong")
        sim.run(1.0)
        assert server_rx == [b"ping"] and client_rx == [b"pong"]

    def test_large_payload_segmented_and_reassembled(self):
        sim, a, b = _wire_pair()
        received = []
        b.listen(80, lambda c: setattr(c.callbacks, "on_data", lambda cc, d: received.append(d)))
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        blob = bytes(range(256)) * 20  # 5120 bytes > 3 x MSS
        conn.send(blob)
        sim.run(2.0)
        assert b"".join(received) == blob
        assert len(received) > 1  # actually segmented

    def test_send_before_established_rejected(self):
        sim, a, b = _wire_pair()
        b.listen(80, lambda c: None)
        conn = a.connect("10.0.0.2", 80)
        with pytest.raises(RuntimeError):
            conn.send(b"too-early")

    def test_empty_send_is_noop(self):
        sim, a, b = _wire_pair()
        b.listen(80, lambda c: None)
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        before = conn.stats["segments_sent"]
        conn.send(b"")
        assert conn.stats["segments_sent"] == before

    def test_connect_to_closed_port_times_out(self):
        sim, a, b = _wire_pair()
        closed = []
        conn = a.connect(
            "10.0.0.2", 81,
            callbacks=TcpCallbacks(on_closed=lambda c, r: closed.append(r)),
            config=TcpConfig(max_retransmits=2, rto_initial=0.5),
        )
        sim.run(30.0)
        assert closed == [REASON_RETRANSMIT_TIMEOUT]
        assert conn.state == CLOSED


class TestRetransmission:
    def test_lost_data_retransmitted(self):
        drop = {"count": 0}

        def loss(packet):
            seg = packet.payload
            # Drop the first data segment once.
            if isinstance(seg, TcpSegment) and seg.payload and drop["count"] == 0:
                drop["count"] += 1
                return True
            return False

        sim, a, b = _wire_pair(loss_filter=loss)
        received = []
        b.listen(80, lambda c: setattr(c.callbacks, "on_data", lambda cc, d: received.append(d)))
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        conn.send(b"important")
        sim.run(10.0)
        assert received == [b"important"]
        assert conn.stats["retransmissions"] >= 1

    def test_retransmission_exhaustion_kills_connection(self):
        def loss(packet):
            seg = packet.payload
            return isinstance(seg, TcpSegment) and bool(seg.payload)

        sim, a, b = _wire_pair(loss_filter=loss)
        closed = []
        b.listen(80, lambda c: None)
        conn = a.connect(
            "10.0.0.2", 80,
            callbacks=TcpCallbacks(on_closed=lambda c, r: closed.append(r)),
            config=TcpConfig(max_retransmits=3, rto_initial=0.5),
        )
        sim.run(1.0)
        conn.send(b"doomed")
        sim.run(60.0)
        assert closed == [REASON_RETRANSMIT_TIMEOUT]

    def test_ack_cancels_retransmission(self):
        sim, a, b = _wire_pair()
        b.listen(80, lambda c: None)
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        conn.send(b"data")
        sim.run(30.0)
        assert conn.stats["retransmissions"] == 0

    def test_out_of_order_buffered(self):
        sim, a, b = _wire_pair()
        received = []
        server = []

        def on_accept(conn):
            server.append(conn)
            conn.callbacks.on_data = lambda c, d: received.append(d)

        b.listen(80, on_accept)
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        # Inject segments out of order directly into the server connection.
        srv = server[0]
        base = srv.rcv_nxt
        seg2 = make_segment(conn.local_port, 80, seq_add(base, 3), srv.snd_nxt, "ACK", payload=b"def")
        seg1 = make_segment(conn.local_port, 80, base, srv.snd_nxt, "ACK", payload=b"abc")
        srv.on_segment(seg2)
        assert received == []  # held out of order
        srv.on_segment(seg1)
        assert b"".join(received) == b"abcdef"

    def test_duplicate_data_reacked_not_redelivered(self):
        sim, a, b = _wire_pair()
        received = []
        server = []

        def on_accept(conn):
            server.append(conn)
            conn.callbacks.on_data = lambda c, d: received.append(d)

        b.listen(80, on_accept)
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        srv = server[0]
        seg = make_segment(conn.local_port, 80, srv.rcv_nxt, srv.snd_nxt, "ACK", payload=b"x")
        srv.on_segment(seg)
        srv.on_segment(seg)  # duplicate
        assert received == [b"x"]
        assert srv.stats["duplicate_acks_sent"] >= 1


class TestKeepAlive:
    def test_probes_sent_when_idle(self):
        sim, a, b = _wire_pair()
        b.listen(80, lambda c: None)
        conn = a.connect(
            "10.0.0.2", 80,
            config=TcpConfig(keepalive_idle=5.0, keepalive_probe_interval=1.0),
        )
        sim.run(20.0)
        assert conn.stats["keepalive_probes"] >= 1
        assert conn.state == ESTABLISHED  # peer answers probes

    def test_unanswered_probes_abort(self):
        # Drop every pure-ACK reply from the server so probes go unanswered.
        def loss(packet):
            seg = packet.payload
            return (
                isinstance(seg, TcpSegment)
                and seg.src_port == 80
                and not seg.payload
                and not seg.syn
                and not seg.fin
                and not seg.rst
            )

        sim, a, b = _wire_pair(loss_filter=loss)
        closed = []
        b.listen(80, lambda c: None)
        conn = a.connect(
            "10.0.0.2", 80,
            callbacks=TcpCallbacks(on_closed=lambda c, r: closed.append(r)),
            config=TcpConfig(
                keepalive_idle=3.0, keepalive_probe_interval=1.0, keepalive_probe_count=3
            ),
        )
        sim.run(1.0)
        conn.send(b"warm-up")
        sim.run(60.0)
        assert REASON_KEEPALIVE_TIMEOUT in closed

    def test_keepalive_disabled(self):
        sim, a, b = _wire_pair()
        b.listen(80, lambda c: None)
        conn = a.connect(
            "10.0.0.2", 80, config=TcpConfig(keepalive_enabled=False)
        )
        sim.run(300.0)
        assert conn.stats["keepalive_probes"] == 0


class TestTeardown:
    def test_orderly_close_both_sides(self):
        sim, a, b = _wire_pair()
        server = []
        reasons_a, reasons_b = [], []

        def on_accept(conn):
            server.append(conn)
            conn.callbacks.on_closed = lambda c, r: reasons_b.append(r)

        b.listen(80, on_accept)
        conn = a.connect(
            "10.0.0.2", 80, callbacks=TcpCallbacks(on_closed=lambda c, r: reasons_a.append(r))
        )
        sim.run(1.0)
        conn.send(b"bye")
        sim.run(1.0)
        conn.close()
        sim.run(10.0)
        assert conn.state == CLOSED and server[0].state == CLOSED
        assert reasons_b == [REASON_REMOTE_CLOSE]

    def test_close_flushes_pending_data_first(self):
        sim, a, b = _wire_pair()
        received = []
        b.listen(80, lambda c: setattr(c.callbacks, "on_data", lambda cc, d: received.append(d)))
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        conn.send(b"last-words")
        conn.close()  # immediately after send
        sim.run(10.0)
        assert received == [b"last-words"]

    def test_abort_sends_rst(self):
        sim, a, b = _wire_pair()
        server = []
        reasons_b = []

        def on_accept(conn):
            server.append(conn)
            conn.callbacks.on_closed = lambda c, r: reasons_b.append(r)

        b.listen(80, on_accept)
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        conn.abort()
        sim.run(1.0)
        assert server[0].state == CLOSED
        assert reasons_b == [REASON_RESET]

    def test_send_after_close_rejected(self):
        sim, a, b = _wire_pair()
        b.listen(80, lambda c: None)
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        conn.close()
        with pytest.raises(RuntimeError):
            conn.send(b"late")

    def test_double_close_is_noop(self):
        sim, a, b = _wire_pair()
        b.listen(80, lambda c: None)
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        conn.close()
        conn.close()
        sim.run(10.0)
        assert conn.state == CLOSED


class TestStack:
    def test_duplicate_listen_rejected(self):
        sim, a, b = _wire_pair()
        b.listen(80, lambda c: None)
        with pytest.raises(ValueError):
            b.listen(80, lambda c: None)

    def test_ephemeral_ports_unique(self):
        sim, a, b = _wire_pair()
        b.listen(80, lambda c: None)
        ports = {a.connect("10.0.0.2", 80).local_port for _ in range(5)}
        assert len(ports) == 5

    def test_stray_segments_counted(self):
        sim, a, b = _wire_pair()
        # No listener: the SYN is dropped and counted.
        a.connect("10.0.0.2", 9999, config=TcpConfig(max_retransmits=0, rto_initial=0.5))
        sim.run(5.0)
        assert b.segments_dropped >= 1

    def test_connection_table_cleaned_after_close(self):
        sim, a, b = _wire_pair()
        b.listen(80, lambda c: None)
        conn = a.connect("10.0.0.2", 80)
        sim.run(1.0)
        assert a.connection_count() == 1
        conn.close()
        sim.run(10.0)
        assert a.connection_count() == 0
