"""IoT message model and wire-dialect codec tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.appproto.codecs import CODECS, HapCodec, HttpCodec, MqttCodec, codec_by_name
from repro.appproto.keepalive import FIXED, KeepAlivePolicy, ON_IDLE
from repro.appproto.messages import (
    COMMAND,
    COMMAND_ACK,
    COMPACT_KINDS,
    CONNACK,
    CONNECT,
    EVENT,
    EVENT_ACK,
    IoTMessage,
    KEEPALIVE,
    KEEPALIVE_ACK,
    MessageDecodeError,
    decode_body,
    decode_compact,
    encode_body,
    encode_compact,
    is_compact,
)


class TestMessageModel:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            IoTMessage(kind="telemetry")

    def test_msg_ids_unique(self):
        a = IoTMessage(kind=EVENT, name="e")
        b = IoTMessage(kind=EVENT, name="e")
        assert a.msg_id != b.msg_id

    def test_ack_kind_mapping(self):
        assert IoTMessage(kind=EVENT).ack_kind() == EVENT_ACK
        assert IoTMessage(kind=COMMAND).ack_kind() == COMMAND_ACK
        assert IoTMessage(kind=KEEPALIVE).ack_kind() == KEEPALIVE_ACK
        assert IoTMessage(kind=CONNECT).ack_kind() == CONNACK

    def test_ack_has_no_ack(self):
        with pytest.raises(ValueError):
            IoTMessage(kind=EVENT_ACK).ack_kind()

    def test_make_ack_echoes_id(self):
        msg = IoTMessage(kind=EVENT, name="contact.open", device_id="c1")
        ack = msg.make_ack(device_time=5.0)
        assert ack.msg_id == msg.msg_id
        assert ack.kind == EVENT_ACK
        assert ack.device_id == "c1"


class TestBodyEncoding:
    def test_roundtrip(self):
        msg = IoTMessage(kind=EVENT, name="motion.active", data={"v": 1}, device_time=2.5, device_id="m1")
        out = decode_body(encode_body(msg))
        assert out.kind == EVENT and out.name == "motion.active"
        assert out.data == {"v": 1} and out.device_time == 2.5 and out.device_id == "m1"

    def test_padding_reaches_exact_size(self):
        msg = IoTMessage(kind=EVENT, name="e", device_id="d")
        body = encode_body(msg, pad_to=500)
        assert len(body) == 500
        assert decode_body(body).name == "e"

    def test_padding_smaller_than_natural_ignored(self):
        msg = IoTMessage(kind=EVENT, name="e", device_id="d")
        natural = encode_body(msg)
        assert encode_body(msg, pad_to=5) == natural

    def test_garbage_rejected(self):
        with pytest.raises(MessageDecodeError):
            decode_body(b"\xff\xfe not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(MessageDecodeError):
            decode_body(b'{"k": "event"}')

    @given(
        st.sampled_from([EVENT, COMMAND, CONNECT]),
        st.text(min_size=0, max_size=30).filter(lambda s: "\x00" not in s),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, kind, name, device_time):
        msg = IoTMessage(kind=kind, name=name, device_time=device_time, device_id="x")
        out = decode_body(encode_body(msg, pad_to=400))
        assert (out.kind, out.name, out.device_time) == (kind, name, device_time)


class TestCompactFrames:
    def test_roundtrip(self):
        msg = IoTMessage(kind=KEEPALIVE, device_time=42.5, device_id="hub-1")
        out = decode_compact(encode_compact(msg))
        assert out.kind == KEEPALIVE
        assert out.msg_id == msg.msg_id
        assert out.device_time == 42.5
        assert out.device_id == "hub-1"

    def test_is_compact(self):
        msg = IoTMessage(kind=KEEPALIVE_ACK, device_id="h")
        assert is_compact(encode_compact(msg))
        assert not is_compact(encode_body(IoTMessage(kind=EVENT)))
        assert not is_compact(b"")

    def test_fixed_size_given_same_device(self):
        sizes = {
            len(encode_compact(IoTMessage(kind=KEEPALIVE, device_time=t, device_id="h1")))
            for t in (0.0, 1.5, 999999.125)
        }
        assert len(sizes) == 1  # no float-repr drift: wire sizes are stable

    def test_padding(self):
        msg = IoTMessage(kind=CONNACK, device_id="h1")
        body = encode_compact(msg, pad_to=60)
        assert len(body) == 60
        assert decode_compact(body).kind == CONNACK

    def test_truncated_rejected(self):
        with pytest.raises(MessageDecodeError):
            decode_compact(b"\xc0\x01")

    def test_every_compact_kind_roundtrips(self):
        for kind in COMPACT_KINDS:
            msg = IoTMessage(kind=kind, device_id="d")
            assert decode_compact(encode_compact(msg)).kind == kind


class TestCodecs:
    @pytest.mark.parametrize("name", ["mqtt", "http", "hap"])
    def test_event_roundtrip(self, name):
        codec = codec_by_name(name)
        msg = IoTMessage(kind=EVENT, name="contact.open", data={"value": "open"}, device_id="c1")
        out = codec.decode(codec.encode(msg))
        assert out.kind == EVENT and out.name == "contact.open"

    @pytest.mark.parametrize("name", ["mqtt", "http", "hap"])
    @pytest.mark.parametrize("kind", [EVENT, COMMAND, CONNECT])
    @pytest.mark.parametrize("size", [200, 512, 1453])
    def test_pad_to_exact(self, name, kind, size):
        codec = codec_by_name(name)
        msg = IoTMessage(kind=kind, name="n", device_id="dev")
        assert len(codec.encode(msg, pad_to=size)) == size

    @pytest.mark.parametrize("name", ["mqtt", "http", "hap"])
    def test_compact_kinds_bypass_framing(self, name):
        codec = codec_by_name(name)
        msg = IoTMessage(kind=KEEPALIVE, device_id="h1")
        wire = codec.encode(msg, pad_to=27)
        assert is_compact(wire)
        assert len(wire) == 27
        assert codec.decode(wire).kind == KEEPALIVE

    def test_unknown_codec(self):
        with pytest.raises(ValueError):
            codec_by_name("coap")

    def test_mqtt_packet_type_nibble(self):
        codec = MqttCodec()
        wire = codec.encode(IoTMessage(kind=EVENT, name="e", device_id="d"))
        assert wire[0] >> 4 == 3  # PUBLISH

    def test_mqtt_varint_roundtrip(self):
        for n in (0, 1, 127, 128, 16383, 16384, 2097151):
            data = MqttCodec._varint(n)
            value, offset = MqttCodec._read_varint(b"\x00" + data, 1)
            assert value == n and offset == 1 + len(data)

    def test_mqtt_truncated_rejected(self):
        codec = MqttCodec()
        wire = codec.encode(IoTMessage(kind=EVENT, name="e", device_id="d"))
        with pytest.raises(MessageDecodeError):
            codec.decode(wire[: len(wire) // 2])

    def test_mqtt_type_body_mismatch_rejected(self):
        codec = MqttCodec()
        wire = bytearray(codec.encode(IoTMessage(kind=EVENT, name="e", device_id="d")))
        wire[0] = 14 << 4  # claim DISCONNECT
        with pytest.raises(MessageDecodeError):
            codec.decode(bytes(wire))

    def test_http_request_line(self):
        codec = HttpCodec()
        wire = codec.encode(IoTMessage(kind=EVENT, name="e", device_id="d"))
        assert wire.startswith(b"POST /event HTTP/1.1\r\n")

    def test_http_response_for_acks_is_json_free_path(self):
        # Non-compact response kinds don't exist today (all acks are
        # compact), but DISCONNECT uses the request framing:
        codec = HttpCodec()
        wire = codec.encode(IoTMessage(kind="disconnect", name="bye", device_id="d"))
        assert wire.startswith(b"POST /bye HTTP/1.1\r\n")

    def test_http_missing_terminator_rejected(self):
        with pytest.raises(MessageDecodeError):
            HttpCodec().decode(b"POST / HTTP/1.1")

    def test_hap_event_uses_event_framing(self):
        codec = HapCodec()
        wire = codec.encode(IoTMessage(kind=EVENT, name="motion.active", device_id="d"))
        assert wire.startswith(b"EVENT/1.0 200 OK\r\n")

    def test_hap_non_event_uses_http_framing(self):
        codec = HapCodec()
        wire = codec.encode(IoTMessage(kind=CONNECT, name="connect", device_id="d"))
        assert wire.startswith(b"POST /session HTTP/1.1\r\n")

    @given(st.sampled_from(sorted(CODECS)), st.integers(150, 2000))
    @settings(max_examples=60)
    def test_pad_exactness_property(self, name, size):
        codec = codec_by_name(name)
        msg = IoTMessage(kind=EVENT, name="attribute.value", data={"value": "x"}, device_id="dev-123")
        wire = codec.encode(msg, pad_to=size)
        assert len(wire) == size
        assert codec.decode(wire).name == "attribute.value"


class TestKeepAlivePolicy:
    def test_valid(self):
        policy = KeepAlivePolicy(period=30.0, strategy=ON_IDLE)
        assert policy.resets_on_activity

    def test_fixed_does_not_reset(self):
        assert not KeepAlivePolicy(period=120.0, strategy=FIXED).resets_on_activity

    def test_bad_period(self):
        with pytest.raises(ValueError):
            KeepAlivePolicy(period=0.0)

    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            KeepAlivePolicy(period=10.0, strategy="sometimes")

    def test_describe(self):
        assert KeepAlivePolicy(period=31.0).describe() == "31s/on-idle"
