"""Differential fleet equivalence: fleet-of-K == K independent simulations.

The fleet engine's whole determinism claim is that batching, worker count,
and cache state are invisible: home *i* of a fleet behaves byte-identically
to a :class:`SmartHomeTestbed` built by hand from the same derived seed.
This suite checks the claim differentially — every fleet digest against an
independently constructed home, across ``jobs in {1, 2, 4}``, odd batch
partitions, and cold vs warm cache.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet import FleetRunner, FleetSampler, run_fleet, run_home


def independent_digests(seed: int, homes: int) -> tuple[str, ...]:
    """K homes built and run by hand, no fleet machinery involved."""
    sampler = FleetSampler(seed)
    return tuple(run_home(sampler.sample(i)).digest for i in range(homes))


class TestFleetEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           homes=st.integers(min_value=1, max_value=4))
    def test_fleet_matches_independent_sims(self, jobs, seed, homes):
        report = run_fleet(homes, seed=seed, jobs=jobs, batch_size=2,
                           cache=False, manifest=False)
        assert report.homes == homes
        assert report.digests == independent_digests(seed, homes)

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_batch_partition_is_invisible(self, jobs):
        expected = independent_digests(11, 6)
        for batch_size in (1, 2, 5, 16):
            report = run_fleet(6, seed=11, jobs=jobs, batch_size=batch_size,
                               cache=False, manifest=False)
            assert report.digests == expected, f"batch_size={batch_size}"

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_warm_cache_replays_identically(self, jobs):
        # conftest points REPRO_CACHE_DIR at tmp_path, so cache=True here
        # is a genuinely cold cache the first time around.
        cold = run_fleet(5, seed=23, jobs=jobs, batch_size=2, cache=True,
                         manifest=False)
        warm = run_fleet(5, seed=23, jobs=1, batch_size=2, cache=True,
                         manifest=False)
        assert warm.digests == cold.digests
        assert warm.fleet_digest == cold.fleet_digest
        assert warm.digests == independent_digests(23, 5)

    def test_cache_is_actually_hit_on_replay(self):
        runner = FleetRunner(homes=4, base_seed=9, jobs=1, batch_size=2,
                             cache=True, manifest=False)
        cold = runner.run()
        replay = FleetRunner(homes=4, base_seed=9, jobs=1, batch_size=2,
                             cache=True, manifest=False)
        warm = replay.run()
        assert warm.digests == cold.digests
        assert replay.runner.cache_hits == 2  # both batches replayed

    def test_row_metadata_matches_specs(self):
        report = run_fleet(6, seed=4, jobs=1, cache=False, manifest=False)
        sampler = FleetSampler(4)
        for row in report.rows:
            spec = sampler.sample(row.home_index)
            assert row.seed == spec.seed
            assert row.attacker == spec.attacker
            assert row.fault_profile == spec.fault_profile
            assert row.rules == len(spec.rules)

    def test_streaming_drops_rows_but_keeps_digests(self, tmp_path):
        import json

        path = tmp_path / "rows.jsonl"
        kept = run_fleet(4, seed=2, jobs=1, cache=False, manifest=False)
        streamed = run_fleet(4, seed=2, jobs=1, cache=False, manifest=False,
                             keep_rows=False, stream_to=path)
        assert streamed.rows == ()
        assert streamed.digests == kept.digests
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["digest"] for r in rows] == list(kept.digests)

    def test_empty_fleet(self):
        report = run_fleet(0, seed=0, jobs=1, cache=False, manifest=False)
        assert report.homes == 0
        assert report.digests == ()
        assert report.success_rate == 1.0

    def test_run_home_accepts_spec_dicts(self):
        # Shards carry specs as plain dicts; the dict path must land on
        # the exact same digest as the object path.
        spec = FleetSampler(0).sample(1)
        assert run_home(spec.to_dict()).digest == run_home(spec).digest

    def test_runner_rejects_nonsense_sizes(self):
        with pytest.raises(ValueError, match="fleet size"):
            FleetRunner(homes=-1)
        with pytest.raises(ValueError, match="batch size"):
            FleetRunner(homes=4, batch_size=0)


class TestFleetCli:
    def test_fleet_run_digests_stable_across_jobs(self, capsys, tmp_path):
        from repro.cli import main

        outs = []
        for jobs in ("1", "2"):
            assert main([
                "--seed", "7", "--jobs", jobs, "--no-cache", "--no-manifest",
                "fleet", "run", "--homes", "4", "--digests",
            ]) == 0
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]
        assert "fleet digest:" in outs[0]
        assert outs[0].count("home ") == 4

    def test_fleet_run_streams_rows(self, capsys, tmp_path):
        import json

        from repro.cli import main

        path = tmp_path / "rows.jsonl"
        assert main([
            "--seed", "7", "--no-cache", "--no-manifest",
            "fleet", "run", "--homes", "3", "--stream", str(path),
        ]) == 0
        capsys.readouterr()
        assert len([json.loads(l) for l in path.read_text().splitlines()]) == 3

    def test_fleet_spec_action_is_deterministic(self, capsys):
        import json

        from repro.cli import main

        outs = []
        for _ in range(2):
            assert main(["--seed", "7", "fleet", "spec", "--homes", "3"]) == 0
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]
        records = [json.loads(line) for line in outs[0].splitlines()]
        assert [r["home_index"] for r in records] == [0, 1, 2]
        assert all("digest" in r and "rules" in r for r in records)
