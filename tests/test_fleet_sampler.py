"""Sampler contract: golden-pinned specs, schema gating, stable distributions.

The golden pins are a reproducibility contract, exactly like the
``derive_seed`` pins in tests/test_parallel.py: if any of them moves, every
previously sampled fleet silently re-rolls, which is a breaking change and
must bump ``SPEC_SCHEMA``.
"""

from __future__ import annotations

import collections

import pytest

from repro.devices.profiles import CATALOGUE
from repro.fleet import (
    SPEC_SCHEMA,
    FleetConfig,
    FleetSampler,
    HomeSpec,
    Stimulus,
    home_seed,
)
from repro.fleet.sampler import ACTUATOR_POOL, SENSOR_POOL


class TestSeedDerivation:
    def test_home_seed_pins(self):
        # fleet/<home-index> namespace pins (base_seed=0); moving any of
        # these re-rolls every fleet ever sampled.
        assert home_seed(0, 0) == 5706399973494835688
        assert home_seed(0, 1) == 6658469710963336721
        assert home_seed(0, 2) == 791601933851559249
        assert home_seed(0, 63) == 2626018286476806942
        assert home_seed(7, 0) == 3932195172573457893

    def test_distinct_across_homes_and_bases(self):
        seeds = {home_seed(0, i) for i in range(256)}
        assert len(seeds) == 256
        assert home_seed(1, 0) != home_seed(0, 0)


class TestGoldenSpecs:
    def test_spec_digest_pins(self):
        sampler = FleetSampler(0)
        assert sampler.sample(0).digest() == "4d88909f4f745a40fef019e8bc172d9a"
        assert sampler.sample(1).digest() == "1ed3a4ef60591e64d7cfca69d9c528dd"
        assert sampler.sample(2).digest() == "0a1de46ce9fbb0888dbf5cd5e7e10d32"

    def test_home1_golden_spec(self):
        spec = FleetSampler(0).sample(1)
        assert spec.seed == home_seed(0, 1)
        assert spec.devices == ("WL1", "M2", "S1", "P3")
        assert spec.rules == (
            'WHEN s1 button.pushed THEN NOTIFY push "home-1 rule-0: button.pushed"',
            "WHEN wl1 water.wet IF s1.button == idle THEN COMMAND p3 on",
            'WHEN m2 motion.active THEN NOTIFY push "home-1 rule-2: motion.active"',
        )
        assert spec.fault_profile == "jittery"
        assert not spec.attacker
        assert spec.attack_target is None
        assert spec.duration == pytest.approx(103.879, abs=1e-3)

    def test_sampling_is_a_pure_function_of_seed_and_index(self):
        a = FleetSampler(42).sample(17)
        b = FleetSampler(42).sample(17)
        assert a == b
        assert a.digest() == b.digest()
        # Sampling other homes in between must not perturb the draw.
        sampler = FleetSampler(42)
        sampler.sample(3)
        sampler.sample(99)
        assert sampler.sample(17) == a

    def test_digest_ignores_meta(self):
        spec = FleetSampler(0).sample(0)
        tagged = HomeSpec.from_dict({**spec.to_dict(), "meta": {"note": "x"}})
        assert tagged.digest() == spec.digest()

    def test_round_trip_through_dict(self):
        for index in range(8):
            spec = FleetSampler(5).sample(index)
            assert HomeSpec.from_dict(spec.to_dict()) == spec


class TestSchemaGate:
    def test_newer_spec_schema_rejected(self):
        record = FleetSampler(0).sample(0).to_dict()
        record["schema"] = SPEC_SCHEMA + 1
        with pytest.raises(ValueError, match="newer than supported"):
            HomeSpec.from_dict(record)

    def test_newer_config_schema_rejected(self):
        record = FleetConfig().to_dict()
        record["schema"] = SPEC_SCHEMA + 1
        with pytest.raises(ValueError, match="newer than supported"):
            FleetConfig.from_dict(record)

    def test_current_and_older_schemas_load(self):
        spec = FleetSampler(0).sample(0)
        assert HomeSpec.from_dict(spec.to_dict()).schema == SPEC_SCHEMA
        assert FleetConfig.from_dict(FleetConfig().to_dict()) == FleetConfig()
        assert FleetConfig.from_dict(None) == FleetConfig()


class TestDistributions:
    """Histogram sanity over 1k draws — loose bounds, no flakiness."""

    DRAWS = 1000

    @pytest.fixture(scope="class")
    def specs(self):
        return FleetSampler(0).sample_many(self.DRAWS)

    def test_device_mix_within_config(self, specs):
        cfg = FleetConfig()
        sensor_counts = collections.Counter()
        for spec in specs:
            sensors = [d for d in spec.devices if d in SENSOR_POOL]
            actuators = [d for d in spec.devices if d in ACTUATOR_POOL]
            assert len(sensors) + len(actuators) == len(spec.devices)
            assert cfg.min_sensors <= len(sensors) <= cfg.max_sensors
            assert len(actuators) <= cfg.max_actuators
            sensor_counts[len(sensors)] += 1
        # Uniform over {1,2,3}: every bucket must be populated, roughly evenly.
        assert set(sensor_counts) == {1, 2, 3}
        for count in sensor_counts.values():
            assert count > self.DRAWS // 6

    def test_rule_counts_within_config(self, specs):
        cfg = FleetConfig()
        rule_counts = collections.Counter(len(s.rules) for s in specs)
        assert set(rule_counts) == set(range(cfg.min_rules, cfg.max_rules + 1))
        for count in rule_counts.values():
            assert count > self.DRAWS // 8

    def test_fault_profile_fractions(self, specs):
        fractions = collections.Counter(s.fault_profile for s in specs)
        assert 0.6 < fractions[None] / self.DRAWS < 0.8
        assert 0.08 < fractions["lossy"] / self.DRAWS < 0.25
        assert 0.08 < fractions["jittery"] / self.DRAWS < 0.25
        assert set(fractions) == {None, "lossy", "jittery"}

    def test_attacker_fraction_and_schedule(self, specs):
        attacked = [s for s in specs if s.attacker]
        assert 0.4 < len(attacked) / self.DRAWS < 0.6
        for spec in attacked:
            assert spec.attack_target in spec.devices
            assert spec.attack_target in SENSOR_POOL
            assert 1.0 <= spec.hold_at <= 30.0
            if spec.hold_duration is not None:
                lo, hi = FleetConfig().hold_range
                assert lo <= spec.hold_duration <= hi
        held = sum(1 for s in attacked if s.hold_duration is None)
        assert 0.3 < held / len(attacked) < 0.7

    def test_stimuli_sorted_and_inside_run(self, specs):
        for spec in specs:
            keys = [(s.at, s.device_id) for s in spec.stimuli]
            assert keys == sorted(keys)
            for stimulus in spec.stimuli:
                assert isinstance(stimulus, Stimulus)
                assert 0.0 < stimulus.at < spec.duration
                assert stimulus.device_id in {d.lower() for d in spec.devices}

    def test_durations_within_range(self, specs):
        lo, hi = FleetConfig().duration_range
        for spec in specs:
            assert lo <= spec.duration <= hi


class TestPools:
    def test_pools_are_real_catalogue_devices(self):
        assert SENSOR_POOL and ACTUATOR_POOL
        for label in SENSOR_POOL + ACTUATOR_POOL:
            assert CATALOGUE.get(label) is not None
        assert not set(SENSOR_POOL) & set(ACTUATOR_POOL)
