"""Attack planner and design-ablation experiment tests."""

from __future__ import annotations

import pytest

from repro.automation.dsl import parse_rule
from repro.core.attacks.planner import (
    AttackPlanner,
    SEVERITY_CRITICAL,
    SEVERITY_ELEVATED,
    SEVERITY_LOW,
    render_plan,
)
from repro.devices.profiles import CATALOGUE


@pytest.fixture
def profiles():
    return {
        "c1": CATALOGUE.get("C1"),
        "c2": CATALOGUE.get("C2"),
        "c5": CATALOGUE.get("C5"),
        "m2": CATALOGUE.get("M2"),
        "pr1": CATALOGUE.get("PR1"),
        "lk1": CATALOGUE.get("LK1"),
        "p1": CATALOGUE.get("P1"),
        "sm1": CATALOGUE.get("SM1"),
    }


class TestPlanner:
    def test_notify_rule_yields_type1(self, profiles):
        planner = AttackPlanner(profiles)
        rules = [parse_rule('WHEN sm1 smoke.detected THEN NOTIFY push "fire"', "r")]
        opportunities = planner.analyze(rules)
        assert len(opportunities) == 1
        opp = opportunities[0]
        assert opp.attack_type == "state-update-delay"
        assert opp.delay_target == "sm1"
        assert opp.window == profiles["sm1"].event_delay_window()

    def test_command_rule_yields_both_type2_directions(self, profiles):
        planner = AttackPlanner(profiles)
        rules = [parse_rule("WHEN c2 contact.closed THEN COMMAND lk1 lock", "r")]
        opportunities = planner.analyze(rules)
        directions = {(o.attack_type, o.direction) for o in opportunities}
        assert ("action-delay", "event") in directions
        assert ("action-delay", "command") in directions

    def test_conditional_rule_yields_type3_pair(self, profiles):
        planner = AttackPlanner(profiles)
        rules = [
            parse_rule(
                "WHEN c5 contact.open IF pr1.presence == present THEN COMMAND lk1 unlock", "r"
            )
        ]
        types = {o.attack_type for o in planner.analyze(rules)}
        assert "spurious-execution" in types and "disabled-execution" in types

    def test_shared_hub_session_marked_infeasible(self, profiles):
        planner = AttackPlanner(profiles)
        rules = [
            parse_rule(
                "WHEN m2 motion.active IF c2.contact == closed THEN COMMAND p1 on", "r"
            )
        ]
        type3 = [o for o in planner.analyze(rules) if o.attack_type.endswith("execution")]
        assert type3 and all(not o.feasible for o in type3)
        assert all("H1" in o.caveat for o in type3)

    def test_cross_session_condition_feasible(self, profiles):
        planner = AttackPlanner(profiles)
        rules = [
            parse_rule(
                "WHEN c5 contact.open IF pr1.presence == present THEN COMMAND lk1 unlock", "r"
            )
        ]
        type3 = [o for o in planner.analyze(rules) if o.attack_type == "spurious-execution"]
        assert type3 and type3[0].feasible

    def test_same_device_condition_infeasible(self, profiles):
        planner = AttackPlanner(profiles)
        rules = [
            parse_rule(
                "WHEN pr1 presence.away IF pr1.presence == present THEN COMMAND lk1 lock", "r"
            )
        ]
        type3 = [o for o in planner.analyze(rules) if o.attack_type.endswith("execution")]
        assert all(not o.feasible for o in type3)

    def test_severity_ranking(self, profiles):
        planner = AttackPlanner(profiles)
        rules = [
            parse_rule("WHEN c2 contact.closed THEN COMMAND p1 on", "low"),
            parse_rule("WHEN c2 contact.closed THEN COMMAND lk1 lock", "crit"),
        ]
        opportunities = planner.analyze(rules)
        assert opportunities[0].severity == SEVERITY_CRITICAL
        severities = [o.severity for o in opportunities]
        assert severities == sorted(
            severities, key=lambda s: {SEVERITY_CRITICAL: 0, SEVERITY_ELEVATED: 1, SEVERITY_LOW: 2}[s]
        )

    def test_unknown_devices_skipped(self):
        planner = AttackPlanner({})
        rules = [parse_rule("WHEN ghost contact.open THEN COMMAND wraith on", "r")]
        assert planner.analyze(rules) == []

    def test_sensor_action_has_no_command_opportunity(self, profiles):
        planner = AttackPlanner(profiles)
        # c1 supports no commands: only the trigger-side opportunity exists.
        rules = [parse_rule("WHEN c2 contact.closed THEN COMMAND c1 on", "r")]
        opportunities = planner.analyze(rules)
        assert all(o.direction == "event" for o in opportunities)

    def test_render_plan(self, profiles):
        planner = AttackPlanner(profiles)
        rules = [parse_rule("WHEN c2 contact.closed THEN COMMAND lk1 lock", "r")]
        text = render_plan(planner.analyze(rules))
        assert "Attack plan" in text and "c-Delay" in text


class TestAblationExperiments:
    def test_forged_ack_ablation_contrast(self):
        from repro.experiments.ablations import run_forged_ack_ablation

        rows = run_forged_ack_ablation(seed=171)
        with_forge = next(r for r in rows if r.forge_acks)
        without = next(r for r in rows if not r.forge_acks)
        assert with_forge.retransmissions == 0
        assert without.retransmissions >= 2

    def test_margin_zero_fails_margin_two_succeeds(self):
        from repro.experiments.ablations import run_margin_sweep

        rows = run_margin_sweep(margins=(0.0, 2.0), trials=3, seed=173)
        by_margin = {r.margin: r for r in rows}
        assert by_margin[2.0].timeouts_avoided == 3
        assert by_margin[0.0].timeouts_avoided < 3

    def test_pattern_comparison_spreads(self):
        from repro.experiments.ablations import run_pattern_comparison

        rows = {r.label: r for r in run_pattern_comparison()}
        assert rows["H2"].spread == 120.0  # fixed: full-period phase spread
        assert rows["H1"].spread == 31.0


class TestStaticArpDefense:
    def test_hardening_blocks_hijack(self):
        from repro.experiments.countermeasures import run_static_arp_defense

        rows = run_static_arp_defense(seed=175)
        assert rows[0].attack_succeeded       # default: vulnerable
        assert not rows[1].attack_succeeded   # hardened: hold never triggers
        assert rows[1].event_delay < 1.0      # event arrives on time
