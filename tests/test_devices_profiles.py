"""Device catalogue, behaviours, and runtime device tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.devices.behaviors import KIND_BEHAVIORS, behavior_for
from repro.devices.profiles import (
    CATALOGUE,
    Catalogue,
    DeviceProfile,
    HUB,
    TABLE_CLOUD,
    TABLE_LOCAL,
)
from repro.testbed import SmartHomeTestbed


class TestCatalogueIntegrity:
    def test_exactly_fifty_devices(self):
        assert len(CATALOGUE) == 50

    def test_table_split(self):
        assert len(CATALOGUE.cloud_profiles()) == 36
        assert len(CATALOGUE.local_profiles()) == 14

    def test_keys_unique(self):
        keys = [(p.label, p.table) for p in CATALOGUE]
        assert len(keys) == len(set(keys))

    def test_every_hub_child_has_its_hub(self):
        for profile in CATALOGUE:
            if profile.is_hub_child:
                hub = CATALOGUE.get(profile.hub_label, TABLE_CLOUD)
                assert hub.device_class == HUB or hub.kind == "security-base"

    def test_children_inherit_hub_session_parameters(self):
        for profile in CATALOGUE:
            if not profile.is_hub_child:
                continue
            hub = CATALOGUE.get(profile.hub_label, TABLE_CLOUD)
            assert profile.ka_period == hub.ka_period
            assert profile.ka_grace == hub.ka_grace
            assert profile.server == hub.server
            assert profile.codec_name == hub.codec_name

    def test_every_kind_has_behavior(self):
        for profile in CATALOGUE:
            behavior_for(profile.kind)  # must not raise

    def test_lookup(self):
        assert CATALOGUE.get("H1").model == "SmartThings Hub v3"
        assert CATALOGUE.get("L2", TABLE_LOCAL).server == "homekit"

    def test_unknown_label(self):
        with pytest.raises(LookupError):
            CATALOGUE.get("ZZ9")

    def test_duplicate_key_rejected(self):
        profile = CATALOGUE.get("H1")
        with pytest.raises(ValueError):
            Catalogue([profile, profile])

    def test_servers_cover_both_worlds(self):
        servers = CATALOGUE.servers()
        assert "homekit" in servers and "smartthings" in servers and "ring" in servers


class TestPaperAnchors:
    """Each prose-stated datapoint of the paper must hold in the catalogue."""

    def test_smartthings_31s_16s_infinite(self):
        h1 = CATALOGUE.get("H1")
        assert h1.ka_period == 31.0 and h1.ka_grace == 16.0
        assert h1.event_ack_timeout is None and h1.command_response_timeout is None
        assert (h1.keepalive_size, h1.ack_size) == (40, 42)

    def test_hue_fixed_120s_command_21s_window_60_180(self):
        h2 = CATALOGUE.get("H2")
        assert h2.ka_period == 120.0 and h2.ka_strategy == "fixed"
        assert h2.command_response_timeout == 21.0
        assert CATALOGUE.get("L2").event_delay_window() == (60.0, 180.0)
        assert CATALOGUE.get("L2").command_delay_window() == (21.0, 21.0)

    def test_ring_48b_keepalive_986b_contact_60s(self):
        hs1 = CATALOGUE.get("HS1")
        assert hs1.keepalive_size == 48
        assert CATALOGUE.get("C1").event_size == 986
        assert CATALOGUE.get("C1").event_delay_window()[1] == 60.0

    def test_simplisafe_keypad_only_sub_30s_device(self):
        under_30 = [
            p.label
            for p in CATALOGUE.cloud_profiles()
            if p.event_delay_window()[1] < 30.0
        ]
        assert under_30 == ["HS3"]

    def test_on_demand_sensors_over_two_minutes(self):
        for label in ("M7", "C5"):
            profile = CATALOGUE.get(label)
            assert profile.on_demand
            assert profile.event_delay_window()[0] > 120.0

    def test_homekit_events_unbounded(self):
        for profile in CATALOGUE.local_profiles():
            assert profile.event_delay_window() == (math.inf, math.inf)
            assert not profile.event_acked

    def test_lifx_sub_2s_keepalive(self):
        assert CATALOGUE.get("L3").ka_period == 2.0

    def test_all_cloud_events_delayable_beyond_30s_except_keypad(self):
        for profile in CATALOGUE.cloud_profiles():
            hi = profile.event_delay_window()[1]
            if profile.label == "HS3":
                assert hi < 30.0
            else:
                assert hi > 30.0


class TestWindowFormulas:
    def test_on_idle_window(self):
        profile = CATALOGUE.get("H1")
        lo, hi = profile.event_delay_window()
        assert (lo, hi) == (profile.ka_grace, profile.ka_period + profile.ka_grace)

    def test_event_ack_timeout_caps_window(self):
        profile = CATALOGUE.get("HS3")
        lo, hi = profile.event_delay_window()
        assert hi == profile.event_ack_timeout

    def test_command_window_none_without_commands(self):
        assert CATALOGUE.get("C1").command_delay_window() is None

    def test_command_response_timeout_caps(self):
        window = CATALOGUE.get("P2").command_delay_window()
        assert window == (10.0, 10.0)

    @given(
        period=st.floats(min_value=1.0, max_value=600.0),
        grace=st.floats(min_value=1.0, max_value=120.0),
    )
    def test_window_bounds_ordering(self, period, grace):
        profile = DeviceProfile(
            label="X1", model="X", kind="contact", device_class="sensor",
            table=TABLE_CLOUD, server="x", connection="wifi",
            ka_period=period, ka_grace=grace,
        )
        lo, hi = profile.event_delay_window()
        assert lo <= hi
        assert lo == grace and hi == period + grace

    def test_validation_rejects_bad_connection(self):
        with pytest.raises(ValueError):
            DeviceProfile(
                label="X", model="X", kind="contact", device_class="sensor",
                table=TABLE_CLOUD, server="x", connection="zigbee",
            )

    def test_validation_rejects_cloud_longlive_without_ka(self):
        with pytest.raises(ValueError):
            DeviceProfile(
                label="X", model="X", kind="contact", device_class="sensor",
                table=TABLE_CLOUD, server="x", connection="wifi",
                long_live=True, ka_period=None,
            )


class TestBehaviors:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            behavior_for("toaster")

    def test_event_name_format(self):
        assert KIND_BEHAVIORS["contact"].event_name("open") == "contact.open"

    def test_actuator_commands_map_to_values(self):
        lock = KIND_BEHAVIORS["lock"]
        assert lock.commands["lock"] == "locked"
        assert lock.commands["unlock"] == "unlocked"

    def test_speaker_announce_changes_nothing(self):
        assert KIND_BEHAVIORS["speaker"].commands["announce"] is None


class TestRuntimeDevices:
    def test_stimulate_updates_state_and_history(self):
        tb = SmartHomeTestbed(seed=2)
        contact = tb.add_device("C5")  # standalone WiFi contact
        tb.settle(2.0)
        contact.stimulate("open")
        assert contact.attribute_value == "open"
        assert contact.state_history[-1][1:] == ("contact", "open")

    def test_invalid_stimulus_rejected(self):
        tb = SmartHomeTestbed(seed=2)
        contact = tb.add_device("C5")
        with pytest.raises(ValueError):
            contact.stimulate("ajar")

    def test_actuator_reports_state_after_command(self):
        tb = SmartHomeTestbed(seed=2)
        plug = tb.add_device("P2")
        tb.settle(5.0)
        endpoint = tb.endpoints["kasa"]
        endpoint.send_command("p2", "on")
        tb.run(3.0)
        assert plug.attribute_value == "on"
        # The state change came back as an event.
        assert any(m.name == "switch.on" for _, m in endpoint.events_from("p2"))

    def test_unknown_command_ignored_but_acked(self):
        tb = SmartHomeTestbed(seed=2)
        plug = tb.add_device("P2")
        tb.settle(5.0)
        results = []
        tb.endpoints["kasa"].send_command("p2", "self-destruct", on_result=results.append)
        tb.run(3.0)
        assert plug.actions_executed == []
        assert results and results[0].acked_at is not None

    def test_hub_child_event_rides_hub_session(self):
        tb = SmartHomeTestbed(seed=2)
        contact = tb.add_device("C2")
        tb.settle(5.0)
        contact.stimulate("open")
        tb.run(2.0)
        _ts, _source, msg = tb.endpoints["smartthings"].events[-1]
        assert msg.device_id == "h1"  # carried by the hub
        assert msg.data["child"] == "c2"

    def test_hub_routes_commands_to_child(self):
        tb = SmartHomeTestbed(seed=2)
        outlet = tb.add_device("P1")
        tb.settle(5.0)
        tb.endpoints["smartthings"].send_command("p1", "on")
        tb.run(3.0)
        assert outlet.attribute_value == "on"

    def test_duplicate_child_id_rejected(self):
        tb = SmartHomeTestbed(seed=2)
        tb.add_device("C2")
        hub = tb.devices["h1"]
        from repro.devices.base import HubChildDevice

        with pytest.raises(ValueError):
            HubChildDevice(tb.sim, CATALOGUE.get("C2"), hub=hub, device_id="c2")

    def test_state_change_hooks(self):
        tb = SmartHomeTestbed(seed=2)
        contact = tb.add_device("C5")
        changes = []
        contact.on_state_change.append(lambda d, a, v: changes.append((a, v)))
        contact.stimulate("open")
        assert changes == [("contact", "open")]
