"""Unit coverage for the jamming-contrast experiment driver."""

from __future__ import annotations

import pytest

from repro.experiments.jamming_contrast import (
    MODES,
    render_jamming_contrast,
    run_jamming_contrast,
)


@pytest.fixture(scope="module")
def rows():
    return {row.mode: row for row in run_jamming_contrast(seed=271)}


class TestJammingContrast:
    def test_all_modes_present(self, rows):
        assert set(rows) == set(MODES)

    def test_phantom_delay_is_the_only_silent_mode(self, rows):
        assert rows["phantom-delay"].silent
        assert not rows["drop-segments"].silent
        assert not rows["drop-all"].silent

    def test_phantom_delay_delivers_late(self, rows):
        row = rows["phantom-delay"]
        assert row.event_delivered
        assert row.delivery_delay > 20.0
        assert row.retransmissions == 0 and row.reconnects == 0 and row.alarms == 0

    def test_selective_drop_leaves_artifacts(self, rows):
        """Whether the event survives depends on where the RTO backoff falls
        relative to the drop window (seed-dependent); the robust invariant
        is the visible retransmission storm."""
        row = rows["drop-segments"]
        assert row.retransmissions >= 1
        if row.event_delivered:
            assert row.delivery_delay > 25.0  # recovered only after the window

    def test_channel_drop_leaves_retransmission_storm(self, rows):
        assert rows["drop-all"].retransmissions >= 3

    def test_render(self, rows):
        text = render_jamming_contrast(list(rows.values()))
        assert "phantom-delay" in text and "Silent" in text
