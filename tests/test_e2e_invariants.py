"""Cross-cutting end-to-end invariants and property-based checks.

These assert the *theses* of the reproduction rather than single modules:
delays never corrupt data, stealth never trips alarms, and the predicted
windows are honoured across the catalogue.
"""

from __future__ import annotations


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.attacker import PhantomDelayAttacker
from repro.core.predictor import TimeoutBehavior, TimeoutPredictor
from repro.devices.profiles import CATALOGUE, TABLE_CLOUD
from repro.experiments._util import run_until, uplink_ip_of
from repro.testbed import SmartHomeTestbed


class TestDelayedDataIntegrity:
    def test_delayed_events_arrive_bitwise_intact(self):
        """Hold five differently-sized events; every payload survives."""
        tb = SmartHomeTestbed(seed=55)
        contact = tb.add_device("C2")
        motion = tb.add_device("M2")
        hub = tb.devices["h1"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(hub.ip)
        tb.run(35.0)
        hold = attacker.hijacker.hold_events(hub.ip, trigger_size=355)
        contact.stimulate("open")
        tb.run(0.5)
        motion.stimulate("active")
        tb.run(0.5)
        contact.stimulate("closed")
        tb.run(5.0)
        attacker.hijacker.release(hold)
        tb.run(2.0)
        endpoint = tb.endpoints["smartthings"]
        names = [(src, m.name) for _, src, m in endpoint.events]
        assert names == [
            ("c2", "contact.open"),
            ("m2", "motion.active"),
            ("c2", "contact.closed"),
        ]
        assert tb.alarms.silent

    def test_interleaved_holds_on_distinct_devices(self):
        tb = SmartHomeTestbed(seed=56)
        leak = tb.add_device("WL1")   # via H1
        base = tb.add_device("HS1")   # own session
        hub = tb.devices["h1"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(hub.ip)
        attacker.interpose(base.host.ip)
        tb.run(35.0)
        h1 = attacker.hijacker.hold_events(hub.ip, trigger_size=344)
        h2 = attacker.hijacker.hold_events(base.host.ip, trigger_size=520)
        leak.stimulate("wet")
        base.stimulate("armed-away")
        tb.run(5.0)
        assert h1.holding and h2.holding
        attacker.hijacker.release(h2)
        attacker.hijacker.release(h1)
        tb.run(2.0)
        assert tb.endpoints["smartthings"].events_from("wl1")
        assert tb.endpoints["ring"].events_from("hs1")
        assert tb.alarms.silent


class TestWindowHonouring:
    @pytest.mark.parametrize("label", ["C2", "C1", "M3", "LK1", "P2"])
    def test_max_safe_delay_is_actually_safe(self, label):
        """For a spread of device shapes, the primitive's automatic maximum
        never trips a timeout and the message is always accepted."""
        tb = SmartHomeTestbed(seed=hash(label) % 1000)
        device = tb.add_device(label)
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        uplink = uplink_ip_of(device)
        attacker.interpose(uplink)
        tb.run(45.0)
        operation = attacker.delay_next_event(
            uplink,
            TimeoutBehavior.from_profile(device.profile),
            trigger_size=device.profile.event_size,
        )
        value = device.behavior.sensor_values[0]
        device.stimulate(value)
        run_until(tb.sim, lambda: operation.released_at is not None, 300.0)
        tb.run(8.0)
        assert operation.stealthy
        assert tb.alarms.silent
        endpoint = tb.endpoints[device.profile.server]
        assert endpoint.events_from(device.device_id)

    def test_achieved_delay_within_catalogue_window(self):
        tb = SmartHomeTestbed(seed=57)
        contact = tb.add_device("C1")
        base = tb.devices["hs1"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(base.ip)
        tb.run(45.0)
        operation = attacker.delay_next_event(
            base.ip, TimeoutBehavior.from_profile(contact.profile), trigger_size=986
        )
        contact.stimulate("open")
        run_until(tb.sim, lambda: operation.released_at is not None, 200.0)
        lo, hi = contact.profile.event_delay_window()
        margin = 2.0
        assert lo - margin <= operation.achieved_delay <= hi
        assert operation.achieved_delay > 25.0  # Ring: "up to 60 seconds"


class TestPredictorProperties:
    @given(
        period=st.floats(min_value=2.0, max_value=300.0),
        grace=st.floats(min_value=1.0, max_value=120.0),
        phase=st.floats(min_value=0.0, max_value=1.0),
        margin=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=80)
    def test_release_always_before_ground_truth_timeout(self, period, grace, phase, margin):
        """The predicted safe delay never reaches the true first timeout.

        Ground truth for an on-idle device: the server dies at
        last_delivered + period + grace; the device's keep-alive-reply wait
        dies at hold_start + period + grace.
        """
        behavior = TimeoutBehavior(
            long_live=True, ka_period=period, ka_strategy="on-idle", ka_timeout=grace
        )
        hold_start = 1000.0
        last_delivered = hold_start - phase * period
        predictor = TimeoutPredictor(behavior, margin=margin)
        safe = predictor.max_safe_event_delay(hold_start, last_delivered=last_delivered)
        true_timeout = min(
            last_delivered + period + grace,  # server liveness
            hold_start + period + grace,      # device ka-reply wait
        )
        assert hold_start + safe < true_timeout

    @given(
        period=st.floats(min_value=2.0, max_value=300.0),
        grace=st.floats(min_value=1.0, max_value=120.0),
        event_timeout=st.floats(min_value=0.5, max_value=600.0),
    )
    @settings(max_examples=80)
    def test_windows_are_consistent_with_predictions(self, period, grace, event_timeout):
        behavior = TimeoutBehavior(
            long_live=True, ka_period=period, ka_strategy="on-idle",
            ka_timeout=grace, event_timeout=event_timeout,
        )
        lo, hi = behavior.event_delay_window()
        assert 0 < lo <= hi
        assert hi <= min(event_timeout, period + grace)

    @given(st.sampled_from([p.label for p in CATALOGUE.cloud_profiles()]))
    @settings(max_examples=36, deadline=None)
    def test_every_cloud_profile_has_coherent_windows(self, label):
        profile = CATALOGUE.get(label, TABLE_CLOUD)
        lo, hi = profile.event_delay_window()
        assert lo <= hi
        command = profile.command_delay_window()
        if command is not None:
            assert command[0] <= command[1]


class TestStealthThesis:
    def test_one_compromised_device_attacks_another(self):
        """The headline: compromising one WiFi device delays messages of a
        *non-compromised* device, with zero alarms anywhere."""
        tb = SmartHomeTestbed(seed=58)
        contact = tb.add_device("C1")
        tb.install_rules([])
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        base = tb.devices["hs1"]
        # The attacker host never talks to the Ring base directly; it only
        # spoofs ARP and forwards.
        attacker.interpose(base.ip)
        tb.run(40.0)
        operation = attacker.delay_next_event(
            base.ip, TimeoutBehavior.from_profile(contact.profile), trigger_size=986
        )
        contact.stimulate("open")
        run_until(tb.sim, lambda: operation.released_at is not None, 200.0)
        tb.run(10.0)
        delivered = tb.endpoints["ring"].events_from("c1")
        assert delivered
        delay = delivered[0][0] - delivered[0][1].device_time
        assert delay > 20.0
        assert tb.alarms.silent
