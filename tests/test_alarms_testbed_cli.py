"""Alarm log, testbed assembly, reporting helpers, and the CLI."""

from __future__ import annotations

import math

import pytest

from repro.alarms import AlarmLog
from repro.analysis.reporting import TextTable, fmt_bool, fmt_seconds, fmt_window, mean, median
from repro.cli import build_parser, main
from repro.simnet.scheduler import Simulator
from repro.testbed import SmartHomeTestbed


class TestAlarmLog:
    def _log(self):
        sim = Simulator(seed=1)
        return sim, AlarmLog(sim)

    def test_silent_initially(self):
        _, log = self._log()
        assert log.silent and log.count() == 0

    def test_raise_records_time_and_detail(self):
        sim, log = self._log()
        sim.run_until(5.0)
        alarm = log.raise_alarm("device-offline", "cloud", "hub gone")
        assert alarm.ts == 5.0
        assert not log.silent

    def test_filters(self):
        sim, log = self._log()
        log.raise_alarm("a", "s1")
        sim.run_until(10.0)
        log.raise_alarm("b", "s2")
        assert len(log.of_kind("a")) == 1
        assert len(log.from_source("s2")) == 1
        assert len(log.since(5.0)) == 1
        assert log.kinds() == {"a", "b"}

    def test_summary(self):
        _, log = self._log()
        log.raise_alarm("a", "s")
        log.raise_alarm("a", "s")
        log.raise_alarm("b", "s")
        assert log.summary() == {"a": 2, "b": 1}
        assert log.extend_summary(["c"]) == {"a": 2, "b": 1, "c": 0}

    def test_count_by_kind(self):
        _, log = self._log()
        log.raise_alarm("a", "s")
        assert log.count("a") == 1 and log.count("b") == 0


class TestReporting:
    def test_fmt_seconds(self):
        assert fmt_seconds(None) == "∞"
        assert fmt_seconds(math.inf) == "∞"
        assert fmt_seconds(1.25, 1) == "1.2s"

    def test_fmt_window(self):
        assert fmt_window(None) == "-"
        assert fmt_window((16.0, 47.0)) == "[16s, 47s]"
        assert fmt_window((21.0, 21.0)) == "21s"
        assert fmt_window((10.0, math.inf)) == "∞"

    def test_fmt_bool(self):
        assert fmt_bool(True) == "yes" and fmt_bool(False) == "no" and fmt_bool(None) == "-"

    def test_table_renders_aligned(self):
        table = TextTable(["A", "Long header"], title="T")
        table.add_row("x", 1)
        out = table.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "Long header" in lines[1]
        assert len({len(l) for l in lines[1:]}) <= 2  # header/sep/rows aligned

    def test_table_row_arity_checked(self):
        table = TextTable(["A", "B"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_median_mean(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            median([])


class TestTestbed:
    def test_add_device_idempotent(self):
        tb = SmartHomeTestbed(seed=1)
        a = tb.add_device("C2")
        b = tb.add_device("C2")
        assert a is b

    def test_hub_pulled_in_automatically(self):
        tb = SmartHomeTestbed(seed=1)
        tb.add_device("C1")
        assert "hs1" in tb.devices
        assert "ring" in tb.endpoints

    def test_unique_lan_ips(self):
        tb = SmartHomeTestbed(seed=1)
        tb.add_device("C5")
        tb.add_device("P2")
        tb.add_device("M7")
        ips = [d.host.ip for d in tb.devices.values()]
        assert len(ips) == len(set(ips))

    def test_local_and_cloud_variants_coexist(self):
        tb = SmartHomeTestbed(seed=1)
        cloud = tb.add_device("L2")
        local = tb.add_device("L2", table=2)
        assert cloud is not local
        assert "l2" in tb.devices and "l2-hk" in tb.devices

    def test_endpoint_created_on_demand_and_cached(self):
        tb = SmartHomeTestbed(seed=1)
        e1 = tb.endpoint("ring")
        e2 = tb.endpoint("ring")
        assert e1 is e2

    def test_summary_shape(self):
        tb = SmartHomeTestbed(seed=1)
        tb.add_device("C5")
        tb.settle(3.0)
        summary = tb.summary()
        assert summary["devices"] == ["c5"]
        assert "tuya" in summary["endpoints"]

    def test_attacker_host_is_promiscuous(self):
        tb = SmartHomeTestbed(seed=1)
        host = tb.add_attacker_host()
        assert host.nic.promiscuous

    def test_long_stability_no_alarms(self):
        tb = SmartHomeTestbed(seed=1)
        tb.add_device("C2")
        tb.add_device("L2")
        tb.add_device("HS1")
        tb.add_device("M9", table=2)
        tb.settle(8.0)
        tb.run(2000.0)
        assert tb.alarms.silent


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        args = parser.parse_args(["catalogue"])
        assert args.command == "catalogue"

    def test_catalogue_command(self, capsys):
        assert main(["catalogue"]) == 0
        out = capsys.readouterr().out
        assert "50 devices" in out
        assert "SmartThings Hub v3" in out

    def test_table1_single_label(self, capsys):
        assert main(["--labels", "HS3", "--trials", "1", "table1"]) == 0
        out = capsys.readouterr().out
        assert "SimpliSafe Keypad" in out and "20s" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
