"""Equivalence proofs for the timer-wheel scheduler.

Two layers of evidence that the wheel rewrite changed *nothing
observable*:

1. A hypothesis property drives randomly generated timer programs —
   one-shots and periodics with colliding fire times, cancellations
   (including self-cancel and cancel-from-callback), mid-run spawns, and
   net-zero cancel+respawn tricks — through the wheel and through a
   straight-heap reference model, and demands identical fire logs,
   event counts, and final clocks.  The same program also runs with
   quiescence skipping blocked, pinning the fast path to the general
   path.

2. Byte-identity pins: the rendered Table I and the canonical Table III
   result digests are asserted against values recorded before the wheel
   landed.  Any scheduler change that perturbs event order anywhere in
   the full stack (TLS, TCP, application timers, attacker holds) moves
   these digests.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools

from hypothesis import given, settings, strategies as st

from repro.cache.keys import canonical
from repro.simnet.scheduler import Simulator

#: sha256 of ``render_table1(run_table1(labels, trials=3, cache=False))``
#: recorded on the pre-wheel scheduler — the wheel must reproduce it.
TABLE1_SHA256 = "9f9a848f786f46ddd76592c3d2a74206ea9cbb04fc6567177285be2eefc40f08"
TABLE1_LABELS = ["HS1", "C2", "M7"]

#: blake2b-128 of ``canonical(run_table3(cache=False))``, same provenance.
TABLE3_BLAKE2B = "b29df45a230f797f5cbe33dd7b4e8d2f"


# --------------------------------------------------------------- reference

class _RefTimer:
    __slots__ = ("when", "callback", "args", "label", "period", "_cancelled")

    def __init__(self, when, callback, args, label, period):
        self.when = when
        self.callback = callback
        self.args = args
        self.label = label
        self.period = period
        self._cancelled = False

    def cancel(self):
        self._cancelled = True


class _HeapReference:
    """Textbook binary-heap scheduler with the Simulator's semantics.

    Global ``(when, seq)`` order over one shared insertion counter;
    cancelled timers are skipped lazily at pop time; a fired periodic is
    re-armed with a fresh seq even when its own callback cancelled it
    (the "ghost re-arm" the wheel also performs, so tie-breaking stays
    aligned); the clock lands exactly on the deadline.
    """

    def __init__(self):
        self.now = 0.0
        self._q = []
        self._seq = itertools.count()
        self._events_processed = 0

    def schedule(self, delay, callback, *args, label=""):
        return self.at(self.now + delay, callback, *args, label=label)

    def at(self, when, callback, *args, label=""):
        timer = _RefTimer(when, callback, args, label, None)
        heapq.heappush(self._q, (when, next(self._seq), timer))
        return timer

    def schedule_periodic(self, period, callback, *args, first=None, label=""):
        delay = period if first is None else first
        timer = _RefTimer(self.now + delay, callback, args, label, period)
        heapq.heappush(self._q, (timer.when, next(self._seq), timer))
        return timer

    def run_until(self, deadline):
        q = self._q
        while q:
            when, _seq, timer = q[0]
            if when > deadline:
                break
            heapq.heappop(q)
            if timer._cancelled:
                continue
            self.now = when
            self._events_processed += 1
            timer.callback(*timer.args)
            if timer.period is not None:
                timer.when = when + timer.period
                heapq.heappush(q, (timer.when, next(self._seq), timer))
        self.now = max(self.now, deadline)


# ---------------------------------------------------------------- programs

#: Delays drawn from a coarse grid so distinct timers collide on the same
#: fire instant and tie-breaking (insertion order) actually gets exercised.
_DELAYS = st.sampled_from([0.0, 0.25, 0.5, 0.5, 1.0, 1.5, 2.0, 7.75, 9.5, 40.0])
_PERIODS = st.sampled_from([0.25, 0.5, 0.5, 1.0, 3.0])

_ONESHOT = st.tuples(st.just("one"), _DELAYS,
                     st.sampled_from(["noop", "spawn", "cancel", "respawn"]))
_PERIODIC = st.tuples(st.just("per"), _PERIODS, _DELAYS,
                      st.integers(min_value=0, max_value=6),
                      st.sampled_from(["stop", "stop+spawn", "ghost"]))

_PROGRAM = st.lists(st.one_of(_ONESHOT, _PERIODIC), min_size=1, max_size=12)


def _execute(sim, program, deadline):
    """Run one generated program on ``sim``; returns the fire log."""
    log = []
    handles = []

    def fire_oneshot(idx, action):
        log.append(("one", idx, sim.now))
        if action == "spawn":
            sim.schedule(0.25, lambda: log.append(("spawned", idx, sim.now)),
                         label=f"spawn{idx}")
        elif action == "cancel":
            # Cancel the *next* armed sibling that is still pending.
            for h in handles[idx + 1:]:
                if not h._cancelled:
                    h.cancel()
                    break
        elif action == "respawn":
            # Net-zero trick: replace a pending sibling with a new timer.
            for h in handles[idx + 1:]:
                if not h._cancelled:
                    h.cancel()
                    sim.schedule(0.5, lambda: log.append(("resp", idx, sim.now)),
                                 label=f"resp{idx}")
                    break

    for idx, spec in enumerate(program):
        if spec[0] == "one":
            _, delay, action = spec
            handles.append(
                sim.schedule(delay, fire_oneshot, idx, action, label=f"one{idx}")
            )
        else:
            _, period, first_extra, limit, action = spec
            state = {"fires": 0}

            def fire(idx=idx, limit=limit, action=action, state=state):
                state["fires"] += 1
                log.append(("per", idx, sim.now))
                if state["fires"] > limit:
                    timer = handles[idx]
                    if action == "ghost":
                        # Self-cancel from inside the callback: the wheel
                        # must ghost-re-arm without firing again.
                        timer.cancel()
                    elif action == "stop":
                        timer.cancel()
                    else:  # stop+spawn — net-zero periodic swap
                        timer.cancel()
                        sim.schedule_periodic(
                            7.5, lambda: log.append(("swap", idx, sim.now)),
                            label=f"swap{idx}")

            handles.append(
                sim.schedule_periodic(period, fire, first=period + first_extra,
                                      label=f"per{idx}")
            )
    sim.run_until(deadline)
    return log


@given(program=_PROGRAM)
@settings(max_examples=60, deadline=None)
def test_wheel_matches_heap_reference(program):
    deadline = 12.0
    wheel = Simulator()
    reference = _HeapReference()
    log_wheel = _execute(wheel, program, deadline)
    log_ref = _execute(reference, program, deadline)
    assert log_wheel == log_ref
    assert wheel._events_processed == reference._events_processed
    assert wheel.now == reference.now == deadline

    # Quiescence skipping blocked: the general path must produce the very
    # same trace the fast path (exercised above whenever the program went
    # all-periodic) produced.
    blocked = Simulator()
    blocked.block_quiescence()
    assert _execute(blocked, program, deadline) == log_wheel
    assert blocked._events_processed == wheel._events_processed


@given(program=_PROGRAM)
@settings(max_examples=25, deadline=None)
def test_wheel_overflow_horizon_matches_reference(program):
    """Same property across the wheel's 8s horizon (overflow migration)."""
    deadline = 95.0
    wheel = Simulator()
    reference = _HeapReference()
    scale = 11.0  # push most delays past WHEEL_SIZE * TICK = 8s

    def stretch(spec):
        if spec[0] == "one":
            return ("one", spec[1] * scale, spec[2])
        return ("per", spec[1] * scale, spec[2] * scale, spec[3], spec[4])

    stretched = [stretch(s) for s in program]
    assert _execute(wheel, stretched, deadline) == _execute(
        reference, stretched, deadline
    )
    assert wheel._events_processed == reference._events_processed


# ------------------------------------------------------------- digest pins

def test_table1_byte_identity_pin():
    from repro.experiments.table1 import render_table1, run_table1

    rows = run_table1(labels=TABLE1_LABELS, trials=3, cache=False)
    digest = hashlib.sha256(render_table1(rows).encode()).hexdigest()
    assert digest == TABLE1_SHA256, (
        "Table I bytes moved — the scheduler (or anything beneath it) "
        f"perturbed event order: {digest}"
    )


def test_table3_canonical_digest_pin():
    from repro.experiments.table3 import run_table3

    digest = hashlib.blake2b(
        canonical(run_table3(cache=False)), digest_size=16
    ).hexdigest()
    assert digest == TABLE3_BLAKE2B, (
        f"Table III canonical result moved: {digest}"
    )
