"""Edge-case coverage across layers: error paths and rarely-hit branches."""

from __future__ import annotations

import pytest

from repro.core.attacker import PhantomDelayAttacker
from repro.core.hijacker import Hold
from repro.core.predictor import TimeoutBehavior
from repro.simnet.packet import IpPacket
from repro.tcp.stack import TcpStack
from repro.tls.session import GLOBAL_ESCROW, KeyEscrow, TlsSession, _plain_record
from repro.testbed import SmartHomeTestbed


class TestTlsSessionErrorPaths:
    def _client_server(self, net, escrow=None, server_escrow=None):
        escrow = escrow or KeyEscrow()
        device = net.add_lan_host("device")
        cloud = net.add_cloud_host("cloud")
        dev_stack, cloud_stack = TcpStack(device), TcpStack(cloud)
        servers = []

        def on_accept(conn):
            servers.append(
                TlsSession(conn, "server", escrow=server_escrow or escrow)
            )

        cloud_stack.listen(443, on_accept)
        conn = dev_stack.connect(cloud.ip, 443)
        client = TlsSession(conn, "client", escrow=escrow)
        return client, servers

    def test_escrow_mismatch_fails_handshake(self, net):
        # Server checks a different escrow: the token cannot be redeemed.
        client, servers = self._client_server(
            net, escrow=KeyEscrow(), server_escrow=KeyEscrow()
        )
        net.sim.run(5.0)
        assert not client.established
        assert servers and servers[0].closed

    def test_non_handshake_record_before_keys_is_fatal(self, net):
        escrow = KeyEscrow()
        cloud = net.add_cloud_host("cloud2")
        cloud_stack = TcpStack(cloud)
        servers = []
        cloud_stack.listen(443, lambda conn: servers.append(
            TlsSession(conn, "server", escrow=escrow)
        ))
        device = net.add_lan_host("dev2")
        stack = TcpStack(device)
        # Raw TCP client (no TLS session): send an application-type record
        # before any handshake.
        conn = stack.connect(cloud.ip, 443)
        net.sim.run(1.0)
        conn.send(_plain_record(23, b"premature"))
        net.sim.run(2.0)
        assert servers and servers[0].closed
        assert any("non-handshake" in a for a in servers[0].alerts_raised)

    def test_global_escrow_default(self, net):
        device = net.add_lan_host("d3")
        stack = TcpStack(device)
        conn = stack.connect("34.9.9.9", 443)
        session = TlsSession(conn, "client")
        assert session.escrow is GLOBAL_ESCROW


class TestRouterPaths:
    def test_lan_to_lan_hairpin_via_gateway(self, net):
        a = net.add_lan_host("a")
        b = net.add_lan_host("b")
        got = []
        b.ip_handler = got.append
        # Force the frame through the router (as a poisoned host would).
        from repro.simnet.packet import EthernetFrame

        net.sim.run(0.1)
        a.arp.learn(net.router.ip, net.router.mac, solicited=True)
        a.nic.send(
            EthernetFrame(a.mac, net.router.mac, IpPacket(a.ip, b.ip, b"hairpin"))
        )
        net.sim.run(1.0)
        assert [p.payload for p in got] == [b"hairpin"]

    def test_wan_packet_for_router_itself(self, net):
        got = []
        net.router.ip_handler = got.append
        cloud = net.add_cloud_host("c")
        cloud.send_ip(IpPacket(cloud.ip, net.router.ip, b"mgmt"))
        net.sim.run(1.0)
        assert len(got) == 1


class TestEndpointStaleHandling:
    def test_close_stale_on_reconnect_variant(self):
        """The 'fixed' endpoint closes the old session on reconnect instead
        of keeping it half-open."""
        tb = SmartHomeTestbed(seed=191, close_stale_on_reconnect=True)
        keypad = tb.add_device("HS3")
        endpoint = tb.endpoints["simplisafe"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(keypad.host.ip)
        tb.run(30.0)
        attacker.delay_next_event(
            keypad.host.ip,
            TimeoutBehavior.from_profile(keypad.profile),
            duration=40.0,
            clamp=False,
            suppress_close=True,
        )
        keypad.stimulate("code-entered")
        tb.run(30.0)  # device times out at 20 s, reconnects at 22 s
        assert endpoint.half_open_count("hs3") == 1  # old one was closed

    def test_unknown_device_connection_served_with_defaults(self, net):
        tb = SmartHomeTestbed(seed=193)
        endpoint = tb.endpoint("ring")
        # A device the endpoint never registered connects anyway.
        from repro.appproto.base import DeviceProtocolClient, ProtocolConfig

        host = tb.add_attacker_host("rogue")  # any LAN host will do
        stack = TcpStack(host)
        client = DeviceProtocolClient(
            stack=stack,
            device_id="rogue-1",
            server_ip=endpoint.host.ip,
            server_port=endpoint.port,
            config=ProtocolConfig(codec_name="http"),
            alarm_log=tb.alarms,
            escrow=tb.escrow,
        )
        client.start()
        tb.run(5.0)
        assert client.connected
        assert endpoint.orphan_sessions  # tracked but unregistered


class TestTestbedVariants:
    def test_custom_lan_latency(self):
        tb = SmartHomeTestbed(seed=195, lan_latency=0.05)
        assert tb.lan.latency == 0.05
        contact = tb.add_device("C5")
        tb.settle(8.0)
        contact.stimulate("open")
        tb.run(5.0)
        assert tb.endpoints["tuya"].events_from("c5")

    def test_ip_exhaustion_guarded(self):
        tb = SmartHomeTestbed(seed=197)
        tb._next_device_ip = 251
        with pytest.raises(RuntimeError):
            tb._allocate_lan_ip()

    def test_unknown_catalogue_label(self):
        tb = SmartHomeTestbed(seed=199)
        with pytest.raises(LookupError):
            tb.add_device("NOPE")


class TestHoldBookkeeping:
    def test_current_delay_and_matchers(self):
        hold = Hold(hold_id=1, device_ip="10.0.0.1", direction="uplink")
        assert hold.current_delay(100.0) == 0.0
        hold.triggered_at = 90.0
        assert hold.current_delay(100.0) == 10.0
        packet = IpPacket("10.0.0.1", "34.0.0.1", None)
        assert hold.matches_packet(packet)
        assert not hold.matches_packet(IpPacket("10.0.0.2", "34.0.0.1", None))

    def test_downlink_matcher_with_server_filter(self):
        hold = Hold(hold_id=2, device_ip="10.0.0.1", direction="downlink", server_ip="34.0.0.1")
        assert hold.matches_packet(IpPacket("34.0.0.1", "10.0.0.1", None))
        assert not hold.matches_packet(IpPacket("34.0.0.9", "10.0.0.1", None))
        assert not hold.matches_packet(IpPacket("10.0.0.1", "34.0.0.1", None))


class TestPrimitiveEdges:
    def test_cancel_before_trigger(self):
        tb = SmartHomeTestbed(seed=201)
        contact = tb.add_device("C2")
        hub = tb.devices["h1"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(hub.ip)
        tb.run(5.0)
        primitive = attacker.e_delay(hub.ip, TimeoutBehavior.from_profile(hub.profile))
        operation = primitive.arm(trigger_size=355)
        primitive.cancel(operation)
        contact.stimulate("open")
        tb.run(3.0)
        assert operation.triggered_at is None
        assert operation.achieved_delay is None
        assert tb.endpoints["smartthings"].events_from("c2")

    def test_manual_release_of_timed_operation_is_safe(self):
        tb = SmartHomeTestbed(seed=203)
        contact = tb.add_device("C2")
        hub = tb.devices["h1"]
        tb.settle(8.0)
        attacker = PhantomDelayAttacker.deploy(tb)
        attacker.interpose(hub.ip)
        tb.run(35.0)
        primitive = attacker.e_delay(hub.ip, TimeoutBehavior.from_profile(hub.profile))
        operation = primitive.arm(duration=30.0, trigger_size=355)
        contact.stimulate("open")
        tb.run(3.0)
        primitive.release(operation)  # early manual release
        tb.run(40.0)  # the scheduled release later is a no-op
        assert operation.achieved_delay < 5.0
        assert len(tb.endpoints["smartthings"].events_from("c2")) == 1


class TestAutomationEdges:
    def test_rule_str_and_firing_detail(self):
        from repro.automation import parse_rule

        rule = parse_rule(
            "WHEN c1 contact.open IF pr1.presence == present THEN COMMAND lk1 unlock"
        )
        text = str(rule)
        assert "when c1:contact.open" in text
        assert "pr1.presence == 'present'" in text

    def test_actions_taken_filter(self):
        from repro.automation import AutomationEngine, parse_rule
        from repro.simnet.scheduler import Simulator

        sim = Simulator(seed=1)
        engine = AutomationEngine(sim, command_sink=lambda *a: None)
        engine.install_rule(parse_rule("WHEN a b.c THEN COMMAND d e", "r1"))
        engine.install_rule(parse_rule("WHEN a b.d THEN COMMAND d f", "r2"))
        engine.handle_event("a", "b.c", device_time=0.0)
        assert len(engine.actions_taken()) == 1
        assert len(engine.actions_taken("r1")) == 1
        assert engine.actions_taken("r2") == []
        assert len(engine.firings_of("r1")) == 1
