"""Unit tests for wire formats and the broadcast LAN."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.simnet.link import Lan
from repro.simnet.packet import (
    ARP_BODY_BYTES,
    ArpPacket,
    BROADCAST_MAC,
    ETHERNET_HEADER_BYTES,
    EthernetFrame,
    IPV4_HEADER_BYTES,
    IpPacket,
    MacPool,
)
from repro.simnet.scheduler import Simulator


class TestMacPool:
    def test_allocates_unique(self):
        pool = MacPool()
        macs = {pool.allocate() for _ in range(100)}
        assert len(macs) == 100

    def test_format(self):
        mac = MacPool().allocate()
        parts = mac.split(":")
        assert len(parts) == 6
        assert all(len(p) == 2 for p in parts)


class TestPacketSizes:
    def test_arp_size(self):
        arp = ArpPacket("request", "m1", "1.1.1.1", BROADCAST_MAC, "1.1.1.2")
        assert arp.byte_size() == ARP_BODY_BYTES

    def test_bad_arp_op(self):
        with pytest.raises(ValueError):
            ArpPacket("query", "m", "i", "m", "i")

    def test_ip_packet_size_with_bytes(self):
        packet = IpPacket("1.1.1.1", "2.2.2.2", b"x" * 40)
        assert packet.byte_size() == IPV4_HEADER_BYTES + 40

    def test_ip_packet_size_empty(self):
        assert IpPacket("a", "b", None).byte_size() == IPV4_HEADER_BYTES

    def test_frame_size_nests(self):
        frame = EthernetFrame("m1", "m2", IpPacket("a", "b", b"x" * 10))
        assert frame.byte_size() == ETHERNET_HEADER_BYTES + IPV4_HEADER_BYTES + 10

    def test_frame_ids_unique(self):
        f1 = EthernetFrame("a", "b", None)
        f2 = EthernetFrame("a", "b", None)
        assert f1.frame_id != f2.frame_id

    def test_broadcast_flag(self):
        assert EthernetFrame("a", BROADCAST_MAC, None).is_broadcast
        assert not EthernetFrame("a", "b", None).is_broadcast

    def test_unsupported_payload_rejected(self):
        frame = EthernetFrame("a", "b", object())
        with pytest.raises(TypeError):
            frame.byte_size()

    @given(st.binary(max_size=2000))
    def test_ip_size_matches_payload(self, payload):
        assert IpPacket("a", "b", payload).byte_size() == IPV4_HEADER_BYTES + len(payload)


class TestLanDelivery:
    def _lan(self):
        sim = Simulator(seed=3)
        return sim, Lan(sim)

    def test_unicast_reaches_only_addressee(self):
        sim, lan = self._lan()
        got_a, got_b = [], []
        nic_a = lan.attach(got_a.append)
        lan.attach(got_b.append)
        sender = lan.attach(lambda f: None)
        sender.send(EthernetFrame(sender.mac, nic_a.mac, None))
        sim.run(1.0)
        assert len(got_a) == 1 and got_b == []

    def test_broadcast_reaches_all_but_sender(self):
        sim, lan = self._lan()
        received = {i: [] for i in range(3)}
        nics = [lan.attach(received[i].append) for i in range(3)]
        nics[0].send(EthernetFrame(nics[0].mac, BROADCAST_MAC, None))
        sim.run(1.0)
        assert received[0] == [] and len(received[1]) == 1 and len(received[2]) == 1

    def test_promiscuous_overhears_unicast(self):
        sim, lan = self._lan()
        sniffed = []
        nic_a = lan.attach(lambda f: None)
        nic_b = lan.attach(lambda f: None)
        lan.attach(sniffed.append, promiscuous=True)
        nic_a.send(EthernetFrame(nic_a.mac, nic_b.mac, None))
        sim.run(1.0)
        assert len(sniffed) == 1

    def test_promiscuous_addressee_gets_frame_once(self):
        sim, lan = self._lan()
        got = []
        nic_a = lan.attach(lambda f: None)
        nic_b = lan.attach(got.append, promiscuous=True)
        nic_a.send(EthernetFrame(nic_a.mac, nic_b.mac, None))
        sim.run(1.0)
        assert len(got) == 1

    def test_latency_applied(self):
        sim = Simulator(seed=3)
        lan = Lan(sim, latency=0.25)
        arrival = []
        nic_a = lan.attach(lambda f: None)
        nic_b = lan.attach(lambda f: arrival.append(sim.now))
        nic_a.send(EthernetFrame(nic_a.mac, nic_b.mac, None))
        sim.run(1.0)
        assert arrival == [0.25]

    def test_negative_latency_rejected(self):
        sim = Simulator(seed=3)
        with pytest.raises(ValueError):
            Lan(sim, latency=-1.0)

    def test_detached_nic_gets_nothing(self):
        sim, lan = self._lan()
        got = []
        nic_a = lan.attach(lambda f: None)
        nic_b = lan.attach(got.append)
        lan.detach(nic_b)
        nic_a.send(EthernetFrame(nic_a.mac, nic_b.mac, None))
        sim.run(1.0)
        assert got == []

    def test_detached_nic_cannot_send(self):
        sim, lan = self._lan()
        nic = lan.attach(lambda f: None)
        lan.detach(nic)
        with pytest.raises(RuntimeError):
            nic.send(EthernetFrame(nic.mac, "x", None))

    def test_unknown_destination_dropped(self):
        sim, lan = self._lan()
        nic = lan.attach(lambda f: None)
        nic.send(EthernetFrame(nic.mac, "00:00:00:00:00:99", None))
        sim.run(1.0)  # no exception, frame vanishes

    def test_traffic_counters(self):
        sim, lan = self._lan()
        nic_a = lan.attach(lambda f: None)
        nic_b = lan.attach(lambda f: None)
        frame = EthernetFrame(nic_a.mac, nic_b.mac, b"x" * 100)
        nic_a.send(frame)
        sim.run(1.0)
        assert lan.frames_transmitted == 1
        assert lan.bytes_transmitted == frame.byte_size()

    def test_nic_by_mac(self):
        sim, lan = self._lan()
        nic = lan.attach(lambda f: None)
        assert lan.nic_by_mac(nic.mac) is nic
        assert lan.nic_by_mac("nope") is None
