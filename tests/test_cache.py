"""Tests for the content-addressed campaign cache (``repro.cache``).

The cache's contract has three legs:

* **identity** — the logical digest of (fn, kwargs, seed) is pinned, like
  ``derive_seed``: drift silently orphans every existing cache on disk;
* **transparency** — a warm campaign renders byte-identically to the cold
  one for every ``--jobs`` value, with zero live simulations;
* **robustness** — corruption degrades to a miss, a source-tree change
  degrades to stale, and neither ever takes a campaign down.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import (
    CampaignCache,
    canonical,
    code_fingerprint,
    digest,
    load_function,
    qualified_name,
    resolve_cache,
)
from repro.faults.profiles import FaultProfile
from repro.obs.metrics import MetricsRegistry
from repro.parallel import CampaignRunner, Shard


# Shard functions must be module-level so the cache can pickle the call
# for later ``verify`` replay.

def _double(value: int, seed: int) -> tuple[int, int]:
    return value * 2, seed


def _with_faults(faults=None, seed: int = 0) -> str:
    profile = faults.name if faults is not None else "ideal"
    return f"{profile}/{seed}"


class TestGoldenDigests:
    def test_logical_digest_never_drifts(self):
        # These exact values are part of the cache-compatibility contract:
        # changing them orphans every cache on disk.  Do not update them to
        # make the test pass.
        from repro.experiments.table1 import profile_label

        cache = CampaignCache(root="/tmp/unused", fingerprint="f" * 32)
        explicit = cache.key_for(
            Shard(key="table1/M7", fn=profile_label,
                  kwargs={"label": "M7", "trials": 1, "catalogue": None}, seed=7),
            base_seed=0,
        )
        assert explicit.logical == "0b8cef8874cc1ac09518b5e5fcd0a646"
        assert explicit.seed == 7
        derived = cache.key_for(
            Shard(key="table1/HS1", fn=profile_label,
                  kwargs={"label": "HS1", "trials": 3, "catalogue": None}),
            base_seed=7,
        )
        assert derived.logical == "e76424ac21da33d9ccb2b6bed57f3cae"
        assert derived.seed == 2803529311351306933

    def test_digest_parts_are_length_prefixed(self):
        # (b"a",) vs (b"a", b"") vs (b"", b"a") must all differ — plain
        # concatenation would collapse them into one key.
        assert len({digest(b"a"), digest(b"a", b""), digest(b"", b"a")}) == 3

    def test_qualified_name(self):
        assert qualified_name(_double).endswith("test_cache._double")

    def test_load_function_roundtrip(self):
        assert load_function(qualified_name(load_function)) is load_function


class TestCanonical:
    def test_dict_key_order_is_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_scalar_types_do_not_collide(self):
        values = [1, 1.0, "1", True, None]
        assert len({canonical(v) for v in values}) == len(values)

    def test_float_uses_repr(self):
        assert canonical(0.1) != canonical(0.1 + 1e-12)

    def test_dataclass_includes_qualname_and_fields(self):
        a = FaultProfile(name="x", loss=0.1)
        b = FaultProfile(name="x", loss=0.2)
        assert canonical(a) != canonical(b)
        assert canonical(a) == canonical(FaultProfile(name="x", loss=0.1))

    def test_faults_spec_and_profile_share_a_key(self):
        # key_for normalises the ``faults`` kwarg through resolve_profile,
        # so the CLI spec string and the equivalent profile hit one entry.
        cache = CampaignCache(root="/tmp/unused", fingerprint="f" * 32)
        spec = cache.key_for(
            Shard(key="k", fn=_with_faults, kwargs={"faults": "loss=0.05"}, seed=1),
            base_seed=0,
        )
        profile = cache.key_for(
            Shard(key="k", fn=_with_faults,
                  kwargs={"faults": FaultProfile(name="custom", loss=0.05)}, seed=1),
            base_seed=0,
        )
        assert spec.logical == profile.logical


class TestStoreRoundtrip:
    def _cache(self, tmp_path, fingerprint="a" * 32) -> CampaignCache:
        return CampaignCache(root=tmp_path / "cache", fingerprint=fingerprint)

    def _shard(self, value: int = 21) -> Shard:
        return Shard(key=f"double/{value}", fn=_double,
                     kwargs={"value": value}, seed=5)

    def test_put_then_get_hits(self, tmp_path):
        cache = self._cache(tmp_path)
        key = cache.key_for(self._shard(), base_seed=0)
        assert not cache.get(key).hit
        cache.put(key, (42, 5), wall_seconds=0.5)
        lookup = cache.get(key)
        assert lookup.hit and lookup.result == (42, 5)

    def test_fingerprint_change_is_stale_then_overwritten(self, tmp_path):
        old = self._cache(tmp_path, fingerprint="a" * 32)
        key = old.key_for(self._shard(), base_seed=0)
        old.put(key, (42, 5), wall_seconds=0.1)
        new = self._cache(tmp_path, fingerprint="b" * 32)
        new_key = new.key_for(self._shard(), base_seed=0)
        assert new_key.logical == key.logical  # code is not in the logical id
        lookup = new.get(new_key)
        assert lookup.stale and not lookup.hit
        new.put(new_key, (42, 5), wall_seconds=0.1)
        assert new.get(new_key).hit
        assert old.get(key).stale  # the one file now belongs to the new tree

    def test_corrupted_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = self._cache(tmp_path)
        key = cache.key_for(self._shard(), base_seed=0)
        cache.put(key, (42, 5), wall_seconds=0.1)
        path = cache.shard_dir / f"{key.logical}.jsonl"
        for garbage in (b"", b"not json\n", b'{"schema": 99}\n{}\n',
                        b'{"schema": 1, "logical": "wrong"}\n{}\n'):
            path.write_bytes(garbage)
            assert cache.get(key).status == "miss"

    def test_stats_and_gc(self, tmp_path):
        cache = self._cache(tmp_path)
        for value in (1, 2, 3):
            shard = self._shard(value)
            cache.put(cache.key_for(shard, base_seed=0), value * 2, wall_seconds=0.2)
        (cache.shard_dir / "deadbeef.jsonl").write_text("torn\n")
        stats = cache.stats()
        assert (stats["entries"], stats["fresh"], stats["corrupt"]) == (4, 3, 1)
        assert stats["replayable_seconds"] == pytest.approx(0.6)
        removed, kept, failed = cache.gc()
        assert (removed, kept, failed) == (1, 3, 0)
        removed, kept, failed = cache.gc(everything=True)
        assert (removed, kept, failed) == (3, 0, 0)
        assert cache.stats()["entries"] == 0

    def test_gc_counts_unremovable_entries_as_failed_not_kept(self, tmp_path,
                                                              monkeypatch):
        # Regression: an entry whose unlink raised used to be reported as
        # deliberately "kept", hiding permission/IO problems from `cache gc`.
        from pathlib import Path

        cache = self._cache(tmp_path)
        for value in (1, 2):
            shard = self._shard(value)
            cache.put(cache.key_for(shard, base_seed=0), value, wall_seconds=0.1)
        stuck = sorted(cache.shard_dir.glob("*.jsonl"))[0]
        real_unlink = Path.unlink

        def flaky_unlink(self, *args, **kwargs):
            if self == stuck:
                raise OSError("simulated EACCES")
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", flaky_unlink)
        removed, kept, failed = cache.gc(everything=True)
        assert (removed, kept, failed) == (1, 0, 1)

    def test_verify_replays_the_stored_call(self, tmp_path):
        cache = self._cache(tmp_path)
        shard = self._shard(21)
        key = cache.key_for(shard, base_seed=0)
        cache.put(key, (42, 5), wall_seconds=0.1,
                  call=(_double, {"value": 21, "seed": 5}))
        [outcome] = cache.verify(sample=5)
        assert outcome.ok, outcome.detail

    def test_verify_samples_deterministically_across_all_entries(self, tmp_path):
        # Regression: `verify` used to replay the first `sample` entries in
        # directory order, so a large cache's tail was never checked.  The
        # sample must be (a) reproducible for a given seed and (b) actually
        # drawn across the whole population as the seed varies.
        cache = self._cache(tmp_path)
        for value in range(10):
            shard = self._shard(value)
            cache.put(cache.key_for(shard, base_seed=0), (value * 2, 5),
                      wall_seconds=0.1, call=(_double, {"value": value, "seed": 5}))

        def sampled_keys(seed):
            outcomes = cache.verify(sample=2, seed=seed)
            assert len(outcomes) == 2
            assert all(o.ok for o in outcomes)
            return {o.shard_key for o in outcomes}

        assert sampled_keys(0) == sampled_keys(0)  # deterministic per seed
        coverage = set()
        for seed in range(8):
            coverage |= sampled_keys(seed)
        assert len(coverage) > 2  # not pinned to one fixed prefix

    def test_verify_flags_a_drifted_result(self, tmp_path):
        cache = self._cache(tmp_path)
        key = cache.key_for(self._shard(21), base_seed=0)
        # Stored result disagrees with what the call actually computes.
        cache.put(key, (999, 5), wall_seconds=0.1,
                  call=(_double, {"value": 21, "seed": 5}))
        [outcome] = cache.verify(sample=5)
        assert not outcome.ok and "drifted" in outcome.detail

    def test_resolve_cache_shapes(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        built = resolve_cache(True)
        assert isinstance(built, CampaignCache)
        passthrough = self._cache(tmp_path)
        assert resolve_cache(passthrough) is passthrough

    def test_code_fingerprint_is_stable_in_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 32


class TestRunnerIntegration:
    def _run(self, tmp_path, registry, fingerprint="a" * 32, jobs=1):
        cache = CampaignCache(root=tmp_path / "cache", fingerprint=fingerprint)
        runner = CampaignRunner(jobs=jobs, base_seed=3, registry=registry,
                                campaign="cache-test", cache=cache)
        shards = [Shard(key=f"double/{v}", fn=_double, kwargs={"value": v})
                  for v in (1, 2, 3)]
        return runner.run(shards), runner

    def test_cold_then_warm_counts_and_results(self, tmp_path):
        cold_reg = MetricsRegistry()
        cold, _ = self._run(tmp_path, cold_reg)
        assert cold_reg.value("parallel", "cache_misses", campaign="cache-test") == 3
        assert cold_reg.value("parallel", "cache_hits", campaign="cache-test") == 0

        warm_reg = MetricsRegistry()
        warm, runner = self._run(tmp_path, warm_reg)
        assert warm == cold
        assert warm_reg.value("parallel", "cache_hits", campaign="cache-test") == 3
        assert warm_reg.value("parallel", "cache_misses", campaign="cache-test") == 0
        # The headline: a warm campaign runs zero live simulations, yet
        # every shard still counts as completed exactly once.
        assert warm_reg.value("parallel", "shards_run_inprocess",
                              campaign="cache-test") == 0
        assert warm_reg.value("parallel", "shards_completed",
                              campaign="cache-test") == 3
        assert "3 hit(s)" in runner.summary()

    def test_source_change_invalidates_via_fingerprint(self, tmp_path):
        cold, _ = self._run(tmp_path, MetricsRegistry(), fingerprint="a" * 32)
        stale_reg = MetricsRegistry()
        results, _ = self._run(tmp_path, stale_reg, fingerprint="b" * 32)
        assert results == cold
        assert stale_reg.value("parallel", "cache_stale", campaign="cache-test") == 3
        assert stale_reg.value("parallel", "cache_hits", campaign="cache-test") == 0
        # The re-run overwrote the entries for the new tree.
        warm_reg = MetricsRegistry()
        self._run(tmp_path, warm_reg, fingerprint="b" * 32)
        assert warm_reg.value("parallel", "cache_hits", campaign="cache-test") == 3

    def test_corrupt_entry_reruns_that_shard_only(self, tmp_path):
        _, runner = self._run(tmp_path, MetricsRegistry())
        victim = runner.cache.key_for(
            Shard(key="double/2", fn=_double, kwargs={"value": 2}), 3
        )
        (runner.cache.shard_dir / f"{victim.logical}.jsonl").write_text("torn")
        reg = MetricsRegistry()
        results, _ = self._run(tmp_path, reg)
        assert results[1][0] == 4
        assert reg.value("parallel", "cache_hits", campaign="cache-test") == 2
        assert reg.value("parallel", "cache_misses", campaign="cache-test") == 1


class TestWarmColdEquivalence:
    """The acceptance property: warm output is byte-identical to cold for
    any ``--jobs`` value, with zero live simulations on the warm run."""

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(jobs=st.sampled_from([1, 2, 4, 8]))
    def test_table1_warm_equals_cold_for_any_jobs(self, tmp_path, jobs):
        from repro.experiments.table1 import render_table1, run_table1

        cache_root = tmp_path / "cache"  # shared across hypothesis examples
        cache = CampaignCache(root=cache_root)
        cold = render_table1(run_table1(labels=["M7"], trials=1, seed=7,
                                        jobs=1, cache=cache))
        registry = MetricsRegistry()
        runner = CampaignRunner(jobs=jobs, base_seed=7, registry=registry,
                                campaign="table1", cache=cache)
        from repro.experiments.table1 import profile_label

        warm = render_table1(runner.run([
            Shard(key="table1/M7", fn=profile_label,
                  kwargs={"label": "M7", "trials": 1, "catalogue": None}, seed=7)
        ]))
        assert warm == cold
        assert registry.value("parallel", "cache_hits", campaign="table1") == 1
        assert registry.value("parallel", "shards_run_inprocess", campaign="table1") == 0


class TestCacheCli:
    def test_cli_warm_run_is_byte_identical(self, capsys):
        from repro.cli import main

        argv = ["--trials", "1", "--labels", "M7", "table1"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == cold

    def test_cache_stats_verify_gc(self, capsys):
        from repro.cli import main

        assert main(["--trials", "1", "--labels", "M7", "table1"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "fingerprint" in out
        assert main(["cache", "verify", "--sample", "1"]) == 0
        assert "ok" in capsys.readouterr().out
        assert main(["cache", "gc", "--all"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0

    def test_no_cache_flag_disables_lookup(self, capsys):
        from repro.cli import main

        assert main(["--no-cache", "--trials", "1", "--labels", "M7", "table1"]) == 0
        capsys.readouterr()
        # Nothing was written: the run never touched the cache.
        assert CampaignCache().stats()["entries"] == 0

    def test_provenance_line_is_plain_json(self, capsys):
        from repro.cli import main

        assert main(["--trials", "1", "--labels", "M7", "table1"]) == 0
        capsys.readouterr()
        [entry] = sorted(CampaignCache().shard_dir.glob("*.jsonl"))
        with open(entry) as fh:
            provenance = json.loads(fh.readline())
        assert provenance["fn"] == "repro.experiments.table1.profile_label"
        assert provenance["shard_key"] == "table1/M7"
        assert provenance["fingerprint"] == code_fingerprint()
