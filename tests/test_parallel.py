"""Tests for the sharded campaign runner (``repro.parallel``).

The runner's contract is determinism: a campaign sharded across N worker
processes must render byte-identically to the same campaign run serially.
These tests pin the seed-derivation function (values must never drift — a
drift silently changes every derived-seed campaign), exercise the runner's
ordering/progress/fallback behaviour, and prove serial == parallel on a
real Table I subset.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.cache import CampaignCache
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    JOBS_CAP,
    CampaignCancelled,
    CampaignRunner,
    Shard,
    derive_seed,
    fork_available,
    resolve_jobs,
)


class TestDeriveSeed:
    def test_pinned_values_never_drift(self):
        # These exact values are part of the reproducibility contract:
        # any campaign that relies on derived seeds replays byte-identically
        # only while these hold.  Do not update them to make the test pass.
        assert derive_seed(0, "a") == 2962476648899723354
        assert derive_seed(1, "a") == 951889089193931511
        assert derive_seed(0, "b") == 2455393401910235455
        assert derive_seed(7, "table1/HS1") == 2803529311351306933
        assert derive_seed(7, "table1/C2") == 6948489930538022564

    def test_fleet_namespace_pins_never_drift(self):
        # The fleet engine seeds home i from the ``fleet/<home-index>``
        # namespace; these pins guarantee every previously sampled fleet
        # replays byte-identically.  Do not update them to make the test
        # pass — bump the fleet SPEC_SCHEMA instead.
        assert derive_seed(0, "fleet/0") == 5706399973494835688
        assert derive_seed(0, "fleet/1") == 6658469710963336721
        assert derive_seed(0, "fleet/2") == 791601933851559249
        assert derive_seed(0, "fleet/63") == 2626018286476806942
        assert derive_seed(7, "fleet/0") == 3932195172573457893

    def test_stable_across_calls(self):
        assert derive_seed(42, "x/y") == derive_seed(42, "x/y")

    def test_distinct_across_keys_and_bases(self):
        seeds = {derive_seed(base, key)
                 for base in range(4)
                 for key in ("table1/HS1", "table1/HS2", "table3/case1")}
        assert len(seeds) == 12

    def test_range_is_63_bit(self):
        for i in range(200):
            seed = derive_seed(i, f"shard/{i}")
            assert 0 <= seed < 2**63

    def test_key_delimiter_prevents_collisions(self):
        # base=1, key="2x" must differ from base=12, key="x".
        assert derive_seed(1, "2x") != derive_seed(12, "x")


class TestResolveJobs:
    def test_explicit_value_wins(self):
        assert resolve_jobs(3) == 3

    def test_default_is_capped_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == min(os.cpu_count() or 1, JOBS_CAP)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_non_integer_env_gets_actionable_error(self, monkeypatch):
        # A bare int() ValueError ("invalid literal...") never mentioned the
        # variable; the message must say what to fix.
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS.*'many'"):
            resolve_jobs(None)


# Shard functions must be module-level so worker processes can unpickle
# them by qualified name.

def _echo_shard(name: str, seed: int) -> tuple[str, int]:
    return name, seed


def _slow_then_fast(name: str, delay: float, seed: int) -> str:
    time.sleep(delay)
    return name

def _no_seed_shard(value: int) -> int:
    return value * 2


def _failing_shard(seed: int) -> None:
    raise ValueError(f"shard blew up (seed={seed})")


def _unpicklable_result(seed: int):
    # Completes fine in the worker, but the result cannot cross the process
    # boundary — the classic infrastructure failure the replay path heals.
    return lambda: seed


class TestCampaignRunner:
    def test_results_in_shard_order_not_completion_order(self):
        # The first shard sleeps longest; with a pool it completes last,
        # but the merge must still put it first.
        shards = [
            Shard(key=f"s/{i}", fn=_slow_then_fast,
                  kwargs={"name": f"r{i}", "delay": 0.05 * (3 - i)})
            for i in range(4)
        ]
        runner = CampaignRunner(jobs=4, base_seed=0, campaign="order-test")
        assert runner.run(shards) == ["r0", "r1", "r2", "r3"]

    def test_zero_shard_campaign_progress_line(self):
        # Regression: an empty campaign (e.g. a zero-home fleet) must not
        # divide by zero anywhere in the progress/summary path.
        runner = CampaignRunner(jobs=1, base_seed=0, campaign="empty",
                                manifest=False)
        assert runner.run([]) == []
        line = runner.render_progress()
        assert line.startswith("empty: 0/0 shard(s)")
        assert "%" not in line  # no percentage without a denominator
        assert "empty" in runner.summary()

    def test_progress_line_percentage(self):
        runner = CampaignRunner(jobs=1, base_seed=0, campaign="pct",
                                manifest=False)
        shards = [Shard(key=f"s/{i}", fn=_echo_shard, kwargs={"name": f"r{i}"})
                  for i in range(4)]
        runner.run(shards)
        assert "4/4 shard(s) (100%)" in runner.render_progress()

    def test_serial_path_preserves_order(self):
        shards = [Shard(key=f"s/{i}", fn=_echo_shard, kwargs={"name": f"r{i}"})
                  for i in range(3)]
        runner = CampaignRunner(jobs=1, base_seed=9)
        assert [name for name, _ in runner.run(shards)] == ["r0", "r1", "r2"]

    def test_explicit_seed_passed_verbatim(self):
        runner = CampaignRunner(jobs=1, base_seed=0)
        [(_, seed)] = runner.run(
            [Shard(key="k", fn=_echo_shard, kwargs={"name": "n"}, seed=777)]
        )
        assert seed == 777

    def test_derived_seed_used_when_unset(self):
        runner = CampaignRunner(jobs=1, base_seed=7)
        [(_, seed)] = runner.run([Shard(key="table1/HS1", fn=_echo_shard,
                                        kwargs={"name": "n"})])
        assert seed == derive_seed(7, "table1/HS1")

    def test_pass_seed_false_omits_seed(self):
        runner = CampaignRunner(jobs=1)
        assert runner.run(
            [Shard(key="k", fn=_no_seed_shard, kwargs={"value": 21}, pass_seed=False)]
        ) == [42]

    def test_empty_campaign(self):
        assert CampaignRunner(jobs=2).run([]) == []

    def test_progress_counters(self):
        registry = MetricsRegistry()
        runner = CampaignRunner(jobs=1, registry=registry, campaign="metrics-test")
        runner.run([Shard(key=f"s/{i}", fn=_echo_shard, kwargs={"name": "n"})
                    for i in range(3)])
        assert registry.value("parallel", "shards_total", campaign="metrics-test") == 3
        assert registry.value("parallel", "shards_completed", campaign="metrics-test") == 3
        assert registry.value("parallel", "shards_in_flight", campaign="metrics-test") == 0
        assert runner.completed == 3
        assert runner.last_wall_seconds > 0.0
        assert "metrics-test" in runner.summary()

    def test_no_fork_falls_back_inprocess(self, monkeypatch):
        import repro.parallel.runner as runner_mod

        monkeypatch.setattr(runner_mod, "fork_available", lambda: False)
        registry = MetricsRegistry()
        runner = CampaignRunner(jobs=4, registry=registry, campaign="fallback")
        shards = [Shard(key=f"s/{i}", fn=_echo_shard, kwargs={"name": f"r{i}"})
                  for i in range(3)]
        assert [name for name, _ in runner.run(shards)] == ["r0", "r1", "r2"]
        assert registry.value("parallel", "shards_run_inprocess", campaign="fallback") == 3

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_replayed_shard_books_exactly_once(self):
        # Regression: a pool failure that is healed by the in-process replay
        # must count the shard once — as replayed — not once in the pool
        # *and* once in-process, or completed drifts past total.
        registry = MetricsRegistry()
        runner = CampaignRunner(jobs=2, registry=registry, campaign="replay")
        shards = [
            Shard(key="ok", fn=_echo_shard, kwargs={"name": "fine"}),
            Shard(key="bad", fn=_unpicklable_result),
        ]
        results = runner.run(shards)
        assert results[0] == ("fine", derive_seed(0, "ok"))
        assert callable(results[1])  # healed: the replay ran in-process

        def value(name: str) -> float:
            return registry.value("parallel", name, campaign="replay")

        assert value("shards_total") == 2
        assert value("shards_completed") == 2
        assert value("shards_replayed") == 1
        assert value("shard_failures") == 1
        assert value("shards_run_inprocess") == 0
        # The consistency invariant the counters must always satisfy:
        # every completion is exactly one of pool / serial / replay / hit.
        pool_completions = value("shards_completed") - value(
            "shards_run_inprocess") - value("shards_replayed")
        assert pool_completions == 1
        assert value("shards_in_flight") == 0

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_replay_of_unpicklable_result_survives_cache_store(self, tmp_path):
        # Regression: with a cache attached, a pool failure healed by the
        # in-process replay used to die *after* completing — the outcomes
        # loop handed the healed (unpicklable) result to cache.put, and
        # pickle's error killed the run.  The store must degrade to a
        # counted put-failure instead, and the shard must still book once.
        from repro.cache import CampaignCache

        registry = MetricsRegistry()
        runner = CampaignRunner(jobs=2, registry=registry, campaign="putfail",
                                cache=CampaignCache(root=tmp_path),
                                manifest=False)
        shards = [
            Shard(key="ok", fn=_echo_shard, kwargs={"name": "fine"}),
            Shard(key="bad", fn=_unpicklable_result),
        ]
        results = runner.run(shards)
        assert results[0] == ("fine", derive_seed(0, "ok"))
        assert callable(results[1])  # healed in-process, result intact

        def value(name: str) -> float:
            return registry.value("parallel", name, campaign="putfail")

        assert value("shards_total") == 2
        assert value("shards_completed") == 2
        assert value("shards_replayed") == 1
        assert value("shard_failures") == 1
        assert value("cache_put_failures") == 1

        # The unstorable shard must not have poisoned the cache: a warm
        # runner hits the good shard and quietly re-runs the bad one.
        registry2 = MetricsRegistry()
        runner2 = CampaignRunner(jobs=2, registry=registry2,
                                 campaign="putfail",
                                 cache=CampaignCache(root=tmp_path),
                                 manifest=False)
        results2 = runner2.run(shards)
        assert results2[0] == results[0]
        assert callable(results2[1])

        def value2(name: str) -> float:
            return registry2.value("parallel", name, campaign="putfail")

        assert value2("cache_hits") == 1
        assert value2("cache_misses") == 1
        assert value2("shards_completed") == 2
        assert value2("cache_put_failures") == 1

    def test_cache_hit_then_replay_books_once(self, tmp_path):
        # Structural guard: even if one shard index somehow reaches two
        # booking paths in a single run (here: filled from cache, then a
        # stray replay of the same index), completed must not double-count.
        from repro.cache import CampaignCache

        registry = MetricsRegistry()
        shards = [Shard(key="k", fn=_echo_shard, kwargs={"name": "n"})]
        CampaignRunner(jobs=1, campaign="guard",
                       cache=CampaignCache(root=tmp_path),
                       manifest=False).run(shards)
        runner = CampaignRunner(jobs=1, registry=registry, campaign="guard",
                                cache=CampaignCache(root=tmp_path),
                                manifest=False)
        runner.run(shards)

        def value(name: str) -> float:
            return registry.value("parallel", name, campaign="guard")

        assert value("cache_hits") == 1
        assert value("shards_completed") == 1
        runner._replay(shards[0], 0)  # the hypothetical second path
        assert value("shards_completed") == 1
        assert value("shards_replayed") == 0

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_failing_shard_reraises_with_original_error(self):
        runner = CampaignRunner(jobs=2, campaign="failure-test")
        shards = [
            Shard(key="ok", fn=_echo_shard, kwargs={"name": "fine"}),
            Shard(key="bad", fn=_failing_shard),
        ]
        with pytest.raises(ValueError, match="shard blew up"):
            runner.run(shards)


class TestSerialParallelEquivalence:
    """The headline guarantee: ``--jobs N`` never changes a single value."""

    LABELS = ["HS1", "C2", "M7", "HS3"]

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_table1_rows_identical(self):
        from repro.experiments.table1 import render_table1, run_table1

        serial = run_table1(labels=self.LABELS, trials=3, jobs=1)
        parallel = run_table1(labels=self.LABELS, trials=3, jobs=4)
        assert [r.profile.label for r in parallel] == self.LABELS
        assert render_table1(parallel) == render_table1(serial)
        for s_row, p_row in zip(serial, parallel):
            assert s_row.measured_event_window == p_row.measured_event_window
            assert s_row.measured_command_window == p_row.measured_command_window

    def test_ablation_jobs_kwarg_accepted_serially(self):
        # The sweep drivers grew a ``jobs`` parameter; jobs=1 must stay the
        # plain in-process path (no pool spin-up inside unit tests).
        from repro.experiments.ablations import run_forged_ack_ablation

        rows = run_forged_ack_ablation(seed=71, jobs=1)
        assert {row.forge_acks for row in rows} == {True, False}


def _touch_and_echo(path: str, seed: int) -> int:
    from pathlib import Path

    Path(path).touch()
    return seed % 97


def _wait_for_file(path: str, seed: int, timeout: float = 20.0) -> int:
    from pathlib import Path

    deadline = time.monotonic() + timeout
    target = Path(path)
    while not target.exists():
        if time.monotonic() > deadline:
            raise TimeoutError(f"release file {path} never appeared")
        time.sleep(0.02)
    return seed % 97


class TestCancellation:
    """Cooperative cancellation: stop between shards, keep the cache whole."""

    def _shards(self, n=3):
        return [Shard(key=f"c/{i}", fn=_echo_shard, kwargs={"name": f"r{i}"})
                for i in range(n)]

    def test_preset_event_cancels_before_any_shard(self, tmp_path):
        import threading

        stop = threading.Event()
        stop.set()
        cache = CampaignCache(root=tmp_path / "cache", fingerprint="a" * 32)
        runner = CampaignRunner(jobs=1, campaign="cancel-now", cache=cache,
                                manifest=False, cancel=stop)
        with pytest.raises(CampaignCancelled) as err:
            runner.run(self._shards())
        assert (err.value.done, err.value.total) == (0, 3)
        assert cache.stats()["entries"] == 0

    def test_serial_cancel_after_first_shard_keeps_cache_consistent(self, tmp_path):
        # Cancel as soon as the first shard books; the completed shard must
        # be stored (atomic entries only) so a resubmission resumes from it.
        cache = CampaignCache(root=tmp_path / "cache", fingerprint="a" * 32)
        seen = {"done": 0}

        def on_progress(done, total):
            seen["done"] = done

        runner = CampaignRunner(
            jobs=1, base_seed=3, campaign="cancel-mid", cache=cache,
            manifest=False, cancel=lambda: seen["done"] >= 1,
            on_progress=on_progress,
        )
        with pytest.raises(CampaignCancelled) as err:
            runner.run(self._shards())
        assert (err.value.done, err.value.total) == (1, 3)
        assert cache.stats()["entries"] == 1

        registry = MetricsRegistry()
        resumed = CampaignRunner(jobs=1, base_seed=3, campaign="cancel-mid",
                                 cache=cache, manifest=False, registry=registry)
        results = resumed.run(self._shards())
        assert results == [("r0", pytest.approx(results[0][1])),
                           results[1], results[2]]
        assert registry.value("parallel", "cache_hits",
                              campaign="cancel-mid") == 1

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_pool_cancel_revokes_pending_and_stores_completed(self, tmp_path):
        # Pool mode: shard 0 drops a marker; the cancel check fires once the
        # marker exists, releases the in-flight blockers, and the runner
        # must revoke the still-queued shard while caching everything that
        # completed.
        cache = CampaignCache(root=tmp_path / "cache", fingerprint="a" * 32)
        marker = tmp_path / "first-done"
        release = tmp_path / "release"
        ran_last = tmp_path / "ran-last"

        def cancel() -> bool:
            if marker.exists():
                release.touch()
                return True
            return False

        shards = [
            Shard(key="p/0", fn=_touch_and_echo, kwargs={"path": str(marker)}),
            Shard(key="p/1", fn=_wait_for_file, kwargs={"path": str(release)}),
            Shard(key="p/2", fn=_wait_for_file, kwargs={"path": str(release)}),
        ] + [
            Shard(key=f"p/{i}", fn=_touch_and_echo,
                  kwargs={"path": str(ran_last)})
            for i in range(3, 10)
        ]
        runner = CampaignRunner(jobs=2, base_seed=0, campaign="cancel-pool",
                                cache=cache, manifest=False, cancel=cancel)
        with pytest.raises(CampaignCancelled) as err:
            runner.run(shards)
        # Shard 0 always completes.  The executor may have prefetched a few
        # of the tail shards into its call queue (those are uncancellable),
        # but the backlog beyond the prefetch window must have been revoked
        # — and every shard that did complete must be cached.
        assert 1 <= err.value.done < len(shards)
        assert cache.stats()["entries"] == err.value.done
        warm = CampaignRunner(jobs=1, base_seed=0, campaign="cancel-pool",
                              cache=cache, manifest=False)
        release.touch()
        assert len(warm.run(shards)) == len(shards)

    def test_on_progress_reports_each_booked_shard(self):
        calls = []
        runner = CampaignRunner(jobs=1, campaign="progress-hook",
                                manifest=False,
                                on_progress=lambda d, t: calls.append((d, t)))
        runner.run(self._shards())
        assert calls == [(1, 3), (2, 3), (3, 3)]


class TestSharedWorkerPool:
    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_two_runners_share_one_executor(self):
        from repro.parallel import SharedWorkerPool

        pool = SharedWorkerPool(jobs=2)
        try:
            pool.prewarm()
            executor = pool.executor()
            assert pool.executor() is executor  # reused, not rebuilt
            shards = [
                Shard(key=f"s/{i}", fn=_echo_shard, kwargs={"name": f"r{i}"})
                for i in range(3)
            ]
            first = CampaignRunner(jobs=2, campaign="pool-a", manifest=False,
                                   pool=pool)
            second = CampaignRunner(jobs=2, campaign="pool-b", manifest=False,
                                    pool=pool)
            assert first.run(shards) == second.run(shards)
            assert pool.executor() is executor  # survived both campaigns
        finally:
            pool.shutdown()


class TestProgressTick:
    def test_tick_renders_exactly_once(self):
        # Regression: the tick used to call render_progress() twice (once to
        # write, once to measure), doubling the work per repaint and letting
        # a counter bumped between the calls mis-pad the line.
        import io

        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        runner = CampaignRunner(jobs=1, campaign="tick-test", manifest=False)
        runner._progress_stream = lambda: stream
        renders = {"count": 0}
        real_render = runner.render_progress

        def counting_render():
            renders["count"] += 1
            return real_render()

        runner.render_progress = counting_render
        runner._progress_tick(force=True)
        assert renders["count"] == 1
        assert stream.getvalue().startswith("\r")
