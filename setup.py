"""Thin shim so `pip install -e .` works offline (no wheel package available).

All real metadata lives in pyproject.toml; this exists only to enable the
legacy `setup.py develop` editable path in environments without network
access to fetch build dependencies.
"""

from setuptools import setup

setup()
