"""Per-kind device behaviour: attributes, stimuli, and command effects.

A device kind defines one primary attribute (``contact``, ``motion``,
``lock`` ...), which physical stimuli may set it (sensor side) and which
commands may set it (actuator side).  Actuators report their state change
back as an event after executing a command — the behaviour the paper's
action-disordering attack (Section V-B) depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class KindBehavior:
    """What one device kind can sense and do."""

    attribute: str
    initial: str
    #: Attribute values that physical stimulation may produce.
    sensor_values: tuple[str, ...] = ()
    #: Command name -> resulting attribute value (None = no state change,
    #: e.g. a speaker announcement).
    commands: dict[str, str | None] = field(default_factory=dict)

    def event_name(self, value: str) -> str:
        """Canonical event name for an attribute change."""
        return f"{self.attribute}.{value}"


KIND_BEHAVIORS: dict[str, KindBehavior] = {
    "contact": KindBehavior("contact", "closed", ("open", "closed")),
    "motion": KindBehavior("motion", "inactive", ("active", "inactive")),
    "presence": KindBehavior("presence", "present", ("present", "away")),
    "occupancy": KindBehavior("occupancy", "vacant", ("occupied", "vacant")),
    "button": KindBehavior("button", "idle", ("pushed", "held")),
    "keypad": KindBehavior("keypad", "idle", ("code-entered", "panic")),
    "water-leak": KindBehavior("water", "dry", ("wet", "dry")),
    "smoke": KindBehavior("smoke", "clear", ("detected", "clear")),
    "camera": KindBehavior("motion", "inactive", ("active", "inactive")),
    "light": KindBehavior(
        "switch", "off", ("on", "off"), {"on": "on", "off": "off"}
    ),
    "plug": KindBehavior(
        "switch", "off", ("on", "off"), {"on": "on", "off": "off"}
    ),
    "speaker": KindBehavior("speaker", "idle", (), {"announce": None}),
    "lock": KindBehavior(
        "lock", "locked", ("locked", "unlocked"), {"lock": "locked", "unlock": "unlocked"}
    ),
    "valve": KindBehavior(
        "valve", "open", (), {"open": "open", "close": "closed"}
    ),
    "garage": KindBehavior(
        "door", "closed", ("open", "closed"), {"open": "open", "close": "closed"}
    ),
    "thermostat": KindBehavior(
        "mode", "off", (), {"heat": "heat", "cool": "cool", "off": "off"}
    ),
    "siren": KindBehavior("alarm", "off", (), {"on": "on", "off": "off"}),
    "security-base": KindBehavior(
        "security", "disarmed",
        ("triggered", "armed-away", "armed-home", "disarmed"),
        {"arm-away": "armed-away", "arm-home": "armed-home", "disarm": "disarmed"},
    ),
    "hub": KindBehavior("status", "online"),
}


def behavior_for(kind: str) -> KindBehavior:
    try:
        return KIND_BEHAVIORS[kind]
    except KeyError:
        raise ValueError(f"no behaviour defined for device kind {kind!r}") from None
