"""The 50-device catalogue (paper Tables I and II).

Each :class:`DeviceProfile` captures one tested device's *timeout behaviour*
in the paper's three parameters (Section IV-B):

* keep-alive **period** and **pattern** (fixed vs on-idle),
* keep-alive **timeout threshold** (``ka_grace``) — the observed time a
  keep-alive can be delayed before the session dies.  Empirically this is
  symmetric: the server tolerates ``period + grace`` of silence (MQTT's
  1.5x rule makes grace = period/2, e.g. SmartThings' 16 s for a 31 s
  period) and the device waits ``grace`` for its keep-alive reply;
* **timeout threshold of normal messages** (``event_ack_timeout`` /
  ``command_response_timeout``), either of which may be None — the '∞'
  cells of Table I and all HAP events of Table II.

The paper's table bodies are partially garbled in our source text, so the
catalogue is *reconstructed*: every value stated in the paper's prose is
used verbatim (SmartThings 31 s/16 s/∞; Hue 120 s fixed, command 21 s, event
window [60 s, 180 s]; Ring 48 B keep-alive, 986 B contact event, >=60 s
e-Delay; SimpliSafe keypad the only device under 30 s; on-demand WiFi
sensors M7/C5 over 2 minutes; HomeKit events unbounded), and the remaining
cells are filled with values consistent with the paper's aggregate claims
(all events delayable >30 s except HS3; commands multiple-seconds to
sub-minute).  EXPERIMENTS.md records paper-stated vs measured per anchor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..appproto.base import ProtocolConfig
from ..appproto.keepalive import FIXED, KeepAlivePolicy, ON_IDLE

INF = math.inf

# Device classes used by scenarios and the automation engine.
SENSOR = "sensor"
ACTUATOR = "actuator"
HUB = "hub"
CAMERA = "camera"
SECURITY = "security"

TABLE_CLOUD = 1
TABLE_LOCAL = 2


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of one tested device model."""

    label: str
    model: str
    kind: str  # e.g. "contact", "motion", "light", "lock", ...
    device_class: str  # SENSOR / ACTUATOR / HUB / CAMERA / SECURITY
    table: int  # TABLE_CLOUD or TABLE_LOCAL
    server: str  # endpoint server key ("smartthings", "ring", ..., "homekit")
    connection: str  # "wifi" or "hub:<LABEL>" for Zigbee/Z-Wave children
    codec_name: str = "mqtt"
    long_live: bool = True
    ka_period: float | None = 30.0
    ka_strategy: str = ON_IDLE
    ka_grace: float | None = 15.0
    event_ack_timeout: float | None = None
    event_acked: bool = True
    command_response_timeout: float | None = None
    supports_commands: bool = False
    event_size: int = 300
    command_size: int = 300
    ack_size: int = 80
    keepalive_size: int = 48
    app_downloads: str = "1M+"
    notes: str = ""
    paper_anchor: str = ""  # prose-stated values this profile reproduces

    # ------------------------------------------------------------ validity

    def __post_init__(self) -> None:
        if self.table not in (TABLE_CLOUD, TABLE_LOCAL):
            raise ValueError(f"{self.label}: bad table {self.table}")
        if self.connection != "wifi" and not self.connection.startswith("hub:"):
            raise ValueError(f"{self.label}: bad connection {self.connection!r}")
        if self.long_live and self.connection == "wifi" and self.ka_period is None:
            # Long-live WiFi sessions without keep-alive exist only on HAP.
            if self.table == TABLE_CLOUD:
                raise ValueError(f"{self.label}: cloud long-live session needs keep-alive")

    # --------------------------------------------------------- derivations

    @property
    def is_hub_child(self) -> bool:
        return self.connection.startswith("hub:")

    @property
    def hub_label(self) -> str | None:
        return self.connection.split(":", 1)[1] if self.is_hub_child else None

    @property
    def on_demand(self) -> bool:
        return not self.long_live

    def protocol_config(self) -> ProtocolConfig:
        """Materialise the runtime protocol configuration for this profile."""
        keepalive = None
        if self.long_live and self.ka_period is not None:
            keepalive = KeepAlivePolicy(period=self.ka_period, strategy=self.ka_strategy)
        return ProtocolConfig(
            codec_name=self.codec_name,
            long_live=self.long_live,
            keepalive=keepalive,
            ka_response_timeout=self.ka_grace if keepalive is not None else None,
            event_ack_timeout=self.event_ack_timeout,
            event_acked=self.event_acked,
            command_response_timeout=self.command_response_timeout,
            server_liveness_grace=self.ka_grace if keepalive is not None else None,
            event_size=self.event_size,
            command_size=self.command_size,
            ack_size=self.ack_size,
            keepalive_size=self.keepalive_size,
        )

    def event_delay_window(self) -> tuple[float, float]:
        """Ground-truth achievable e-Delay window ``(min, max)`` in seconds.

        ``min`` is what an attacker gets at the worst message phase, ``max``
        at the best (event triggered right after a keep-alive exchange).
        Derivation: with the event held, every later device-to-server
        message is held too (TLS ordering), so the session dies when the
        server's silence tolerance ``period + grace`` runs out, measured
        from the last *delivered* message — giving ``grace`` to
        ``period + grace`` depending on phase.  A device-side event-ack
        timeout caps both ends; no keep-alive and no ack timeout means
        unbounded delay.
        """
        caps: list[float] = []
        if self.event_ack_timeout is not None:
            caps.append(self.event_ack_timeout)
        if not self.long_live:
            bound = min(caps) if caps else INF
            return (bound, bound)
        if self.ka_period is None or self.ka_grace is None:
            bound = min(caps) if caps else INF
            return (bound, bound)
        lo = self.ka_grace
        hi = self.ka_period + self.ka_grace
        if caps:
            cap = min(caps)
            return (min(lo, cap), min(hi, cap))
        return (lo, hi)

    def command_delay_window(self) -> tuple[float, float] | None:
        """Ground-truth achievable c-Delay window, or None for no commands.

        Holding the server-to-device direction also holds keep-alive
        *replies*, so the device's ``grace`` wait bounds the delay the same
        way; the server's own command-response timeout caps it further
        (Hue's constant 21 s).
        """
        if not self.supports_commands:
            return None
        caps: list[float] = []
        if self.command_response_timeout is not None:
            caps.append(self.command_response_timeout)
        if self.ka_period is None or self.ka_grace is None:
            bound = min(caps) if caps else INF
            return (bound, bound)
        lo = self.ka_grace
        hi = self.ka_period + self.ka_grace
        if caps:
            cap = min(caps)
            return (min(lo, cap), min(hi, cap))
        return (lo, hi)


# --------------------------------------------------------------------------
# Catalogue construction helpers.


def _cloud(label: str, model: str, kind: str, device_class: str, server: str, **kw) -> DeviceProfile:
    return DeviceProfile(
        label=label,
        model=model,
        kind=kind,
        device_class=device_class,
        table=TABLE_CLOUD,
        server=server,
        connection="wifi",
        **kw,
    )


def _child(label: str, model: str, kind: str, device_class: str, hub: "DeviceProfile", **kw) -> DeviceProfile:
    """A Zigbee/Z-Wave child: rides its hub's session and timeout behaviour."""
    return DeviceProfile(
        label=label,
        model=model,
        kind=kind,
        device_class=device_class,
        table=TABLE_CLOUD,
        server=hub.server,
        connection=f"hub:{hub.label}",
        codec_name=hub.codec_name,
        long_live=hub.long_live,
        ka_period=hub.ka_period,
        ka_strategy=hub.ka_strategy,
        ka_grace=hub.ka_grace,
        event_ack_timeout=hub.event_ack_timeout,
        event_acked=hub.event_acked,
        command_response_timeout=hub.command_response_timeout,
        keepalive_size=hub.keepalive_size,
        app_downloads=hub.app_downloads,
        **kw,
    )


def _homekit(label: str, model: str, kind: str, device_class: str, **kw) -> DeviceProfile:
    """A HomeKit-paired device: HAP events are never acknowledged (Table II)."""
    kw.setdefault("supports_commands", device_class == ACTUATOR)
    kw.setdefault("command_response_timeout", 10.0 if kw["supports_commands"] else None)
    return DeviceProfile(
        label=label,
        model=model,
        kind=kind,
        device_class=device_class,
        table=TABLE_LOCAL,
        server="homekit",
        connection="wifi",
        codec_name="hap",
        long_live=True,
        ka_period=None,
        ka_strategy=ON_IDLE,
        ka_grace=None,
        event_ack_timeout=None,
        event_acked=False,
        paper_anchor="Table II: HAP event messages unacknowledged, delay unbounded",
        **kw,
    )


def _build_catalogue() -> list[DeviceProfile]:
    profiles: list[DeviceProfile] = []

    # ---------------------------------------------------------------- hubs
    h1 = _cloud(
        "H1", "SmartThings Hub v3", "hub", HUB, "smartthings",
        codec_name="mqtt", ka_period=31.0, ka_strategy=ON_IDLE, ka_grace=16.0,
        supports_commands=True, event_size=300, command_size=300,
        keepalive_size=40, ack_size=42, app_downloads="5M+",
        paper_anchor=(
            "Section VI-C1: 40 B up / 42 B down keep-alives every 31 s; 16 s "
            "timeout; event and command timeouts solely via keep-alives (∞)"
        ),
    )
    h2 = _cloud(
        "H2", "Philips Hue Bridge", "hub", HUB, "hue",
        codec_name="http", ka_period=120.0, ka_strategy=FIXED, ka_grace=60.0,
        supports_commands=True, command_response_timeout=21.0,
        event_size=300, command_size=320, keepalive_size=64, app_downloads="10M+",
        paper_anchor=(
            "Section VI-C1: fixed 120 s keep-alive; command delays time out at "
            "a constant 21 s; event window [60 s, 180 s]"
        ),
    )
    h3 = _cloud(
        "H3", "August Connect Bridge", "hub", HUB, "august",
        codec_name="http", ka_period=60.0, ka_strategy=ON_IDLE, ka_grace=30.0,
        supports_commands=True, command_response_timeout=28.0,
        event_size=510, command_size=490, keepalive_size=56, app_downloads="1M+",
        paper_anchor=(
            "Section VI-D2: August lock commands delayable 30-58 s; combined "
            "with e-Delay the window exceeds 60 s"
        ),
    )
    h4 = _cloud(
        "H4", "Aqara Hub M2", "hub", HUB, "aqara",
        codec_name="mqtt", ka_period=45.0, ka_strategy=ON_IDLE, ka_grace=22.0,
        supports_commands=True, event_size=420, command_size=400,
        keepalive_size=52, app_downloads="1M+",
    )
    h5 = _cloud(
        "H5", "SmartLife Zigbee Gateway", "hub", HUB, "tuya",
        codec_name="mqtt", ka_period=30.0, ka_strategy=ON_IDLE, ka_grace=15.0,
        supports_commands=True, event_size=360, command_size=340,
        keepalive_size=44, app_downloads="10M+",
    )
    profiles += [h1, h2, h3, h4, h5]

    # ------------------------------------------------------ security bases
    hs1 = _cloud(
        "HS1", "Ring Alarm Base Station", "security-base", SECURITY, "ring",
        codec_name="http", ka_period=30.0, ka_strategy=ON_IDLE, ka_grace=30.0,
        supports_commands=True, command_response_timeout=25.0,
        event_size=520, command_size=480, keepalive_size=48, app_downloads="10M+",
        paper_anchor=(
            "Section VI-D1: keep-alive 48 B, contact event 986 B, events "
            "delayable up to 60 s; cellular backup never triggers"
        ),
    )
    hs2 = _cloud(
        "HS2", "SimpliSafe Base Station", "security-base", SECURITY, "simplisafe",
        codec_name="http", ka_period=30.0, ka_strategy=ON_IDLE, ka_grace=20.0,
        supports_commands=True, command_response_timeout=22.0,
        event_size=460, command_size=440, keepalive_size=50, app_downloads="1M+",
    )
    hs3 = _cloud(
        "HS3", "SimpliSafe Keypad", "keypad", SENSOR, "simplisafe",
        codec_name="http", ka_period=25.0, ka_strategy=ON_IDLE, ka_grace=15.0,
        event_ack_timeout=20.0, event_size=380, keepalive_size=50,
        app_downloads="1M+",
        paper_anchor=(
            "Section VI-C1: the only tested device whose events cannot be "
            "delayed beyond 30 s (explicit event-ack timeout)"
        ),
    )
    hs4 = _cloud(
        "HS4", "Abode Iota Gateway", "security-base", SECURITY, "abode",
        codec_name="mqtt", ka_period=60.0, ka_strategy=ON_IDLE, ka_grace=30.0,
        supports_commands=True, event_size=440, command_size=420,
        keepalive_size=46, app_downloads="500K+",
    )
    profiles += [hs1, hs2, hs3, hs4]

    # ------------------------------------------------- hub-attached children
    profiles += [
        _child("C1", "Ring Contact Sensor", "contact", SENSOR, hs1,
               event_size=986,
               paper_anchor="Section VI-D1: contact sensor event messages are 986 B"),
        _child("M1", "Ring Motion Detector", "motion", SENSOR, hs1, event_size=933),
        _child("K1", "Ring Alarm Keypad", "keypad", SENSOR, hs1, event_size=412),
        _child("C2", "SmartThings Multipurpose Sensor", "contact", SENSOR, h1, event_size=355),
        _child("M2", "SmartThings Motion Sensor", "motion", SENSOR, h1, event_size=362),
        _child("P1", "SmartThings Smart Outlet", "plug", ACTUATOR, h1,
               supports_commands=True, event_size=340, command_size=336),
        _child("PR1", "SmartThings Arrival Sensor", "presence", SENSOR, h1, event_size=348),
        _child("S1", "SmartThings Button", "button", SENSOR, h1, event_size=350),
        _child("WL1", "SmartThings Water Leak Sensor", "water-leak", SENSOR, h1, event_size=344),
        _child("L2", "Philips Hue White A19", "light", ACTUATOR, h2,
               supports_commands=True, event_size=420, command_size=423,
               paper_anchor="Section VI-C1: Hue event window [60 s, 180 s], command 21 s"),
        _child("S2", "Philips Hue Dimmer Switch", "button", SENSOR, h2, event_size=275),
        _child("M3", "Philips Hue Motion Sensor", "motion", SENSOR, h2, event_size=290),
        _child("LK1", "August Smart Lock Pro", "lock", ACTUATOR, h3,
               supports_commands=True, event_size=510, command_size=505,
               paper_anchor="Section VI-D2/D3: lock command delayable 30-58 s"),
        _child("C3", "Aqara Door/Window Sensor", "contact", SENSOR, h4, event_size=1345),
        _child("M4", "Aqara Motion Sensor", "motion", SENSOR, h4, event_size=1310),
        _child("S4", "Aqara Wireless Button", "button", SENSOR, h4, event_size=1453),
    ]

    # ------------------------------------------------------ WiFi end devices
    profiles += [
        _cloud("P2", "TP-Link Kasa HS103 Plug", "plug", ACTUATOR, "kasa",
               codec_name="http", ka_period=35.0, ka_strategy=ON_IDLE, ka_grace=18.0,
               supports_commands=True, command_response_timeout=10.0,
               event_size=364, command_size=350, keepalive_size=58,
               app_downloads="10M+"),
        _cloud("L3", "LIFX Mini White A19", "light", ACTUATOR, "lifx",
               codec_name="http", ka_period=2.0, ka_strategy=FIXED, ka_grace=45.0,
               supports_commands=True, command_response_timeout=8.0,
               event_size=412, command_size=402, keepalive_size=120,
               app_downloads="1M+",
               notes=(
                   "Section VII-A: sub-2 s keep-alive interval; the traffic-"
                   "overhead countermeasure cost is modelled from this device"
               )),
        _cloud("P3", "Wemo Mini Smart Plug", "plug", ACTUATOR, "wemo",
               codec_name="http", ka_period=30.0, ka_strategy=ON_IDLE, ka_grace=25.0,
               supports_commands=True, command_response_timeout=12.0,
               event_size=388, command_size=370, keepalive_size=62,
               app_downloads="5M+"),
        _cloud("P4", "Amazon Smart Plug", "plug", ACTUATOR, "amazon",
               codec_name="mqtt", ka_period=45.0, ka_strategy=ON_IDLE, ka_grace=22.0,
               supports_commands=True, command_response_timeout=18.0,
               event_size=352, command_size=344, keepalive_size=44,
               app_downloads="10M+"),
        _cloud("SPK1", "Amazon Echo Dot", "speaker", ACTUATOR, "amazon",
               codec_name="mqtt", ka_period=30.0, ka_strategy=ON_IDLE, ka_grace=15.0,
               supports_commands=True, command_response_timeout=20.0,
               event_size=600, command_size=580, keepalive_size=44,
               app_downloads="50M+"),
        _cloud("CM1", "Wyze Cam v3", "camera", CAMERA, "wyze",
               codec_name="mqtt", ka_period=20.0, ka_strategy=ON_IDLE, ka_grace=20.0,
               supports_commands=True, command_response_timeout=15.0,
               event_size=1200, command_size=420, keepalive_size=60,
               app_downloads="5M+"),
        _cloud("M7", "Tuya WiFi Motion Sensor", "motion", SENSOR, "tuya",
               codec_name="http", long_live=False, ka_period=None, ka_grace=None,
               event_ack_timeout=150.0, event_size=620, keepalive_size=0,
               app_downloads="10M+",
               paper_anchor=(
                   "Section VI-C1: on-demand sessions, delay window over 2 "
                   "minutes, anomaly never reported to the cloud"
               )),
        _cloud("C5", "SmartLife WiFi Contact Sensor", "contact", SENSOR, "tuya",
               codec_name="http", long_live=False, ka_period=None, ka_grace=None,
               event_ack_timeout=180.0, event_size=590, keepalive_size=0,
               app_downloads="10M+",
               paper_anchor=(
                   "Section VI-C1: on-demand sessions, delay window over 2 "
                   "minutes, anomaly never reported to the cloud"
               )),
        _cloud("T1", "Ecobee3 Lite Thermostat", "thermostat", ACTUATOR, "ecobee",
               codec_name="http", ka_period=60.0, ka_strategy=ON_IDLE, ka_grace=30.0,
               supports_commands=True, command_response_timeout=25.0,
               event_size=680, command_size=520, keepalive_size=66,
               app_downloads="1M+"),
        _cloud("SM1", "First Alert Onelink Smoke Detector", "smoke", SENSOR, "onelink",
               codec_name="mqtt", ka_period=60.0, ka_strategy=ON_IDLE, ka_grace=30.0,
               event_size=540, keepalive_size=48, app_downloads="500K+",
               notes="Type-I scenario device: 'smoke detected' alert delay"),
        _cloud("V1", "Flo by Moen Smart Water Valve", "valve", ACTUATOR, "moen",
               codec_name="mqtt", ka_period=30.0, ka_strategy=ON_IDLE, ka_grace=18.0,
               supports_commands=True, command_response_timeout=15.0,
               event_size=430, command_size=415, keepalive_size=46,
               app_downloads="500K+",
               notes="Type-II scenario device: water-leak shut-off delay"),
    ]

    # --------------------------------------------- Table II: HomeKit locals
    profiles += [
        _homekit("CM1", "Arlo Q Camera", "camera", CAMERA, event_size=200,
                 app_downloads="5M+"),
        _homekit("S5", "Insignia Garage Controller", "garage", ACTUATOR,
                 event_size=1345, command_size=1300, app_downloads="500K+"),
        _homekit("S4", "Aqara Wireless Button", "button", SENSOR, event_size=1453,
                 app_downloads="1M+"),
        _homekit("S2", "Philips Hue Dimmer Switch", "button", SENSOR, event_size=275,
                 app_downloads="10M+"),
        _homekit("C7", "Aqara Door/Window Sensor", "contact", SENSOR, event_size=1345,
                 app_downloads="1M+"),
        _homekit("L2", "Philips Hue White A19", "light", ACTUATOR, event_size=420,
                 command_size=423, app_downloads="10M+"),
        _homekit("L3", "LIFX Mini White A19", "light", ACTUATOR, event_size=412,
                 command_size=402, app_downloads="1M+"),
        _homekit("P8", "iHome iSP6X Smart Plug", "plug", ACTUATOR, event_size=341,
                 command_size=336, app_downloads="1M+"),
        _homekit("M6", "Ecobee SmartSensor", "motion", SENSOR, event_size=679,
                 app_downloads="1M+"),
        _homekit("M9", "Aqara Motion Sensor", "motion", SENSOR, event_size=1310,
                 app_downloads="1M+"),
        _homekit("L1", "Insignia Smart Bulb", "light", ACTUATOR, event_size=229,
                 command_size=240, app_downloads="500K+"),
        _homekit("M2", "Philips Hue Motion Sensor", "motion", SENSOR, event_size=290,
                 app_downloads="10M+"),
        _homekit("M8", "Ecobee Room Sensor", "occupancy", SENSOR, event_size=683,
                 app_downloads="1M+"),
        _homekit("T2", "Ecobee3 Lite (HomeKit)", "thermostat", ACTUATOR,
                 event_size=520, command_size=500, app_downloads="1M+"),
    ]
    return profiles


class Catalogue:
    """Indexed access to the 50 profiles, keyed by (label, table)."""

    def __init__(self, profiles: list[DeviceProfile] | None = None) -> None:
        self.profiles = profiles if profiles is not None else _build_catalogue()
        self._by_key: dict[tuple[str, int], DeviceProfile] = {}
        for profile in self.profiles:
            key = (profile.label, profile.table)
            if key in self._by_key:
                raise ValueError(f"duplicate profile key: {key}")
            self._by_key[key] = profile

    def get(self, label: str, table: int = TABLE_CLOUD) -> DeviceProfile:
        try:
            return self._by_key[(label, table)]
        except KeyError:
            raise LookupError(f"no profile {label!r} in table {table}") from None

    def cloud_profiles(self) -> list[DeviceProfile]:
        return [p for p in self.profiles if p.table == TABLE_CLOUD]

    def local_profiles(self) -> list[DeviceProfile]:
        return [p for p in self.profiles if p.table == TABLE_LOCAL]

    def hubs(self) -> list[DeviceProfile]:
        return [p for p in self.profiles if p.device_class == HUB or p.kind == "security-base"]

    def children_of(self, hub_label: str) -> list[DeviceProfile]:
        return [p for p in self.profiles if p.hub_label == hub_label]

    def servers(self) -> list[str]:
        return sorted({p.server for p in self.profiles})

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self):
        return iter(self.profiles)


#: The default catalogue instance used throughout the reproduction.
CATALOGUE = Catalogue()
