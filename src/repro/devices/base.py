"""Runtime IoT devices: WiFi devices, hubs, and their Zigbee/Z-Wave children.

A :class:`WifiDevice` owns a LAN host, a TCP stack, and a
:class:`~repro.appproto.base.DeviceProtocolClient` configured from its
profile.  A :class:`HubChildDevice` has no network presence of its own — its
events and commands ride the hub's single TLS session, which is why delaying
*one* hub connection delays every child (the paper's Philips Hue example in
Section III-B).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, TYPE_CHECKING

from ..alarms import AlarmLog
from ..appproto.base import DeviceProtocolClient
from ..appproto.messages import IoTMessage
from ..simnet.host import Host
from ..simnet.link import Lan
from ..tcp.stack import TcpStack
from ..tls.session import KeyEscrow
from .behaviors import KindBehavior, behavior_for
from .profiles import DeviceProfile

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

#: One-hop Zigbee/Z-Wave latency between a hub and its child device.
ZIGBEE_LATENCY = 0.010

_instance_ids = itertools.count(1)


class IoTDevice:
    """Common state machine shared by all device runtimes."""

    def __init__(self, sim: "Simulator", profile: DeviceProfile, device_id: str | None = None) -> None:
        self.sim = sim
        self.profile = profile
        self.device_id = device_id or f"{profile.label.lower()}-{next(_instance_ids)}"
        self.behavior: KindBehavior = behavior_for(profile.kind)
        self.state: dict[str, str] = {self.behavior.attribute: self.behavior.initial}
        self.state_history: list[tuple[float, str, str]] = []
        self.actions_executed: list[tuple[float, str, dict[str, Any]]] = []
        self.on_state_change: list[Callable[["IoTDevice", str, str], None]] = []

    # ------------------------------------------------------- physical world

    def stimulate(self, value: str, data: dict[str, Any] | None = None) -> None:
        """A physical stimulus changes the device state and raises an event.

        This is the `I(E)` instant of the paper's Section V-C formalism: the
        moment the event is *generated* in the physical world.
        """
        if value not in self.behavior.sensor_values:
            raise ValueError(
                f"{self.device_id} ({self.profile.kind}) cannot sense {value!r}; "
                f"valid: {self.behavior.sensor_values}"
            )
        self._set_state(self.behavior.attribute, value)
        payload = {"value": value}
        payload.update(data or {})
        event_name = self.behavior.event_name(value)
        self._record_emission(event_name)
        obs = self.sim.obs
        if obs.enabled:
            # Root of the causal trace: the I(E) instant.  Downstream layers
            # (appproto/TLS/TCP, and the server side via msg_id binding)
            # nest under it.
            with obs.tracer.span(
                "device",
                f"stimulus:{event_name}",
                device_id=self.device_id,
                kind=self.profile.kind,
            ):
                self._emit_event(event_name, payload)
        else:
            self._emit_event(event_name, payload)

    @property
    def attribute_value(self) -> str:
        return self.state[self.behavior.attribute]

    def _set_state(self, attribute: str, value: str) -> None:
        self.state[attribute] = value
        self.state_history.append((self.sim.now, attribute, value))
        for hook in list(self.on_state_change):
            hook(self, attribute, value)

    # ------------------------------------------------------------- commands

    def execute_command(self, message: IoTMessage) -> None:
        """Apply a command received from the IoT server."""
        name = message.name
        if name not in self.behavior.commands:
            return  # unknown command: real devices ignore these
        self.actions_executed.append((self.sim.now, name, dict(message.data)))
        new_value = self.behavior.commands[name]
        if new_value is not None and new_value != self.state.get(self.behavior.attribute):
            self._set_state(self.behavior.attribute, new_value)
            # Actuators report the resulting state change back as an event.
            name = self.behavior.event_name(new_value)
            self._record_emission(name)
            self._emit_event(name, {"value": new_value, "cause": "command"})

    # ----------------------------------------------------- uplink (abstract)

    def _record_emission(self, event_name: str) -> None:
        """Ground-truth ledger for the rule-provenance invariant."""
        inv = self.sim.invariants
        if inv is not None:
            inv.on_event_emitted(self.device_id, event_name)

    def _emit_event(self, name: str, data: dict[str, Any]) -> None:
        raise NotImplementedError


class WifiDevice(IoTDevice):
    """A device with its own WiFi NIC, TCP stack, and protocol client."""

    def __init__(
        self,
        sim: "Simulator",
        lan: Lan,
        ip: str,
        profile: DeviceProfile,
        server_ip: str,
        server_port: int,
        alarm_log: AlarmLog,
        escrow: KeyEscrow,
        gateway_ip: str = "192.168.1.1",
        device_id: str | None = None,
    ) -> None:
        super().__init__(sim, profile, device_id)
        self.host = Host(sim, lan, ip=ip, hostname=self.device_id, gateway_ip=gateway_ip)
        self.stack = TcpStack(self.host)
        self.client = DeviceProtocolClient(
            stack=self.stack,
            device_id=self.device_id,
            server_ip=server_ip,
            server_port=server_port,
            config=profile.protocol_config(),
            alarm_log=alarm_log,
            escrow=escrow,
            on_command=self.execute_command,
        )

    @property
    def ip(self) -> str:
        return self.host.ip

    def start(self) -> None:
        self.client.start()

    def stop(self) -> None:
        self.client.stop()

    def _emit_event(self, name: str, data: dict[str, Any]) -> None:
        self.client.send_event(name, data, wire_size=self.profile.event_size)


class CameraDevice(WifiDevice):
    """A WiFi camera: event traffic plus an optional live stream.

    Streaming matters to the attacker in two ways: the periodic frames are
    cover traffic that complicates fingerprinting, and holding a camera's
    *event* must key on the event's length so the stream flows untouched
    (stalling the stream would be visible to a viewer immediately).
    """

    #: Default stream cadence and frame size (a modest sub-stream).
    STREAM_PERIOD = 1.0
    STREAM_FRAME_SIZE = 1400

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.streaming = False
        self._stream_timer = None
        self.stream_frames_sent = 0

    def start_stream(
        self, period: float = STREAM_PERIOD, frame_size: int = STREAM_FRAME_SIZE
    ) -> None:
        if self.streaming:
            return
        self.streaming = True
        self._stream_period = period
        self._stream_frame_size = frame_size
        self._schedule_frame()

    def stop_stream(self) -> None:
        self.streaming = False
        if self._stream_timer is not None:
            self._stream_timer.cancel()
            self._stream_timer = None

    def _schedule_frame(self) -> None:
        if not self.streaming:
            return
        self._stream_timer = self.sim.schedule(
            self._stream_period, self._send_frame, label=f"{self.device_id}:stream"
        )

    def _send_frame(self) -> None:
        if not self.streaming:
            return
        self.stream_frames_sent += 1
        self._record_emission("stream.frame")
        self.client.send_event(
            "stream.frame",
            {"seq": self.stream_frames_sent},
            wire_size=self._stream_frame_size,
        )
        self._schedule_frame()


class HubDevice(WifiDevice):
    """A hub/bridge: one uplink session multiplexing its children's traffic."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.children: dict[str, "HubChildDevice"] = {}
        # Replace the default command handler with one that routes to
        # children when the command addresses a child device.
        self.client.on_command = self._route_command

    def attach_child(self, child: "HubChildDevice") -> None:
        if child.device_id in self.children:
            raise ValueError(f"duplicate child id: {child.device_id}")
        self.children[child.device_id] = child

    def forward_child_event(self, child: "HubChildDevice", name: str, data: dict[str, Any]) -> None:
        """Relay a child event over the uplink, after the Zigbee hop.

        The event message carries the *child's* identity and wire size, so
        length-based fingerprinting can tell children apart on the shared
        session — exactly what the paper's sniffing step exploits.
        """
        obs = self.sim.obs
        parent_span = obs.tracer.current if obs.enabled else None
        self.sim.schedule(
            ZIGBEE_LATENCY,
            self._send_child_event,
            child,
            name,
            dict(data),
            parent_span,
            label=f"{self.device_id}:zigbee",
        )

    def _send_child_event(
        self,
        child: "HubChildDevice",
        name: str,
        data: dict[str, Any],
        parent_span: Any = None,
    ) -> None:
        data = dict(data)
        data["child"] = child.device_id
        obs = self.sim.obs
        if obs.enabled and parent_span is not None:
            # The Zigbee hop broke the synchronous chain; re-enter the
            # stimulus span so the uplink message stays in the same trace.
            with obs.tracer.ambient(parent_span):
                obs.tracer.event(
                    "device",
                    "zigbee_hop",
                    hub=self.device_id,
                    child=child.device_id,
                    latency=ZIGBEE_LATENCY,
                )
                self.client.send_event(name, data, wire_size=child.profile.event_size)
        else:
            self.client.send_event(name, data, wire_size=child.profile.event_size)

    def _route_command(self, message: IoTMessage) -> None:
        child_id = message.data.get("child")
        if child_id is None:
            self.execute_command(message)
            return
        child = self.children.get(child_id)
        if child is None:
            return
        self.sim.schedule(
            ZIGBEE_LATENCY,
            child.execute_command,
            message,
            label=f"{self.device_id}:zigbee-cmd",
        )


class HubChildDevice(IoTDevice):
    """A Zigbee/Z-Wave device reachable only through its hub."""

    def __init__(
        self,
        sim: "Simulator",
        profile: DeviceProfile,
        hub: HubDevice,
        device_id: str | None = None,
    ) -> None:
        super().__init__(sim, profile, device_id)
        if not profile.is_hub_child:
            raise ValueError(f"profile {profile.label} is not a hub child")
        self.hub = hub
        hub.attach_child(self)

    def _emit_event(self, name: str, data: dict[str, Any]) -> None:
        self.hub.forward_child_event(self, name, data)
