"""IoT device models: the 50-device catalogue and their runtimes."""

from .base import (
    CameraDevice,
    HubChildDevice,
    HubDevice,
    IoTDevice,
    WifiDevice,
    ZIGBEE_LATENCY,
)
from .behaviors import KIND_BEHAVIORS, KindBehavior, behavior_for
from .profiles import (
    ACTUATOR,
    CAMERA,
    CATALOGUE,
    Catalogue,
    DeviceProfile,
    HUB,
    INF,
    SECURITY,
    SENSOR,
    TABLE_CLOUD,
    TABLE_LOCAL,
)

__all__ = [
    "ACTUATOR",
    "CAMERA",
    "CATALOGUE",
    "CameraDevice",
    "Catalogue",
    "DeviceProfile",
    "HUB",
    "HubChildDevice",
    "HubDevice",
    "INF",
    "IoTDevice",
    "KIND_BEHAVIORS",
    "KindBehavior",
    "SECURITY",
    "SENSOR",
    "TABLE_CLOUD",
    "TABLE_LOCAL",
    "WifiDevice",
    "ZIGBEE_LATENCY",
    "behavior_for",
]
