"""Command-line interface: ``phantom-delay <experiment>``.

Each subcommand regenerates one of the paper's artefacts and prints it as a
text table; the same drivers back the pytest-benchmark harness.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.reporting import TextTable, fmt_window
from .devices.profiles import CATALOGUE


def _manifest_for(args: argparse.Namespace, multi: bool = False):
    """The ``manifest=`` value for a campaign driver.

    ``--no-manifest`` disables the artifact; ``--manifest PATH`` redirects
    it (single-campaign commands only — commands that run several campaigns
    keep the per-campaign default paths so they never overwrite each
    other).
    """
    if getattr(args, "no_manifest", False):
        return False
    path = getattr(args, "manifest", None)
    if path and not multi:
        return path
    return True


def _print_manifest(args: argparse.Namespace, campaign: str,
                    multi: bool = False) -> None:
    """One ``manifest: <path>`` line per campaign (deterministic paths)."""
    manifest = _manifest_for(args, multi)
    if manifest is False:
        return
    from .obs.manifest import manifest_path_for

    print(f"manifest: {manifest_path_for(campaign, None if manifest is True else manifest)}")


def _cmd_catalogue(args: argparse.Namespace) -> int:
    table = TextTable(
        ["Label", "Table", "Model", "Kind", "Server", "Connection",
         "e-Delay window", "c-Delay window"],
        title=f"Device catalogue ({len(CATALOGUE)} devices)",
    )
    for profile in CATALOGUE:
        table.add_row(
            profile.label,
            "I" if profile.table == 1 else "II",
            profile.model,
            profile.kind,
            profile.server,
            profile.connection,
            fmt_window(profile.event_delay_window()),
            fmt_window(profile.command_delay_window()),
        )
    print(table.render())
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments.table1 import render_table1, run_table1

    labels = args.labels.split(",") if args.labels else None
    rows = run_table1(
        labels=labels, trials=args.trials, seed=args.seed, jobs=args.jobs,
        cache=args.cache, manifest=_manifest_for(args),
    )
    print(render_table1(rows))
    _print_manifest(args, "table1")
    return 0 if all(r.matches_expectation() for r in rows) else 1


def _cmd_table2(args: argparse.Namespace) -> int:
    from .experiments.table2 import render_table2, run_table2

    labels = args.labels.split(",") if args.labels else None
    rows = run_table2(
        labels=labels, trials=args.trials, seed=args.seed, jobs=args.jobs,
        cache=args.cache, manifest=_manifest_for(args),
    )
    print(render_table2(rows))
    _print_manifest(args, "table2")
    return 0 if all(r.matches_expectation for r in rows) else 1


def _table3_faults_summary(rows) -> str | None:
    """One status line when the run was impaired + invariant-audited."""
    if not any(r.attacked.fault_stats for r in rows):
        return None
    violations = sum(
        len(r.baseline.invariant_violations or [])
        + len(r.attacked.invariant_violations or [])
        for r in rows
    )
    dropped = sum(
        sum(v for k, v in (r.attacked.fault_stats or {}).items() if k.startswith("dropped"))
        for r in rows
    )
    return (
        f"fault injection: {dropped} frames dropped across attacked runs; "
        f"invariant violations: {violations}"
    )


def _cmd_table3(args: argparse.Namespace) -> int:
    from .experiments.table3 import render_table3, run_table3

    faults = getattr(args, "faults", None)
    rows = run_table3(
        seed=args.seed, jobs=args.jobs, faults=faults,
        check_invariants=bool(faults), cache=args.cache,
        manifest=_manifest_for(args),
    )
    print(render_table3(rows))
    _print_manifest(args, "table3")
    summary = _table3_faults_summary(rows)
    if summary:
        print(summary)
    return 0 if all(r.consequence_reproduced and r.stealthy for r in rows) else 1


def _cmd_figure3(args: argparse.Namespace) -> int:
    from .experiments.table3 import render_table3, run_figure3

    faults = getattr(args, "faults", None)
    rows = run_figure3(
        seed=args.seed, jobs=args.jobs, faults=faults,
        check_invariants=bool(faults), cache=args.cache,
        manifest=_manifest_for(args),
    )
    print(render_table3(rows, title="Figure 3 — the four illustrated attacks"))
    _print_manifest(args, "table3")
    summary = _table3_faults_summary(rows)
    if summary:
        print(summary)
    return 0 if all(r.consequence_reproduced and r.stealthy for r in rows) else 1


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .experiments.robustness import render_robustness, run_robustness

    rows = run_robustness(
        seed=args.seed, jobs=args.jobs, cache=args.cache,
        manifest=_manifest_for(args),
    )
    print(render_robustness(rows))
    _print_manifest(args, "robustness")
    return 0 if all(r.success and r.violations == 0 for r in rows) else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from .experiments.verification import render_verification, run_verification

    rows = run_verification(
        trials=args.trials, seed=args.seed, jobs=args.jobs, cache=args.cache,
        manifest=_manifest_for(args),
    )
    print(render_verification(rows))
    _print_manifest(args, "verification")
    return 0 if all(r.success_rate == 1.0 for r in rows) else 1


def _cmd_findings(args: argparse.Namespace) -> int:
    from .experiments.findings import (
        finding1_half_open,
        finding2_event_discard,
        finding3_unidirectional_liveness,
        render_findings,
    )

    f1 = finding1_half_open(seed=args.seed)
    f2 = finding2_event_discard(seed=args.seed)
    f3 = finding3_unidirectional_liveness(seed=args.seed)
    print(render_findings(f1, f2, f3))
    return 0 if f1.reproduced and f3.reproduced else 1


def _cmd_countermeasures(args: argparse.Namespace) -> int:
    from .experiments.countermeasures import (
        render_countermeasures,
        run_ack_timeout_sweep,
        run_delay_detection,
        run_keepalive_cost_curve,
        run_remediation_experiment,
        run_static_arp_defense,
        run_timestamp_defense,
    )

    manifest = _manifest_for(args, multi=True)
    print(
        render_countermeasures(
            run_ack_timeout_sweep(seed=args.seed, jobs=args.jobs, cache=args.cache,
                                  manifest=manifest),
            run_keepalive_cost_curve(seed=args.seed, jobs=args.jobs, cache=args.cache,
                                     manifest=manifest),
            run_timestamp_defense(seed=args.seed, jobs=args.jobs, cache=args.cache,
                                  manifest=manifest),
            run_delay_detection(seed=args.seed),
            run_static_arp_defense(seed=args.seed),
            run_remediation_experiment(seed=args.seed),
        )
    )
    for campaign in ("cm-ack-timeout", "cm-keepalive-cost", "cm-timestamp"):
        _print_manifest(args, campaign, multi=True)
    return 0


def _cmd_integrity(args: argparse.Namespace) -> int:
    from .experiments.tls_integrity import render_integrity, run_integrity_experiment

    rows = run_integrity_experiment(seed=args.seed)
    print(render_integrity(rows))
    return 0 if all(r.matches_paper for r in rows) else 1


def _cmd_jamming(args: argparse.Namespace) -> int:
    from .experiments.jamming_contrast import (
        render_jamming_contrast,
        run_jamming_contrast,
    )

    rows = run_jamming_contrast(seed=args.seed)
    print(render_jamming_contrast(rows))
    phantom = next(r for r in rows if r.mode == "phantom-delay")
    return 0 if phantom.silent and phantom.event_delivered else 1


def _cmd_export_knowledge(args: argparse.Namespace) -> int:
    """Write the attacker knowledge base (profiled behaviours) to JSON."""
    from .core.knowledge import KnowledgeBase

    path = args.labels or "knowledge.json"  # reuse the free-form option
    kb = KnowledgeBase.from_catalogue()
    kb.save(path)
    print(f"wrote {len(kb)} device behaviours to {path}")
    return 0


def _cmd_recognition(args: argparse.Namespace) -> int:
    from .experiments.recognition import render_recognition, run_recognition

    report = run_recognition(seed=args.seed)
    print(render_recognition(report))
    return 0 if report.accuracy == 1.0 else 1


def _cmd_plan(args: argparse.Namespace) -> int:
    """Demonstrate the attack planner over the Table III rule set."""
    from .automation.dsl import parse_rule
    from .core.attacks.planner import AttackPlanner, render_plan

    rules = [
        parse_rule('WHEN c1 contact.open THEN NOTIFY voice "Front door opened"', "case1"),
        parse_rule("WHEN c2 contact.closed THEN COMMAND lk1 lock", "case3"),
        parse_rule(
            "WHEN lk1 lock.unlocked IF m2.motion == inactive THEN COMMAND hs2 disarm", "case5"
        ),
        parse_rule(
            "WHEN c5 contact.open IF pr1.presence == present THEN COMMAND lk1 unlock", "case8"
        ),
        parse_rule(
            "WHEN pr1 presence.away IF lk1.lock == unlocked THEN COMMAND lk1 lock", "case10"
        ),
        parse_rule(
            "WHEN m2 motion.active IF c2.contact == closed THEN COMMAND p1 on", "same-hub"
        ),
    ]
    device_profiles = {
        "c1": CATALOGUE.get("C1"),
        "c2": CATALOGUE.get("C2"),
        "c5": CATALOGUE.get("C5"),
        "m2": CATALOGUE.get("M2"),
        "pr1": CATALOGUE.get("PR1"),
        "lk1": CATALOGUE.get("LK1"),
        "hs2": CATALOGUE.get("HS2"),
        "p1": CATALOGUE.get("P1"),
    }
    planner = AttackPlanner(device_profiles)
    print(render_plan(planner.analyze(rules)))
    return 0


def _cmd_observe_report(args: argparse.Namespace) -> int:
    """Render one campaign run manifest."""
    from .analysis.reporting import render_manifest
    from .obs.manifest import RunManifest

    if len(args.paths) != 1:
        print("observe report takes exactly one manifest path", file=sys.stderr)
        return 2
    try:
        manifest = RunManifest.load(args.paths[0])
    except (OSError, ValueError) as exc:
        print(f"cannot load manifest {args.paths[0]}: {exc}", file=sys.stderr)
        return 2
    print(render_manifest(manifest))
    return 0


def _cmd_observe_diff(args: argparse.Namespace) -> int:
    """Diff two campaign manifests; exit 1 on drift."""
    from .analysis.reporting import render_manifest_diff
    from .obs.manifest import RunManifest, diff_manifests

    if len(args.paths) != 2:
        print("observe diff takes exactly two manifest paths", file=sys.stderr)
        return 2
    try:
        loaded = [RunManifest.load(path) for path in args.paths]
    except (OSError, ValueError) as exc:
        print(f"cannot load manifest: {exc}", file=sys.stderr)
        return 2
    diff = diff_manifests(*loaded)
    print(render_manifest_diff(diff))
    return 0 if diff.clean else 1


def _cmd_observe(args: argparse.Namespace) -> int:
    """Observed e-Delay run: metrics table, span tree, delay attribution."""
    if args.action == "report":
        return _cmd_observe_report(args)
    if args.action == "diff":
        return _cmd_observe_diff(args)
    if args.paths:
        print(f"unexpected arguments for observe: {args.paths}", file=sys.stderr)
        return 2

    from .obs import Tracer, attribute_delay, link_hold_spans, render_span_tree

    if args.trace:
        # Offline mode: render a previously exported trace.
        spans = Tracer.import_jsonl(args.trace)
        link_hold_spans(spans)
        print(render_span_tree(spans))
        from .analysis.timeline import render_timeline_from_trace

        print()
        print(render_timeline_from_trace(spans))
        return 0

    from .automation import parse_rule
    from .core import PhantomDelayAttacker
    from .core.attacks import StateUpdateDelay
    from .testbed import SmartHomeTestbed

    home = SmartHomeTestbed(seed=args.seed, observe=True)
    smoke = home.add_device("SM1")
    home.install_rule(
        parse_rule('WHEN sm1 smoke.detected THEN NOTIFY push "SMOKE DETECTED"')
    )
    home.settle()
    attacker = PhantomDelayAttacker.deploy(home)
    delay = StateUpdateDelay(attacker, smoke)
    home.run(70.0)  # watch a keep-alive pass so the session phase is known
    delay.arm()
    fire_at = home.now
    smoke.stimulate("detected")
    home.run(120.0)

    obs = home.obs
    tracer = obs.tracer
    link_hold_spans(tracer.spans)
    message = next(
        s for s in tracer.spans
        if s.component == "appproto" and s.name == "event:smoke.detected"
    )
    print(obs.registry.render_table())
    print()
    print("Span tree of the delayed smoke alert:")
    print(tracer.render_tree(message.trace_id))
    print()
    attribution = attribute_delay(tracer.spans, message.attrs["msg_id"])
    if attribution is not None:
        print(attribution.render())
    delivered = home.notifier.first_delivery_time("SMOKE DETECTED")
    if delivered is not None:
        print(f"\nphone notification: {delivered - fire_at:.2f}s after ignition "
              f"(alarms: {home.alarms.summary() or 'none'})")
    if args.export_trace:
        count = tracer.export_jsonl(args.export_trace)
        print(f"wrote {count} spans to {args.export_trace}")
    if args.export_metrics:
        count = obs.registry.export_jsonl(args.export_metrics)
        print(f"wrote {count} metrics to {args.export_metrics}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect, verify, or prune the content-addressed campaign cache."""
    from .cache import CampaignCache

    cache = CampaignCache()
    if args.action == "stats":
        stats = cache.stats()
        table = TextTable(["Field", "Value"], title="Campaign cache")
        table.add_row("root", stats["root"])
        table.add_row("code fingerprint", stats["fingerprint"])
        table.add_row("entries", stats["entries"])
        table.add_row("fresh", stats["fresh"])
        table.add_row("stale (code changed)", stats["stale"])
        table.add_row("corrupt", stats["corrupt"])
        table.add_row("size", f"{stats['bytes'] / 1024:.1f} KiB")
        table.add_row("replayable wall time", f"{stats['replayable_seconds']:.1f}s")
        if stats["oldest"]:
            table.add_row("oldest entry", stats["oldest"])
            table.add_row("newest entry", stats["newest"])
        print(table.render())
        return 0
    if args.action == "verify":
        outcomes = cache.verify(sample=args.sample, seed=args.sample_seed)
        if not outcomes:
            print("cache is empty; nothing to verify")
            return 0
        for out in outcomes:
            status = "ok" if out.ok else "MISMATCH"
            print(f"{status}  {out.fn}  {out.shard_key}  {out.detail}")
        return 0 if all(o.ok for o in outcomes) else 1
    if args.action == "gc":
        removed, kept, failed = cache.gc(everything=args.all)
        what = "entries" if args.all else "stale/corrupt entries"
        line = f"removed {removed} {what}, kept {kept}"
        if failed:
            line += f", failed to remove {failed}"
        print(line)
        return 1 if failed else 0
    raise AssertionError(f"unknown cache action {args.action!r}")


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Fleet campaigns: run a sampled population, find its breaking point,
    or dump sampled home specs.

    Deterministic facts (counts, digests, specs) go to stdout so CI can
    byte-diff two runs; timing goes to stderr.
    """
    import json

    from .fleet import FleetSampler, run_fleet

    if args.action == "spec":
        sampler = FleetSampler(args.seed)
        for spec in sampler.sample_many(args.homes, start=args.start):
            record = spec.to_dict()
            record["digest"] = spec.digest()
            print(json.dumps(record, sort_keys=True))
        return 0

    if args.action == "breaking-point":
        from .experiments.breaking_point import run_breaking_point

        report = run_breaking_point(
            start_homes=args.start_homes,
            growth_factor=args.growth_factor,
            max_steps=args.max_steps,
            seed=args.seed,
            jobs=args.jobs,
            batch_size=args.batch_size,
            home_event_budget=args.home_event_budget,
            step_event_limit=args.step_event_limit,
            wall_limit=args.wall_limit,
            success_floor=args.success_floor,
            cache=args.cache,
            manifest=_manifest_for(args, multi=True),
        )
        print(report.render())
        for step in report.steps:
            if step.manifest_path is not None:
                print(f"manifest: {step.manifest_path}")
        return 0

    report = run_fleet(
        homes=args.homes,
        seed=args.seed,
        jobs=args.jobs,
        batch_size=args.batch_size,
        event_budget=args.home_event_budget,
        cache=args.cache,
        manifest=_manifest_for(args),
        keep_rows=False,
        stream_to=args.stream,
    )
    print(
        f"fleet: {report.homes} home(s), {report.completed} completed, "
        f"{report.attacked} attacked, {report.impaired} impaired"
    )
    print(f"events: {report.events}  "
          f"notifications delivered: {report.notifications_delivered}")
    print(f"fleet digest: {report.fleet_digest}")
    if args.digests:
        for index, digest in enumerate(report.digests):
            print(f"home {index}: {digest}")
    if report.results_path is not None:
        print(f"results: {report.results_path}")
    _print_manifest(args, "fleet")
    print(
        f"{report.wall_seconds:.2f}s wall, "
        f"{report.homes_per_second:.1f} homes/s ({report.runner_summary})",
        file=sys.stderr,
    )
    return 0 if report.completed == report.homes else 1


def _cmd_search(args: argparse.Namespace) -> int:
    """Adversarial schedule search over generated TAP rule sets.

    Deterministic facts (hits, digests, specs) go to stdout so CI can
    byte-diff two runs; timing goes to stderr.
    """
    import json

    from .search import (
        RuleSetGenerator,
        SearchConfig,
        TABLE3_EXPECTED,
        plan_specs,
        run_search,
        table3_specs,
    )

    config = SearchConfig(max_candidates=args.budget)

    if args.action == "spec":
        generator = RuleSetGenerator(args.seed, config)
        for spec in generator.sample_many(args.programs, start=args.start):
            record = spec.to_dict()
            record["digest"] = spec.digest()
            print(json.dumps(record, sort_keys=True))
        return 0

    if args.action == "table3":
        from .search.corpus import corpus_digest

        specs = table3_specs(args.seed)
        outcomes = plan_specs(specs, config)
        hits = []
        status = 0
        for spec, outcome in zip(specs, outcomes):
            case = -spec.program_index
            expected = TABLE3_EXPECTED[case]
            hit = outcome["hit"]
            got = hit["violation"] if hit else "none"
            marker = "ok" if got == expected else "MISMATCH"
            if got != expected:
                status = 1
            holds = len(hit["schedule"]) if hit else 0
            print(f"case {case:2d}: {got:<20} expected {expected:<20} "
                  f"holds={holds} {marker}")
            if hit:
                hits.append(hit)
        print(f"rediscovered {len(hits)}/{len(specs)} cases")
        print(f"corpus digest: {corpus_digest(hits)}")
        return status

    report = run_search(
        programs=args.programs,
        seed=args.seed,
        jobs=args.jobs,
        batch_size=args.batch_size,
        config=config,
        cache=args.cache,
        manifest=_manifest_for(args),
        corpus_dir=args.corpus,
    )
    for hit in report.hits:
        print(f"program {hit['program_index']:4d}: {hit['violation']:<20} "
              f"holds={len(hit['schedule'])} explored={hit['explored']} "
              f"shrink_steps={hit['shrink_steps']} case={hit['case_digest']}")
    print(f"search: {report.programs} program(s), {len(report.hits)} hit(s), "
          f"{report.explored} candidate(s) explored")
    print(f"corpus digest: {report.corpus_digest}")
    if report.corpus_dir is not None:
        print(f"corpus: {report.corpus_dir} ({len(report.case_paths)} case files)")
    _print_manifest(args, "search")
    print(
        f"{report.wall_seconds:.2f}s wall, "
        f"{report.candidates_per_second:.1f} candidates/s "
        f"({report.runner_summary})",
        file=sys.stderr,
    )
    return 0 if report.programs == args.programs else 1


def _parse_params(pairs: list[str] | None) -> dict:
    """``--param k=v`` pairs; values parse as JSON, falling back to string."""
    import json

    kwargs: dict = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        try:
            kwargs[key] = json.loads(value)
        except json.JSONDecodeError:
            kwargs[key] = value
    return kwargs


def _service_client(args: argparse.Namespace):
    from .service.client import ServiceClient

    if getattr(args, "port", None):
        return ServiceClient(host=args.host, port=args.port)
    return ServiceClient(socket_path=getattr(args, "socket", None))


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the campaign service in the foreground until shut down."""
    from .service.server import serve

    return serve(
        socket_path=args.socket, host=args.host, port=args.port,
        jobs=args.jobs, cache=args.cache,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit a campaign spec; by default stream it to completion.

    The rendered result goes to stdout exactly as the one-shot subcommand
    would print it (plus a ``manifest:`` line); progress chatter goes to
    stderr.  The exit code is the experiment's own status rule.
    """
    client = _service_client(args)
    events = client.submit(
        args.experiment, kwargs=_parse_params(args.param), seed=args.seed,
        priority=args.priority, watch=not args.no_wait,
    )
    final = None
    for event in events:
        kind = event.get("event")
        if kind == "accepted":
            how = "coalesced onto" if event.get("deduped") else "queued as"
            print(f"{how} {event['job_id']} (key {event['key']})",
                  file=sys.stderr)
            if args.no_wait:
                print(event["job_id"])
                return 0
        elif kind == "state":
            print(f"{event['job_id']}: {event['state']}", file=sys.stderr)
        elif kind == "progress":
            print(f"{event['job_id']}: {event['done']}/{event['total']} "
                  "shard(s)", file=sys.stderr)
        elif kind in ("result", "cancelled", "error"):
            final = event
            break
    if final is None:
        print("service closed the stream before a terminal event",
              file=sys.stderr)
        return 2
    if final["event"] == "result":
        print(final["output"])
        if final.get("manifest"):
            print(f"manifest: {final['manifest']}")
        return int(final.get("status") or 0)
    if final["event"] == "cancelled":
        print(f"cancelled after {final.get('done')}/{final.get('total')} "
              "shard(s)", file=sys.stderr)
        return 3
    print(f"job failed: {final.get('message')}", file=sys.stderr)
    return 2


def _cmd_status(args: argparse.Namespace) -> int:
    """One table of jobs plus the service counters."""
    status = _service_client(args).status(args.job_id)
    if status.get("event") == "error":
        print(status.get("message"), file=sys.stderr)
        return 2
    table = TextTable(
        ["Job", "Experiment", "Seed", "Prio", "State", "Shards", "Subs",
         "Wall"],
        title=f"Campaign service @ {status['service']['address']}",
    )
    for row in status["jobs"]:
        table.add_row(
            row["job_id"], row["experiment"], row["seed"], row["priority"],
            row["state"], f"{row['done']}/{row['total']}",
            row["submissions"], f"{row['wall_seconds']:.2f}s",
        )
    print(table.render())
    svc = status["service"]
    print(
        f"workers: {svc['workers']}  queued: {svc['queue_depth']}  "
        f"submitted: {svc['submitted']}  coalesced: {svc['coalesced']}  "
        f"completed: {svc['completed']}  failed: {svc['failed']}  "
        f"cancelled: {svc['cancelled']}"
    )
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    ack = _service_client(args).cancel(args.job_id)
    if ack.get("event") == "error":
        print(ack.get("message"), file=sys.stderr)
        return 2
    print(f"{ack['job_id']}: {ack['state']}")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """Stream a job's events as JSON lines until it reaches a terminal one."""
    import json

    for event in _service_client(args).watch(args.job_id):
        print(json.dumps(event, sort_keys=True))
        if event.get("event") == "error" and "job_id" not in event:
            return 2
        if event.get("event") in ("result", "cancelled", "error"):
            return 0
    return 2


def _cmd_all(args: argparse.Namespace) -> int:
    status = 0
    for runner in (
        _cmd_table1, _cmd_table2, _cmd_table3, _cmd_figure3,
        _cmd_verify, _cmd_findings, _cmd_countermeasures, _cmd_integrity,
    ):
        status |= runner(args)
        print()
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="phantom-delay",
        description=(
            "Reproduction of 'IoT Phantom-Delay Attacks' (DSN 2022): "
            "regenerate the paper's tables, figures, and findings on the "
            "simulated smart-home stack."
        ),
    )
    parser.add_argument("--seed", type=int, default=7, help="simulation seed")
    parser.add_argument(
        "--trials", type=int, default=3,
        help="measurement trials per message type (paper: 20)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=(
            "worker processes for sharded campaigns (default: cpu count, "
            "capped; 1 = serial; output is identical for every value)"
        ),
    )
    parser.add_argument(
        "--labels", type=str, default=None,
        help="comma-separated device labels (table1/table2 only)",
    )
    parser.add_argument(
        "--faults", type=str, default=None, metavar="PROFILE",
        help=(
            "run the LAN impaired and audit every invariant: a named "
            "profile (ideal/lossy/bursty/jittery/chaotic) or a spec like "
            "'loss=0.05,jitter=0.01' (table3/figure3 only)"
        ),
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help=(
            "reuse content-addressed shard results from "
            "$REPRO_CACHE_DIR (default ~/.cache/repro-phantom-delay); "
            "--no-cache forces live simulation"
        ),
    )
    parser.add_argument(
        "--manifest", type=str, default=None, metavar="PATH",
        help=(
            "write the campaign run manifest to PATH instead of the default "
            "$REPRO_MANIFEST_DIR/<campaign>.jsonl (render it later with "
            "`observe report`)"
        ),
    )
    parser.add_argument(
        "--no-manifest", action="store_true",
        help="skip writing the campaign run manifest",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn, doc in (
        ("catalogue", _cmd_catalogue, "list the 50-device catalogue"),
        ("table1", _cmd_table1, "Table I: cloud device timeout profiling"),
        ("table2", _cmd_table2, "Table II: HomeKit device profiling"),
        ("table3", _cmd_table3, "Table III: the 11 PoC attack cases"),
        ("figure3", _cmd_figure3, "Figure 3: the four illustrated attacks"),
        ("verify", _cmd_verify, "Section VI-C verification test"),
        ("findings", _cmd_findings, "Findings 1-3"),
        ("countermeasures", _cmd_countermeasures, "Section VII defences"),
        ("integrity", _cmd_integrity, "TLS integrity vs delay"),
        ("plan", _cmd_plan, "attack planner over an inferred rule set"),
        ("recognition", _cmd_recognition, "device recognition accuracy (extension)"),
        ("export-knowledge", _cmd_export_knowledge,
         "dump the device-behaviour knowledge base as JSON (--labels sets the path)"),
        ("jamming", _cmd_jamming, "phantom delay vs packet discarding (extension)"),
        ("robustness", _cmd_robustness,
         "attack success over a loss x jitter grid with invariants audited"),
        ("all", _cmd_all, "run every experiment"),
    ):
        p = sub.add_parser(name, help=doc)
        p.set_defaults(func=fn)
    observe = sub.add_parser(
        "observe",
        help=(
            "observed e-Delay run (metrics, span tree, delay attribution); "
            "or `observe report M` / `observe diff A B` over run manifests"
        ),
    )
    observe.add_argument(
        "action", nargs="?", choices=["report", "diff"], default=None,
        help=(
            "report: render a campaign run manifest; diff: compare two "
            "manifests (counts, quantile drift, attribution deltas); "
            "omitted: run the live observed demo"
        ),
    )
    observe.add_argument(
        "paths", nargs="*",
        help="manifest path(s) for report/diff",
    )
    observe.add_argument(
        "--trace", type=str, default=None,
        help="render a previously exported trace JSONL instead of running",
    )
    observe.add_argument(
        "--export-trace", type=str, default=None, help="write spans to this JSONL path"
    )
    observe.add_argument(
        "--export-metrics", type=str, default=None,
        help="write the metrics snapshot to this JSONL path",
    )
    observe.set_defaults(func=_cmd_observe)
    cache = sub.add_parser(
        "cache",
        help="inspect, verify, or prune the content-addressed campaign cache",
    )
    cache.add_argument(
        "action", choices=["stats", "verify", "gc"],
        help="stats: summarise entries; verify: re-run a sample and compare "
             "digests; gc: drop stale/corrupt entries (--all drops everything)",
    )
    cache.add_argument(
        "--sample", type=int, default=3, metavar="N",
        help="how many fresh entries `verify` re-runs (default 3)",
    )
    cache.add_argument(
        "--sample-seed", type=int, default=0, metavar="S",
        help=(
            "seed for `verify`'s deterministic sample over all fresh "
            "entries (default 0; vary it to cover different entries)"
        ),
    )
    cache.add_argument(
        "--all", action="store_true",
        help="`gc` removes every entry, not just stale/corrupt ones",
    )
    cache.set_defaults(func=_cmd_cache)
    fleet = sub.add_parser(
        "fleet",
        help=(
            "population-scale campaigns: run a fleet of sampled homes, "
            "climb a step-load ladder to its breaking point, or dump "
            "sampled home specs"
        ),
    )
    fleet.add_argument(
        "action", nargs="?", choices=["run", "breaking-point", "spec"],
        default="run",
        help=(
            "run: simulate a fleet of --homes sampled homes (default); "
            "breaking-point: N -> 2N -> 4N... until a budget trips; "
            "spec: print sampled home specs as JSONL without running them"
        ),
    )
    fleet.add_argument(
        "--homes", type=int, default=64, metavar="N",
        help="fleet size for run/spec (default 64)",
    )
    fleet.add_argument(
        "--start", type=int, default=0, metavar="I",
        help="first home index for `spec` (default 0)",
    )
    fleet.add_argument(
        "--batch-size", type=int, default=16, metavar="N",
        help=(
            "homes per shard (default 16; fixed per campaign so cache "
            "keys never depend on --jobs)"
        ),
    )
    fleet.add_argument(
        "--home-event-budget", type=int, default=None, metavar="N",
        help=(
            "per-home scheduler event cap; a home over budget counts as "
            "failed instead of aborting the fleet"
        ),
    )
    fleet.add_argument(
        "--stream", type=str, default=None, metavar="PATH",
        help="append one JSON result row per home to PATH (run only)",
    )
    fleet.add_argument(
        "--digests", action="store_true",
        help="print every per-home digest (run only; CI diffs this)",
    )
    fleet.add_argument(
        "--start-homes", type=int, default=4, metavar="N",
        help="breaking-point: first rung of the ladder (default 4)",
    )
    fleet.add_argument(
        "--growth-factor", type=int, default=2, metavar="K",
        help="breaking-point: population multiplier per step (default 2)",
    )
    fleet.add_argument(
        "--max-steps", type=int, default=4, metavar="S",
        help="breaking-point: maximum ladder steps (default 4)",
    )
    fleet.add_argument(
        "--step-event-limit", type=int, default=None, metavar="N",
        help="breaking-point: stop when one step exceeds N simulated events",
    )
    fleet.add_argument(
        "--wall-limit", type=float, default=None, metavar="SECONDS",
        help="breaking-point: stop when one step takes longer than this",
    )
    fleet.add_argument(
        "--success-floor", type=float, default=0.95, metavar="F",
        help=(
            "breaking-point: stop when the completed-home fraction drops "
            "below F (default 0.95)"
        ),
    )
    fleet.set_defaults(func=_cmd_fleet)
    search = sub.add_parser(
        "search",
        help=(
            "adversarial schedule search: generate seeded TAP rule sets, "
            "find minimal hold schedules that provably subvert them, or "
            "rediscover the Table III cases differentially"
        ),
    )
    search.add_argument(
        "action", nargs="?", choices=["run", "table3", "spec"],
        default="run",
        help=(
            "run: search --programs generated rule sets for verified "
            "violations (default); table3: rediscover the 11 encoded "
            "paper cases and check the classified effects; spec: print "
            "generated program specs as JSONL without running them"
        ),
    )
    search.add_argument(
        "--programs", type=int, default=32, metavar="N",
        help="generated programs for run/spec (default 32)",
    )
    search.add_argument(
        "--start", type=int, default=0, metavar="I",
        help="first program index for `spec` (default 0)",
    )
    search.add_argument(
        "--batch-size", type=int, default=8, metavar="N",
        help=(
            "programs per shard (default 8; fixed per campaign so cache "
            "keys never depend on --jobs)"
        ),
    )
    search.add_argument(
        "--budget", type=int, default=8, metavar="N",
        help="candidate schedules explored per program (default 8)",
    )
    search.add_argument(
        "--corpus", type=str, default=None, metavar="DIR",
        help="write one JSONL case file per verified hit into DIR",
    )
    search.set_defaults(func=_cmd_search)

    def _add_service_transport(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--socket", type=str, default=None, metavar="PATH",
            help=(
                "unix socket path (default $REPRO_SERVICE_SOCKET or "
                "<cache dir>/service.sock)"
            ),
        )
        p.add_argument(
            "--host", type=str, default="127.0.0.1",
            help="TCP host when --port is given (default 127.0.0.1)",
        )
        p.add_argument(
            "--port", type=int, default=None, metavar="N",
            help="serve/connect over TCP instead of the unix socket",
        )

    serve = sub.add_parser(
        "serve",
        help=(
            "run the campaign service: a job queue over the shared worker "
            "pool with content-addressed dedup and streamed progress"
        ),
    )
    _add_service_transport(serve)
    serve.set_defaults(func=_cmd_serve)
    submit = sub.add_parser(
        "submit",
        help=(
            "submit an experiment to a running service and stream it to "
            "completion (output is byte-identical to the one-shot command)"
        ),
    )
    submit.add_argument(
        "experiment",
        help="registered experiment name (table1, table2, table3, figure3, "
             "verify, robustness)",
    )
    submit.add_argument(
        "--param", action="append", default=None, metavar="KEY=VALUE",
        help="driver kwarg; VALUE parses as JSON, else a string "
             "(repeatable, e.g. --param trials=5)",
    )
    submit.add_argument(
        "--priority", type=int, default=0, metavar="P",
        help="larger runs first; ties are FIFO (default 0)",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and detach instead of streaming",
    )
    _add_service_transport(submit)
    submit.set_defaults(func=_cmd_submit)
    status = sub.add_parser("status", help="list the service's jobs and counters")
    status.add_argument("job_id", nargs="?", default=None,
                        help="limit to one job")
    _add_service_transport(status)
    status.set_defaults(func=_cmd_status)
    cancel = sub.add_parser(
        "cancel",
        help="cancel a job (queued: instant; running: at the next shard)",
    )
    cancel.add_argument("job_id")
    _add_service_transport(cancel)
    cancel.set_defaults(func=_cmd_cancel)
    watch = sub.add_parser(
        "watch", help="stream a job's event lines as JSON until it finishes"
    )
    watch.add_argument("job_id")
    _add_service_transport(watch)
    watch.set_defaults(func=_cmd_watch)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
