"""Simulated TLS: record protection decoupled from any timeout detection."""

from .errors import (
    AlertReceived,
    HandshakeError,
    MacVerificationError,
    RecordFormatError,
    SequenceViolationError,
    TlsError,
)
from .record import (
    CONTENT_ALERT,
    CONTENT_APPLICATION,
    CONTENT_HANDSHAKE,
    HEADER_BYTES,
    MAC_BYTES,
    MAX_RECORD_PAYLOAD,
    RecordReader,
    RecordWriter,
    TlsRecord,
    derive_keys,
)
from .session import GLOBAL_ESCROW, KeyEscrow, RECORD_OVERHEAD, TlsSession

__all__ = [
    "AlertReceived",
    "CONTENT_ALERT",
    "CONTENT_APPLICATION",
    "CONTENT_HANDSHAKE",
    "GLOBAL_ESCROW",
    "HEADER_BYTES",
    "HandshakeError",
    "KeyEscrow",
    "MAC_BYTES",
    "MAX_RECORD_PAYLOAD",
    "MacVerificationError",
    "RECORD_OVERHEAD",
    "RecordFormatError",
    "RecordReader",
    "RecordWriter",
    "SequenceViolationError",
    "TlsError",
    "TlsRecord",
    "TlsSession",
    "derive_keys",
]
