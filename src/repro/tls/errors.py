"""TLS failure types.

A phantom-delay attacker must never trip these: the whole point of the
attack is that holding and releasing records *in order* keeps the record
layer silent, while any forge / modify / drop / reorder attempt raises one
of the errors below and tears the session down with a fatal alert
(Clarification I in the paper).
"""

from __future__ import annotations


class TlsError(Exception):
    """Base class for all TLS-layer failures."""


class HandshakeError(TlsError):
    """The simulated key exchange could not complete."""


class RecordFormatError(TlsError):
    """A record could not be parsed from the byte stream."""


class MacVerificationError(TlsError):
    """Record MAC did not verify — data was forged or modified in flight."""


class SequenceViolationError(MacVerificationError):
    """A record arrived out of sequence (replay, reorder, or drop).

    In real TLS this *is* a MAC failure, because the implicit sequence
    number is an input to the MAC; we subclass accordingly.
    """


class AlertReceived(TlsError):
    """The peer sent a fatal alert and closed the session."""

    def __init__(self, description: str) -> None:
        super().__init__(f"fatal TLS alert: {description}")
        self.description = description
