"""TLS record layer: framing, keystream encryption, and HMAC protection.

The reproduction keeps the two properties the paper's analysis needs, with
real cryptographic checks rather than trust:

1. **Integrity + ordering.**  Each direction keeps an implicit 64-bit
   sequence number; the record MAC is ``HMAC-SHA256(mac_key, seq || header ||
   ciphertext)``.  Forging, modifying, replaying, dropping, or reordering a
   record makes verification fail at the receiver (a
   :class:`~repro.tls.errors.MacVerificationError`), which in the sessions
   above triggers a fatal alert.  Crucially there is **no timestamp** and
   **no timeliness check** — a record held for an hour verifies perfectly.

2. **Confidentiality.**  Payloads are XORed with a per-record keystream
   derived from the encryption key and sequence number.  The on-path
   attacker handles ciphertext only; fingerprinting works from lengths.

This mirrors a TLS 1.2 AEAD cipher suite closely enough for every behaviour
the paper exercises.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass

from .errors import MacVerificationError, RecordFormatError

# Record content types (TLS registry values).
CONTENT_HANDSHAKE = 22
CONTENT_APPLICATION = 23
CONTENT_ALERT = 21

TLS_VERSION = b"\x03\x03"  # TLS 1.2
MAC_BYTES = 16
HEADER_BYTES = 5
MAX_RECORD_PAYLOAD = 2**14


@dataclass(frozen=True)
class TlsRecord:
    """A parsed (still encrypted) record."""

    content_type: int
    ciphertext: bytes
    mac: bytes

    def byte_size(self) -> int:
        return HEADER_BYTES + len(self.ciphertext) + len(self.mac)


def derive_keys(master_secret: bytes, role: str) -> tuple[bytes, bytes]:
    """Derive (encryption_key, mac_key) for the writer identified by role."""
    if role not in ("client", "server"):
        raise ValueError(f"bad role: {role}")
    enc = hashlib.sha256(master_secret + role.encode() + b":enc").digest()
    mac = hashlib.sha256(master_secret + role.encode() + b":mac").digest()
    return enc, mac


def _keystream(enc_key: bytes, seq: int, length: int) -> bytes:
    """Deterministic per-record keystream (counter-mode style)."""
    out = bytearray()
    block = 0
    while len(out) < length:
        out += hashlib.sha256(
            enc_key + seq.to_bytes(8, "big") + block.to_bytes(4, "big")
        ).digest()
        block += 1
    return bytes(out[:length])


def _mac_input(seq: int, content_type: int, ciphertext: bytes) -> bytes:
    header = struct.pack("!B2sH", content_type, TLS_VERSION, len(ciphertext))
    return seq.to_bytes(8, "big") + header + ciphertext


class RecordWriter:
    """Seals plaintext into records for one direction of a session."""

    def __init__(self, enc_key: bytes, mac_key: bytes) -> None:
        self._enc_key = enc_key
        self._mac_key = mac_key
        self.seq = 0

    def seal(self, content_type: int, plaintext: bytes) -> bytes:
        """Encrypt + MAC + frame one record; advances the sequence number."""
        if len(plaintext) > MAX_RECORD_PAYLOAD:
            raise ValueError("plaintext exceeds maximum record size")
        ciphertext = bytes(
            a ^ b for a, b in zip(plaintext, _keystream(self._enc_key, self.seq, len(plaintext)))
        )
        mac = hmac.new(
            self._mac_key, _mac_input(self.seq, content_type, ciphertext), hashlib.sha256
        ).digest()[:MAC_BYTES]
        self.seq += 1
        header = struct.pack("!B2sH", content_type, TLS_VERSION, len(ciphertext) + MAC_BYTES)
        return header + ciphertext + mac


class RecordReader:
    """Parses, verifies, and opens records for one direction of a session."""

    def __init__(self, enc_key: bytes, mac_key: bytes) -> None:
        self._enc_key = enc_key
        self._mac_key = mac_key
        self.seq = 0
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        """Append stream bytes; return all complete (type, plaintext) records.

        Raises :class:`MacVerificationError` when a record fails integrity or
        sequencing — which, because the sequence number is implicit, is also
        what drops, replays, and reorders look like.
        """
        self._buffer += data
        out: list[tuple[int, bytes]] = []
        while True:
            record = self._try_parse()
            if record is None:
                break
            out.append(self._open(record))
        return out

    def _try_parse(self) -> TlsRecord | None:
        if len(self._buffer) < HEADER_BYTES:
            return None
        content_type, version, length = struct.unpack("!B2sH", bytes(self._buffer[:HEADER_BYTES]))
        if version != TLS_VERSION:
            raise RecordFormatError(f"bad record version: {version!r}")
        if length < MAC_BYTES:
            raise RecordFormatError(f"record too short for MAC: {length}")
        if len(self._buffer) < HEADER_BYTES + length:
            return None
        body = bytes(self._buffer[HEADER_BYTES : HEADER_BYTES + length])
        del self._buffer[: HEADER_BYTES + length]
        return TlsRecord(content_type, body[:-MAC_BYTES], body[-MAC_BYTES:])

    def _open(self, record: TlsRecord) -> tuple[int, bytes]:
        expected = hmac.new(
            self._mac_key,
            _mac_input(self.seq, record.content_type, record.ciphertext),
            hashlib.sha256,
        ).digest()[:MAC_BYTES]
        if not hmac.compare_digest(expected, record.mac):
            raise MacVerificationError(
                f"record MAC mismatch at seq={self.seq} "
                "(forged, modified, replayed, dropped, or reordered data)"
            )
        plaintext = bytes(
            a ^ b
            for a, b in zip(
                record.ciphertext,
                _keystream(self._enc_key, self.seq, len(record.ciphertext)),
            )
        )
        self.seq += 1
        return record.content_type, plaintext
