"""TLS record layer: framing, keystream encryption, and HMAC protection.

The reproduction keeps the two properties the paper's analysis needs, with
real cryptographic checks rather than trust:

1. **Integrity + ordering.**  Each direction keeps an implicit 64-bit
   sequence number; the record MAC is ``HMAC-SHA256(mac_key, seq || header ||
   ciphertext)``.  Forging, modifying, replaying, dropping, or reordering a
   record makes verification fail at the receiver (a
   :class:`~repro.tls.errors.MacVerificationError`), which in the sessions
   above triggers a fatal alert.  Crucially there is **no timestamp** and
   **no timeliness check** — a record held for an hour verifies perfectly.

2. **Confidentiality.**  Payloads are XORed with a per-record keystream
   derived from the encryption key and sequence number.  The on-path
   attacker handles ciphertext only; fingerprinting works from lengths.

This mirrors a TLS 1.2 AEAD cipher suite closely enough for every behaviour
the paper exercises.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass

from .errors import MacVerificationError, RecordFormatError

# Record content types (TLS registry values).
CONTENT_HANDSHAKE = 22
CONTENT_APPLICATION = 23
CONTENT_ALERT = 21

TLS_VERSION = b"\x03\x03"  # TLS 1.2
MAC_BYTES = 16
HEADER_BYTES = 5
MAX_RECORD_PAYLOAD = 2**14


@dataclass(frozen=True)
class TlsRecord:
    """A parsed (still encrypted) record."""

    content_type: int
    ciphertext: bytes
    mac: bytes

    def byte_size(self) -> int:
        return HEADER_BYTES + len(self.ciphertext) + len(self.mac)


def derive_keys(master_secret: bytes, role: str) -> tuple[bytes, bytes]:
    """Derive (encryption_key, mac_key) for the writer identified by role."""
    if role not in ("client", "server"):
        raise ValueError(f"bad role: {role}")
    enc = hashlib.sha256(master_secret + role.encode() + b":enc").digest()
    mac = hashlib.sha256(master_secret + role.encode() + b":mac").digest()
    return enc, mac


class _Memo:
    """Bounded pair memo for crypto shared between a writer and a reader.

    Both endpoints of a simulated session live in one process, so every
    keystream and record MAC is computed twice: once by the sealing
    :class:`RecordWriter` and once more — over byte-identical inputs — by
    the verifying :class:`RecordReader`.  The memo stores the writer-side
    result keyed on the full input (the key material, the **sequence
    number** the keystream/MAC is derived from, and the data) so the
    reader's recomputation is a dictionary hit.

    Entries are popped when consumed (each record is opened exactly once;
    a replay or a tampered record changes the key and recomputes from
    scratch, so verification failures are never masked) and evicted FIFO
    past ``max_entries`` so records that were sealed but never delivered
    cannot grow the memo without bound.
    """

    __slots__ = ("cache", "max_entries", "hits", "misses")

    def __init__(self, max_entries: int = 512) -> None:
        self.cache: dict = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def take(self, key):
        """Pop and return the memoised value, or None on a miss."""
        value = self.cache.pop(key, None)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key, value) -> None:
        cache = self.cache
        if len(cache) >= self.max_entries:
            del cache[next(iter(cache))]
        cache[key] = value

    def clear(self) -> None:
        self.cache.clear()
        self.hits = 0
        self.misses = 0


#: Keystream memo: ``(enc_key, seq, length) -> keystream bytes``.
_KEYSTREAM_MEMO = _Memo()
#: Record-MAC memo: ``(mac_key, seq, content_type, ciphertext) -> mac``.
_MAC_MEMO = _Memo()


def memo_stats() -> dict[str, int]:
    """Hit/miss counters for the shared TLS encode memos (see docs/API.md)."""
    return {
        "keystream_hits": _KEYSTREAM_MEMO.hits,
        "keystream_misses": _KEYSTREAM_MEMO.misses,
        "mac_hits": _MAC_MEMO.hits,
        "mac_misses": _MAC_MEMO.misses,
    }


def reset_memo() -> None:
    """Drop all memoised TLS state and zero the counters (test isolation)."""
    _KEYSTREAM_MEMO.clear()
    _MAC_MEMO.clear()


def _keystream(enc_key: bytes, seq: int, length: int) -> bytes:
    """Deterministic per-record keystream (counter-mode style)."""
    out = bytearray()
    block = 0
    while len(out) < length:
        out += hashlib.sha256(
            enc_key + seq.to_bytes(8, "big") + block.to_bytes(4, "big")
        ).digest()
        block += 1
    return bytes(out[:length])


def _xor(data: bytes, keystream: bytes) -> bytes:
    """XOR ``data`` with ``keystream`` (same length) via big-int arithmetic."""
    size = len(data)
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")
    ).to_bytes(size, "big")


def _mac_input(seq: int, content_type: int, ciphertext: bytes) -> bytes:
    header = struct.pack("!B2sH", content_type, TLS_VERSION, len(ciphertext))
    return seq.to_bytes(8, "big") + header + ciphertext


def _record_mac(mac_key: bytes, seq: int, content_type: int, ciphertext: bytes) -> bytes:
    """Truncated record HMAC, memoised between sealing and verification.

    The memo key carries every HMAC input, so a hit is byte-for-byte the
    value a recomputation would produce; any difference in the record a
    verifier sees (tampered ciphertext, shifted seq, altered type) misses
    the memo and is recomputed honestly — and then fails comparison.
    """
    key = (mac_key, seq, content_type, ciphertext)
    mac = _MAC_MEMO.take(key)
    if mac is None:
        mac = hmac.new(
            mac_key, _mac_input(seq, content_type, ciphertext), hashlib.sha256
        ).digest()[:MAC_BYTES]
        _MAC_MEMO.put(key, mac)
    return mac


class RecordWriter:
    """Seals plaintext into records for one direction of a session."""

    def __init__(self, enc_key: bytes, mac_key: bytes) -> None:
        self._enc_key = enc_key
        self._mac_key = mac_key
        self.seq = 0

    def seal(self, content_type: int, plaintext: bytes) -> bytes:
        """Encrypt + MAC + frame one record; advances the sequence number.

        The keystream and MAC are published to the shared memos so the
        peer's :class:`RecordReader` — which must derive byte-identical
        values from the same (key, seq) inputs — reuses them instead of
        recomputing the hashes.
        """
        if len(plaintext) > MAX_RECORD_PAYLOAD:
            raise ValueError("plaintext exceeds maximum record size")
        seq = self.seq
        length = len(plaintext)
        ks_key = (self._enc_key, seq, length)
        keystream = _KEYSTREAM_MEMO.take(ks_key)
        if keystream is None:
            keystream = _keystream(self._enc_key, seq, length)
        _KEYSTREAM_MEMO.put(ks_key, keystream)
        ciphertext = _xor(plaintext, keystream)
        mac = _record_mac(self._mac_key, seq, content_type, ciphertext)
        self.seq += 1
        header = struct.pack("!B2sH", content_type, TLS_VERSION, len(ciphertext) + MAC_BYTES)
        return header + ciphertext + mac


class RecordReader:
    """Parses, verifies, and opens records for one direction of a session."""

    def __init__(self, enc_key: bytes, mac_key: bytes) -> None:
        self._enc_key = enc_key
        self._mac_key = mac_key
        self.seq = 0
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        """Append stream bytes; return all complete (type, plaintext) records.

        Raises :class:`MacVerificationError` when a record fails integrity or
        sequencing — which, because the sequence number is implicit, is also
        what drops, replays, and reorders look like.
        """
        self._buffer += data
        out: list[tuple[int, bytes]] = []
        while True:
            record = self._try_parse()
            if record is None:
                break
            out.append(self._open(record))
        return out

    def _try_parse(self) -> TlsRecord | None:
        if len(self._buffer) < HEADER_BYTES:
            return None
        content_type, version, length = struct.unpack("!B2sH", bytes(self._buffer[:HEADER_BYTES]))
        if version != TLS_VERSION:
            raise RecordFormatError(f"bad record version: {version!r}")
        if length < MAC_BYTES:
            raise RecordFormatError(f"record too short for MAC: {length}")
        if len(self._buffer) < HEADER_BYTES + length:
            return None
        body = bytes(self._buffer[HEADER_BYTES : HEADER_BYTES + length])
        del self._buffer[: HEADER_BYTES + length]
        return TlsRecord(content_type, body[:-MAC_BYTES], body[-MAC_BYTES:])

    def _open(self, record: TlsRecord) -> tuple[int, bytes]:
        # Memo hit when the record is exactly what the peer sealed at this
        # seq; any tampering, replay, or reordering changes an input and
        # recomputes the HMAC from scratch — then fails the comparison.
        expected = _record_mac(
            self._mac_key, self.seq, record.content_type, record.ciphertext
        )
        if not hmac.compare_digest(expected, record.mac):
            raise MacVerificationError(
                f"record MAC mismatch at seq={self.seq} "
                "(forged, modified, replayed, dropped, or reordered data)"
            )
        length = len(record.ciphertext)
        keystream = _KEYSTREAM_MEMO.take((self._enc_key, self.seq, length))
        if keystream is None:
            keystream = _keystream(self._enc_key, self.seq, length)
        plaintext = _xor(record.ciphertext, keystream)
        self.seq += 1
        return record.content_type, plaintext
