"""TLS session: simulated handshake plus protected message exchange.

**Key exchange model.**  Real deployments establish session keys via a key
exchange the on-path attacker cannot solve.  We simulate that with a
:class:`KeyEscrow`: the client generates a fresh master secret, registers it
under an opaque token, and the handshake carries only the token.  Legitimate
endpoints redeem the token from the escrow; attacker code in
:mod:`repro.core` never touches the escrow — it sees only bytes on the wire.
(DESIGN.md documents this substitution.)

**Timeouts.**  Deliberately, there are none here: TLS provides integrity and
confidentiality but no timeliness — the decoupling at the heart of the
paper.  Any liveness checking must come from TCP below (forgeable) or the
application above (what the paper measures).

**Performance.**  Every record a session seals or opens goes through the
shared encode memo in :mod:`repro.tls.record`: the writer publishes each
(seq-keyed) keystream and record MAC, and the peer's reader pops them
instead of recomputing the hashes — halving per-record crypto for the
keep-alive traffic that dominates a simulated day (see "Event-core
performance" in docs/API.md).  The memo is a fast path, never a trust
path: tampering, replay, or reordering changes a memo key component and
falls back to an honest recompute that still raises
:class:`~repro.tls.errors.MacVerificationError`.
"""

from __future__ import annotations

import struct
from typing import Callable, TYPE_CHECKING

from ..tcp.connection import TcpConnection
from .errors import HandshakeError, MacVerificationError, RecordFormatError
from .record import (
    CONTENT_ALERT,
    CONTENT_APPLICATION,
    CONTENT_HANDSHAKE,
    HEADER_BYTES,
    MAC_BYTES,
    RecordReader,
    RecordWriter,
    TLS_VERSION,
    derive_keys,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

#: Per-message wire overhead: record header + truncated HMAC.
RECORD_OVERHEAD = HEADER_BYTES + MAC_BYTES

_CLIENT_HELLO = b"CHLO"
_SERVER_HELLO = b"SHLO"
_TOKEN_BYTES = 16


class KeyEscrow:
    """Out-of-band stand-in for the key exchange (see module docstring)."""

    def __init__(self) -> None:
        self._secrets: dict[bytes, bytes] = {}

    def register(self, token: bytes, master_secret: bytes) -> None:
        if token in self._secrets:
            raise HandshakeError("token collision in key escrow")
        self._secrets[token] = master_secret

    def redeem(self, token: bytes) -> bytes:
        try:
            return self._secrets[token]
        except KeyError:
            raise HandshakeError("unknown handshake token") from None


#: Default escrow shared by all sessions in a simulation unless overridden.
GLOBAL_ESCROW = KeyEscrow()


def _plain_record(content_type: int, body: bytes) -> bytes:
    return struct.pack("!B2sH", content_type, TLS_VERSION, len(body)) + body


class TlsSession:
    """One endpoint of a TLS-protected TCP connection.

    Message boundaries are preserved: one ``send_message`` becomes exactly
    one record, so observed wire sizes are ``len(message) +
    RECORD_OVERHEAD`` — the invariant the traffic fingerprinting relies on.
    """

    def __init__(
        self,
        conn: TcpConnection,
        role: str,
        escrow: KeyEscrow | None = None,
        on_established: Callable[["TlsSession"], None] | None = None,
        on_message: Callable[["TlsSession", bytes], None] | None = None,
        on_closed: Callable[["TlsSession", str], None] | None = None,
    ) -> None:
        if role not in ("client", "server"):
            raise ValueError(f"bad role: {role}")
        self.conn = conn
        self.sim: "Simulator" = conn.sim
        self.role = role
        self.escrow = escrow or GLOBAL_ESCROW
        self.on_established = on_established
        self.on_message = on_message
        self.on_closed = on_closed

        self.established = False
        self.closed = False
        self.close_reason: str | None = None
        self.alerts_raised: list[str] = []
        self._writer: RecordWriter | None = None
        self._reader: RecordReader | None = None
        self._plain_buffer = bytearray()
        self._pending_sends: list[tuple[int, bytes]] = []

        conn.callbacks.on_connected = self._on_tcp_connected
        conn.callbacks.on_data = self._on_tcp_data
        conn.callbacks.on_closed = self._on_tcp_closed
        if conn.established and role == "client":
            self._start_client_handshake()

    # ------------------------------------------------------------ handshake

    def _on_tcp_connected(self, conn: TcpConnection) -> None:
        if self.role == "client":
            self._start_client_handshake()

    def _start_client_handshake(self) -> None:
        rng = self.sim.rng
        master = bytes(rng.getrandbits(8) for _ in range(32))
        token = bytes(rng.getrandbits(8) for _ in range(_TOKEN_BYTES))
        self.escrow.register(token, master)
        self._install_keys(master)
        self.conn.send(_plain_record(CONTENT_HANDSHAKE, _CLIENT_HELLO + token))

    def _install_keys(self, master: bytes) -> None:
        write_role = self.role
        read_role = "server" if self.role == "client" else "client"
        self._writer = RecordWriter(*derive_keys(master, write_role))
        self._reader = RecordReader(*derive_keys(master, read_role))

    def _handle_handshake(self, body: bytes) -> None:
        kind, token = body[:4], body[4:]
        if self.role == "server" and kind == _CLIENT_HELLO:
            master = self.escrow.redeem(token)
            self._install_keys(master)
            self.conn.send(_plain_record(CONTENT_HANDSHAKE, _SERVER_HELLO + token))
            self._mark_established()
        elif self.role == "client" and kind == _SERVER_HELLO:
            self._mark_established()
        else:
            raise HandshakeError(f"unexpected handshake message {kind!r} for {self.role}")

    def _mark_established(self) -> None:
        self.established = True
        if self.on_established is not None:
            self.on_established(self)
        pending, self._pending_sends = self._pending_sends, []
        for content_type, payload in pending:
            self._seal_and_send(content_type, payload)

    # ----------------------------------------------------------------- send

    def send_message(self, payload: bytes) -> None:
        """Protect and send one application message as one record."""
        if self.closed:
            raise RuntimeError("TLS session is closed")
        if not self.established:
            self._pending_sends.append((CONTENT_APPLICATION, payload))
            return
        self._seal_and_send(CONTENT_APPLICATION, payload)

    def _seal_and_send(self, content_type: int, payload: bytes) -> None:
        assert self._writer is not None
        record = self._writer.seal(content_type, payload)
        obs = self.sim.obs
        if obs.enabled and content_type == CONTENT_APPLICATION:
            obs.registry.counter("tls", "records_sealed", role=self.role).inc()
            if obs.tracer.current is not None:
                # Child of the ambient message span (appproto dispatch).
                obs.tracer.event("tls", "record", role=self.role, size=len(record))
        self.conn.send(record)

    def wire_size(self, payload_len: int) -> int:
        """Wire bytes one message of ``payload_len`` occupies (record only)."""
        return payload_len + RECORD_OVERHEAD

    # -------------------------------------------------------------- receive

    def _on_tcp_data(self, conn: TcpConnection, data: bytes) -> None:
        if self.closed:
            return
        if not self.established:
            self._feed_plain(data)
            return
        try:
            assert self._reader is not None
            records = self._reader.feed(data)
        except (MacVerificationError, RecordFormatError) as exc:
            self._fatal_alert(str(exc))
            return
        for content_type, plaintext in records:
            self._dispatch(content_type, plaintext)

    def _feed_plain(self, data: bytes) -> None:
        """Parse plaintext handshake records before keys are active."""
        self._plain_buffer += data
        while len(self._plain_buffer) >= HEADER_BYTES:
            content_type, version, length = struct.unpack(
                "!B2sH", bytes(self._plain_buffer[:HEADER_BYTES])
            )
            if len(self._plain_buffer) < HEADER_BYTES + length:
                return
            body = bytes(self._plain_buffer[HEADER_BYTES : HEADER_BYTES + length])
            del self._plain_buffer[: HEADER_BYTES + length]
            if content_type != CONTENT_HANDSHAKE:
                self._fatal_alert("non-handshake record before keys established")
                return
            try:
                self._handle_handshake(body)
            except HandshakeError as exc:
                self._fatal_alert(str(exc))
                return
            if self.established:
                # Remaining buffered bytes are protected records.
                rest = bytes(self._plain_buffer)
                self._plain_buffer.clear()
                if rest:
                    self._on_tcp_data(self.conn, rest)
                return

    def _dispatch(self, content_type: int, plaintext: bytes) -> None:
        if content_type == CONTENT_APPLICATION:
            if self.on_message is not None:
                self.on_message(self, plaintext)
        elif content_type == CONTENT_ALERT:
            self._close(f"tls-alert-received:{plaintext.decode(errors='replace')}")
        elif content_type == CONTENT_HANDSHAKE:
            # Renegotiation is out of scope; ignore quietly.
            pass

    # ------------------------------------------------------------- teardown

    def _fatal_alert(self, description: str) -> None:
        """Integrity violation: alert the peer and kill the session.

        This is the loud failure the phantom-delay attacker avoids by never
        touching record bytes or ordering.
        """
        self.alerts_raised.append(description)
        obs = self.sim.obs
        if obs.enabled:
            obs.registry.counter("tls", "integrity_alerts", role=self.role).inc()
        inv = self.sim.invariants
        if inv is not None:
            inv.on_tls_alert(
                f"{self.role}@{self.conn.flow_label()}", description
            )
        if self.conn.is_open and self.conn.established and self._writer is not None:
            # Our *reader* is desynchronised but our writer is not, so the
            # peer can still verify a sealed alert.
            try:
                self._seal_and_send(CONTENT_ALERT, description.encode()[:200])
            except RuntimeError:
                pass
        self._close(f"tls-alert-sent:{description}")
        self.conn.abort("tls-integrity-failure")

    def close(self) -> None:
        """Orderly application-initiated close."""
        self._close("local-close")
        self.conn.close()

    def _on_tcp_closed(self, conn: TcpConnection, reason: str) -> None:
        self._close(f"tcp:{reason}")

    def _close(self, reason: str) -> None:
        if self.closed:
            return
        self.closed = True
        self.close_reason = reason
        if self.on_closed is not None:
            self.on_closed(self, reason)
