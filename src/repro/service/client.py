"""Blocking client for the campaign service.

Built on plain stdlib sockets so the CLI subcommands (`submit`, `status`,
`cancel`, `watch`) stay synchronous and dependency-free: one connection
per request, one JSON line out, decoded event lines back until the server
closes the stream.
"""

from __future__ import annotations

import os
import socket
import time
from pathlib import Path
from typing import Any, Iterator

from .protocol import JobSpec, ProtocolError, decode, encode

#: Environment override for the default unix-socket path.
SERVICE_SOCKET_ENV = "REPRO_SERVICE_SOCKET"

#: Submissions can legitimately stream for as long as a campaign takes.
DEFAULT_TIMEOUT = 600.0


def default_socket_path() -> Path:
    """``$REPRO_SERVICE_SOCKET`` or ``<cache dir>/service.sock``."""
    env = os.environ.get(SERVICE_SOCKET_ENV)
    if env:
        return Path(env)
    from ..cache.store import default_cache_dir

    return default_cache_dir() / "service.sock"


class ServiceClient:
    """Talks the line-JSON protocol over a unix socket or TCP."""

    def __init__(self, socket_path: "str | Path | None" = None,
                 host: str | None = None, port: int | None = None,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        self.timeout = timeout
        if port is not None:
            self._address: "tuple[str, int] | str" = (host or "127.0.0.1",
                                                      int(port))
        else:
            self._address = str(socket_path or default_socket_path())

    def _connect(self) -> socket.socket:
        if isinstance(self._address, tuple):
            return socket.create_connection(self._address,
                                            timeout=self.timeout)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self._address)
        except OSError:
            sock.close()
            raise
        return sock

    def request(self, payload: dict[str, Any]) -> Iterator[dict[str, Any]]:
        """Send one request line, yield decoded events until EOF."""
        sock = self._connect()
        try:
            sock.sendall(encode(payload))
            with sock.makefile("rb") as stream:
                for line in stream:
                    yield decode(line)
        finally:
            sock.close()

    def _single(self, payload: dict[str, Any]) -> dict[str, Any]:
        for event in self.request(payload):
            return event
        raise ProtocolError("service closed the connection without replying")

    # ------------------------------------------------------------------ ops

    def submit(self, experiment: str, kwargs: dict[str, Any] | None = None,
               seed: int = 7, priority: int = 0,
               watch: bool = True) -> Iterator[dict[str, Any]]:
        """Submit a spec; yields ``accepted`` then (if watching) the stream."""
        spec = JobSpec(experiment=experiment, kwargs=dict(kwargs or {}),
                       seed=seed, priority=priority)
        return self.request({
            "op": "submit", "spec": spec.to_payload(), "watch": watch,
        })

    def submit_and_wait(self, experiment: str,
                        kwargs: dict[str, Any] | None = None, seed: int = 7,
                        priority: int = 0) -> tuple[dict[str, Any], dict[str, Any]]:
        """Submit and block for the terminal event.

        Returns ``(accepted, final)`` where ``final`` is the ``result``,
        ``cancelled``, or ``error`` event (or an immediate stream-level
        ``error``).
        """
        accepted: dict[str, Any] | None = None
        for event in self.submit(experiment, kwargs=kwargs, seed=seed,
                                 priority=priority, watch=True):
            kind = event.get("event")
            if kind == "accepted":
                accepted = event
            elif kind in ("result", "cancelled", "error"):
                return accepted or {}, event
        raise ProtocolError("stream ended before a terminal event")

    def watch(self, job_id: str) -> Iterator[dict[str, Any]]:
        return self.request({"op": "watch", "job_id": job_id})

    def status(self, job_id: str | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": "status"}
        if job_id is not None:
            payload["job_id"] = job_id
        return self._single(payload)

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._single({"op": "cancel", "job_id": job_id})

    def shutdown(self) -> dict[str, Any]:
        return self._single({"op": "shutdown"})


def wait_for_service(client: ServiceClient, timeout: float = 30.0,
                     interval: float = 0.05) -> None:
    """Poll ``status`` until the service answers (startup races, CI)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            client.status()
            return
        except (OSError, ProtocolError):
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    "campaign service did not come up in "
                    f"{timeout:.0f}s"
                ) from None
            time.sleep(interval)
