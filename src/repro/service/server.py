"""`CampaignService`: the asyncio job-queue front-end over cache + runner.

One service owns one :class:`~repro.parallel.SharedWorkerPool` and
multiplexes every accepted campaign over it:

* **Dedup** — each :class:`~repro.service.protocol.JobSpec` is
  content-addressed with the same digest machinery the shard cache uses;
  a submission whose key matches an in-flight (or already completed) job
  coalesces onto it instead of executing again.  Below job granularity,
  the runner's shard cache dedupes against *everything that ever ran*,
  service or CLI alike.
* **Priority scheduling** — queued jobs run highest ``priority`` first,
  FIFO within a band, one campaign at a time on the shared pool (the
  pool parallelises shards, so a second concurrent campaign would only
  fight it for workers).
* **Cooperative cancellation** — ``cancel`` flips the job's
  ``threading.Event``; the runner observes it between shard completions,
  stores everything that finished (the cache stays consistent, atomic
  entries only), and raises
  :class:`~repro.parallel.CampaignCancelled`.
* **Streaming** — watchers get line-JSON ``state``/``progress`` events as
  shards book, then one terminal ``result`` event carrying the rendered
  output (byte-identical to the one-shot CLI), the one-per-job manifest
  path, and the merged deterministic metrics snapshot.

Everything that mutates job state runs on the event loop; the executing
campaign lives in a single worker thread and talks back only through
``call_soon_threadsafe`` and its cancel event.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from ..experiments.registry import experiment_names, get_experiment
from ..obs.manifest import manifest_dir
from ..obs.metrics import MetricsRegistry
from ..parallel import (
    CampaignCancelled,
    CampaignRunner,
    SharedWorkerPool,
    fork_available,
    resolve_jobs,
)
from .jobs import Job
from .protocol import JobSpec, ProtocolError, decode, encode

#: Per-line size limit for the asyncio transports; result events carry a
#: rendered table plus the metrics snapshot, well past the 64 KiB default.
LINE_LIMIT = 8 * 1024 * 1024

#: Terminal event kinds — a stream ends after sending one of these.
TERMINAL_EVENTS = frozenset({"result", "cancelled", "error"})


class CampaignService:
    """Accepts campaign specs and serves them off one shared worker pool."""

    def __init__(self, jobs: int | None = None, cache: Any = True) -> None:
        workers = resolve_jobs(jobs)
        #: Shards of every job dispatch here; ``None`` (no fork, or a
        #: single worker) means jobs run serially inside the executor
        #: thread — same results, no pool.
        self.pool = SharedWorkerPool(workers) if (
            workers > 1 and fork_available()
        ) else None
        self.jobs = workers
        self.cache = cache
        self.metrics = MetricsRegistry()
        self._submitted = self.metrics.counter("service", "jobs_submitted")
        self._coalesced = self.metrics.counter("service", "jobs_coalesced")
        self._completed = self.metrics.counter("service", "jobs_completed")
        self._failed = self.metrics.counter("service", "jobs_failed")
        self._cancelled = self.metrics.counter("service", "jobs_cancelled")
        self._queue_depth = self.metrics.gauge("service", "queue_depth")
        self._job_seconds = self.metrics.histogram("service", "job_wall_seconds")
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._orders = itertools.count(1)
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        #: One campaign executes at a time; the *shards* parallelise.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="campaign-exec"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._scheduler_task: asyncio.Task | None = None
        self._shutdown: asyncio.Event | None = None
        self._socket_path: Path | None = None
        self.address = ""

    # ------------------------------------------------------------ lifecycle

    async def start(self, socket_path: "str | Path | None" = None,
                    host: str = "127.0.0.1", port: int = 0) -> str:
        """Bind (unix socket if ``socket_path``, else TCP) and go live."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if self.pool is not None:
            # Fork every worker before any client (or executor) thread
            # exists, so the children never inherit a mid-operation lock.
            self.pool.prewarm()
        if socket_path is not None:
            path = Path(socket_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.unlink(missing_ok=True)
            self._server = await asyncio.start_unix_server(
                self._handle, path=str(path), limit=LINE_LIMIT
            )
            self._socket_path = path
            self.address = str(path)
        else:
            self._server = await asyncio.start_server(
                self._handle, host, port, limit=LINE_LIMIT
            )
            bound = self._server.sockets[0].getsockname()
            self.address = f"{bound[0]}:{bound[1]}"
        self._scheduler_task = self._loop.create_task(self._scheduler())
        return self.address

    def request_shutdown(self) -> None:
        """Stop serving (thread-safe); `wait_shutdown` waiters wake up."""
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)

    async def wait_shutdown(self) -> None:
        assert self._shutdown is not None, "service not started"
        await self._shutdown.wait()

    async def close(self) -> None:
        """Tear down: stop accepting, cancel active jobs, drain the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for job in self._jobs.values():
            if job.active:
                job.cancel_event.set()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._scheduler_task
            self._scheduler_task = None
        # The running campaign (if any) observes its cancel event between
        # shards, so this wait is bounded by one shard's runtime.
        await asyncio.get_running_loop().run_in_executor(
            None, self._executor.shutdown
        )
        if self.pool is not None:
            self.pool.shutdown()
        if self._socket_path is not None:
            self._socket_path.unlink(missing_ok=True)
            self._socket_path = None

    # ------------------------------------------------------------ job intake

    def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Accept one spec; returns ``(job, coalesced)`` (loop thread only).

        A spec whose content address matches an active or successfully
        completed job coalesces onto it — the campaign executes once and
        every submitter watches the same stream.  Failed and cancelled
        jobs do *not* memoise: resubmitting one schedules a fresh run
        (which resumes from whatever its predecessor already cached).
        """
        get_experiment(spec.experiment)  # unknown names fail fast
        key = spec.key()
        existing = self._by_key.get(key)
        if existing is not None and (existing.active or existing.state == "done"):
            existing.submissions += 1
            self._coalesced.inc()
            return existing, True
        job = Job(f"job-{next(self._ids)}", spec, key, order=next(self._orders))
        self._jobs[job.job_id] = job
        self._by_key[key] = job
        self._submitted.inc()
        self._queue_depth.inc()
        self._queue.put_nowait(((-spec.priority, job.order), job))
        return job, False

    def cancel(self, job_id: str) -> Job:
        """Cancel by id (loop thread only); terminal jobs are left alone.

        Queued jobs cancel instantly; the running job's campaign stops
        cooperatively at the next shard completion.  Cancellation applies
        to the *execution*, so every coalesced submitter sees it.
        """
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if job.terminal:
            return job
        job.cancel_event.set()
        if job.state == "queued":
            self._queue_depth.dec()
            job.state = "cancelled"
            self._cancelled.inc()
            job.publish({
                "event": "cancelled", "done": 0, "total": job.progress_total,
            })
        return job

    # ------------------------------------------------------------ execution

    async def _scheduler(self) -> None:
        """Pop jobs in priority order and run them one at a time."""
        assert self._loop is not None
        while True:
            _, job = await self._queue.get()
            if job.state != "queued":
                continue  # cancelled while waiting
            self._queue_depth.dec()
            job.set_state("running")
            start = time.perf_counter()
            try:
                payload = await self._loop.run_in_executor(
                    self._executor, self._execute, job
                )
            except CampaignCancelled as exc:
                job.wall_seconds = time.perf_counter() - start
                job.state = "cancelled"
                self._cancelled.inc()
                job.publish({
                    "event": "cancelled", "done": exc.done, "total": exc.total,
                })
            except Exception as exc:
                job.wall_seconds = time.perf_counter() - start
                job.state = "failed"
                self._failed.inc()
                job.publish({
                    "event": "error",
                    "message": f"{type(exc).__name__}: {exc}",
                })
            else:
                job.wall_seconds = time.perf_counter() - start
                job.state = "done"
                self._completed.inc()
                self._job_seconds.observe(job.wall_seconds)
                payload["wall_seconds"] = round(job.wall_seconds, 6)
                job.publish(payload)

    def _execute(self, job: Job) -> dict[str, Any]:
        """Run one campaign (executor thread); returns the result event."""
        spec = job.spec
        experiment = get_experiment(spec.experiment)
        loop = self._loop
        assert loop is not None

        def on_progress(done: int, total: int) -> None:
            loop.call_soon_threadsafe(self._note_progress, job, done, total)

        runner = CampaignRunner(
            jobs=self.jobs,
            base_seed=spec.seed,
            campaign=spec.experiment,
            cache=self.cache,
            manifest=self._manifest_path(job),
            pool=self.pool,
            cancel=job.cancel_event,
            on_progress=on_progress,
        )
        result = experiment.run(**spec.kwargs, seed=spec.seed, runner=runner)
        return {
            "event": "result",
            "status": experiment.status(result),
            "output": experiment.render(result),
            "manifest": str(runner.last_manifest_path)
            if runner.last_manifest_path is not None else None,
            "metrics": [dict(r) for r in runner.last_snapshot.records],
            "shards": len(runner.last_shard_rows),
            "cached_shards": sum(1 for r in runner.last_shard_rows if r.cached),
        }

    def _manifest_path(self, job: Job) -> Path:
        """One manifest per job, content-addressed like its cache entries."""
        return manifest_dir() / "service" / f"{job.key}.jsonl"

    def _note_progress(self, job: Job, done: int, total: int) -> None:
        job.progress_done, job.progress_total = done, total
        job.publish({"event": "progress", "done": done, "total": total})

    # ------------------------------------------------------------- protocol

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = decode(line)
                op = request.get("op")
                handler = {
                    "submit": self._op_submit,
                    "status": self._op_status,
                    "watch": self._op_watch,
                    "cancel": self._op_cancel,
                    "shutdown": self._op_shutdown,
                }.get(op)
                if handler is None:
                    raise ProtocolError(f"unknown op {op!r}")
                await handler(request, writer)
            except (ProtocolError, KeyError) as exc:
                message = exc.args[0] if exc.args else str(exc)
                await self._send(writer, {"event": "error", "message": str(message)})
        except (ConnectionResetError, BrokenPipeError):
            pass  # the client went away; its job (if any) keeps running
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _send(self, writer: asyncio.StreamWriter,
                    event: dict[str, Any]) -> None:
        writer.write(encode(event))
        await writer.drain()

    async def _stream(self, job: Job, writer: asyncio.StreamWriter) -> None:
        queue = job.subscribe()
        try:
            while True:
                event = await queue.get()
                await self._send(writer, event)
                if event.get("event") in TERMINAL_EVENTS:
                    return
        finally:
            job.unsubscribe(queue)

    async def _op_submit(self, request: dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        spec = JobSpec.from_payload(request.get("spec"))
        job, coalesced = self.submit(spec)
        await self._send(writer, {
            "event": "accepted",
            "job_id": job.job_id,
            "key": job.key,
            "experiment": spec.experiment,
            "state": job.state,
            "deduped": coalesced,
        })
        if request.get("watch", True):
            await self._stream(job, writer)

    async def _op_watch(self, request: dict[str, Any],
                        writer: asyncio.StreamWriter) -> None:
        job = self._jobs.get(str(request.get("job_id")))
        if job is None:
            raise ProtocolError(f"unknown job {request.get('job_id')!r}")
        await self._stream(job, writer)

    async def _op_cancel(self, request: dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        job = self.cancel(str(request.get("job_id")))
        await self._send(writer, {
            "event": "cancel-ack", "job_id": job.job_id, "state": job.state,
        })

    async def _op_status(self, request: dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        job_id = request.get("job_id")
        if job_id is not None:
            job = self._jobs.get(str(job_id))
            if job is None:
                raise ProtocolError(f"unknown job {job_id!r}")
            rows = [job.snapshot()]
        else:
            rows = [job.snapshot() for job in self._jobs.values()]
        await self._send(writer, {
            "event": "status",
            "jobs": rows,
            "experiments": experiment_names(),
            "service": {
                "address": self.address,
                "workers": self.jobs,
                "queue_depth": int(self._queue_depth.value),
                "submitted": int(self._submitted.value),
                "coalesced": int(self._coalesced.value),
                "completed": int(self._completed.value),
                "failed": int(self._failed.value),
                "cancelled": int(self._cancelled.value),
            },
        })

    async def _op_shutdown(self, request: dict[str, Any],
                           writer: asyncio.StreamWriter) -> None:
        await self._send(writer, {"event": "shutdown"})
        self.request_shutdown()


# ----------------------------------------------------------------- hosting


def serve(socket_path: "str | Path | None" = None, host: str = "127.0.0.1",
          port: int | None = None, jobs: int | None = None,
          cache: Any = True) -> int:
    """Blocking entry point behind ``phantom-delay serve``."""

    async def _amain() -> None:
        service = CampaignService(jobs=jobs, cache=cache)
        if port is not None:
            await service.start(host=host, port=port)
        else:
            from .client import default_socket_path

            await service.start(socket_path=socket_path or default_socket_path())
        print(f"phantom-delay service listening on {service.address}",
              flush=True)
        try:
            await service.wait_shutdown()
        finally:
            await service.close()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass
    return 0


class ServiceHandle:
    """A service hosted on a background thread (tests, embedding)."""

    def __init__(self, service: CampaignService,
                 thread: threading.Thread) -> None:
        self.service = service
        self.thread = thread

    @property
    def address(self) -> str:
        return self.service.address

    def stop(self, timeout: float = 30.0) -> None:
        self.service.request_shutdown()
        self.thread.join(timeout=timeout)


def start_in_thread(socket_path: "str | Path", jobs: int | None = 1,
                    cache: Any = True, timeout: float = 30.0) -> ServiceHandle:
    """Run a :class:`CampaignService` on a daemon thread until stopped.

    The thread owns the event loop; the caller talks to the service over
    its unix socket with :class:`~repro.service.client.ServiceClient`.
    """
    started = threading.Event()
    holder: dict[str, Any] = {}

    async def _amain() -> None:
        service = CampaignService(jobs=jobs, cache=cache)
        await service.start(socket_path=socket_path)
        holder["service"] = service
        started.set()
        try:
            await service.wait_shutdown()
        finally:
            await service.close()

    def _main() -> None:
        try:
            asyncio.run(_amain())
        except BaseException as exc:  # surface startup failures to the caller
            holder.setdefault("error", exc)
            started.set()

    thread = threading.Thread(target=_main, name="campaign-service", daemon=True)
    thread.start()
    if not started.wait(timeout=timeout):
        raise RuntimeError("campaign service did not start in time")
    if "error" in holder:
        raise RuntimeError("campaign service failed to start") from holder["error"]
    return ServiceHandle(holder["service"], thread)
