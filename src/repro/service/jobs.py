"""Job bookkeeping for the campaign service.

A :class:`Job` is one accepted :class:`~repro.service.protocol.JobSpec`
plus its lifecycle: ``queued → running → done | failed | cancelled``.
All state transitions and event fan-out happen on the service's event
loop (worker threads hand events over via ``call_soon_threadsafe``), so
subscribers never observe a half-applied transition; the lone cross-thread
member is ``cancel_event``, the ``threading.Event`` the runner polls
between shard completions.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from .protocol import JobSpec

#: Lifecycle states; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class Job:
    """One submitted campaign and everything its watchers can see."""

    def __init__(self, job_id: str, spec: JobSpec, key: str, order: int) -> None:
        self.job_id = job_id
        self.spec = spec
        self.key = key
        #: FIFO tiebreaker within one priority band.
        self.order = order
        self.state = "queued"
        self.progress_done = 0
        self.progress_total = 0
        #: Payload of the terminal event (result/cancelled/error fields).
        self.final_event: dict[str, Any] | None = None
        #: How many submissions coalesced onto this execution (1 = just
        #: the original submitter).
        self.submissions = 1
        self.wall_seconds = 0.0
        self.cancel_event = threading.Event()
        self._subscribers: list[asyncio.Queue] = []

    # ---------------------------------------------------------------- state

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def active(self) -> bool:
        return not self.terminal

    def snapshot(self) -> dict[str, Any]:
        """The ``status`` view of this job (one JSON-able dict)."""
        return {
            "job_id": self.job_id,
            "key": self.key,
            "experiment": self.spec.experiment,
            "seed": self.spec.seed,
            "priority": self.spec.priority,
            "state": self.state,
            "done": self.progress_done,
            "total": self.progress_total,
            "submissions": self.submissions,
            "wall_seconds": round(self.wall_seconds, 6),
            "exit_status": (self.final_event or {}).get("status"),
            "manifest": (self.final_event or {}).get("manifest"),
        }

    # ---------------------------------------------------------------- events

    def subscribe(self) -> asyncio.Queue:
        """A queue of this job's events from now on (loop thread only).

        If the job is already terminal the stored final event is replayed
        into the fresh queue, so late watchers still get a terminal line.
        """
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        if self.final_event is not None:
            queue.put_nowait(self.final_event)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    def publish(self, event: dict[str, Any]) -> None:
        """Fan an event out to every watcher (loop thread only)."""
        event = {"job_id": self.job_id, **event}
        if event.get("event") in ("result", "cancelled", "error"):
            self.final_event = event
        for queue in self._subscribers:
            queue.put_nowait(event)

    def set_state(self, state: str) -> None:
        assert state in JOB_STATES, state
        self.state = state
        if state not in TERMINAL_STATES:
            self.publish({"event": "state", "state": state})
