"""Line-JSON wire protocol shared by the campaign service and its clients.

Every message is one JSON object per ``\\n``-terminated line, UTF-8.  A
client connection carries exactly one request line; the server answers
with one or more event lines and closes (``watch``/``submit`` stream
until the job reaches a terminal event).

Requests::

    {"op": "submit", "spec": {"experiment": ..., "kwargs": {...},
                              "seed": ..., "priority": ...}, "watch": true}
    {"op": "status", "job_id": "job-3"}        # job_id optional: all jobs
    {"op": "watch",  "job_id": "job-3"}
    {"op": "cancel", "job_id": "job-3"}
    {"op": "shutdown"}

Server events: ``accepted``, ``state``, ``progress``, ``result``,
``cancelled``, ``error``, ``status``, ``shutdown`` — see ``docs/API.md``.

A :class:`JobSpec`'s identity is its content address: the BLAKE2b digest
of ``(experiment, canonical(kwargs), seed)`` computed with the exact
machinery ``repro.cache`` keys shards with, so two submissions describe
the same job iff they would execute the same campaign.  ``priority`` and
transport options deliberately stay out of the key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: Bump on incompatible protocol changes; carried in every job key so two
#: protocol generations never coalesce onto one another's jobs.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A malformed request or spec; reported to the client, never fatal."""


def encode(message: dict[str, Any]) -> bytes:
    """One canonical JSON line (sorted keys, no stray newlines)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict[str, Any]:
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty request")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


@dataclass(frozen=True)
class JobSpec:
    """One campaign submission: experiment name + kwargs + seed."""

    experiment: str
    kwargs: dict[str, Any] = field(default_factory=dict)
    seed: int = 7
    #: Larger runs first; ties break FIFO by submission order.
    priority: int = 0

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ProtocolError("spec must be a JSON object")
        experiment = payload.get("experiment")
        if not isinstance(experiment, str) or not experiment:
            raise ProtocolError("spec.experiment must be a non-empty string")
        kwargs = payload.get("kwargs", {})
        if not isinstance(kwargs, dict):
            raise ProtocolError("spec.kwargs must be a JSON object")
        seed = payload.get("seed", 7)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ProtocolError("spec.seed must be an integer")
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ProtocolError("spec.priority must be an integer")
        unknown = set(payload) - {"experiment", "kwargs", "seed", "priority"}
        if unknown:
            raise ProtocolError(f"unknown spec field(s): {sorted(unknown)}")
        return cls(experiment=experiment, kwargs=dict(kwargs), seed=seed,
                   priority=priority)

    def to_payload(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "kwargs": self.kwargs,
            "seed": self.seed,
            "priority": self.priority,
        }

    def key(self) -> str:
        """Content address: same digest machinery as the shard cache.

        Two specs share a key iff they would execute the identical
        campaign, which is exactly the in-flight dedup rule.
        """
        from ..cache.keys import canonical, digest

        return digest(
            b"service-job/%d" % PROTOCOL_VERSION,
            self.experiment.encode("utf-8"),
            canonical(self.kwargs),
            b"%d" % self.seed,
        )
