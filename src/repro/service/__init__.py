"""Campaign service: an async job-queue front-end over cache + runner.

``CampaignService`` accepts JSON campaign specs over a line-JSON socket
protocol, content-addresses each one with the cache's digest machinery
(duplicate submissions coalesce onto one execution), schedules jobs by
priority onto one shared worker pool, supports cooperative cancellation,
and streams progress plus a terminal result that is byte-identical to the
equivalent one-shot CLI invocation.
"""

from .client import (
    DEFAULT_TIMEOUT,
    SERVICE_SOCKET_ENV,
    ServiceClient,
    default_socket_path,
    wait_for_service,
)
from .jobs import JOB_STATES, TERMINAL_STATES, Job
from .protocol import PROTOCOL_VERSION, JobSpec, ProtocolError, decode, encode
from .server import (
    LINE_LIMIT,
    CampaignService,
    ServiceHandle,
    serve,
    start_in_thread,
)

__all__ = [
    "CampaignService",
    "DEFAULT_TIMEOUT",
    "JOB_STATES",
    "Job",
    "JobSpec",
    "LINE_LIMIT",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SERVICE_SOCKET_ENV",
    "ServiceClient",
    "ServiceHandle",
    "TERMINAL_STATES",
    "decode",
    "default_socket_path",
    "encode",
    "serve",
    "start_in_thread",
    "wait_for_service",
]
