"""Schedule planning and witness shrinking over generated programs.

For each generated program the planner runs one baseline trace, then
explores candidate hold/release schedules **in a fixed documented order**
until one induces a verified violation (or the candidate budget runs
out).  Candidate order:

1. the *saturation* schedule — one maximum-safe hold per condition
   device, each armed between that device's last two stimuli (the window
   the bait stories leave open); then
2. single-hold candidates, one per ``(device, stimulus index)`` pair in
   spec device order then stimulus order, armed at the midpoint of the
   previous same-device stimulus (so an earlier event of the same size
   cannot trip the hold early — Case 5's arming note) or ``lead``
   seconds before a first stimulus.

A hit is then handed to the deterministic shrinker: greedy hold removal
in fixed index order (repeated until a fixed point), then a per-hold
duration descent over the config ladder — each step re-verified against
the baseline, the primary violation class required to survive, and the
schedule never allowed to grow.  The minimal witness is re-verified one
final time before it becomes a corpus case.

Work is sharded as fixed-size program batches over
:class:`~repro.parallel.runner.CampaignRunner` (key
``search/batch/<start>+<count>``, ``pass_seed=False``), so the batch
partition — and with it every cache address — is a pure function of the
program range, never of ``--jobs``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Sequence

from ..automation.dsl import parse_rule
from ..cache.keys import canonical
from ..obs.metrics import MetricsRegistry
from ..parallel import CampaignRunner, Shard
from .engine import BehaviorTrace, run_program
from .generator import RuleSetGenerator
from .oracles import classify, primary_class
from .spec import Hold, ProgramSpec, Schedule, SearchConfig, schedule_to_lists

#: Programs per shard.  Fixed (never derived from ``jobs``) so the batch
#: partition — and every shard key and cache address — is a pure function
#: of the search size.
DEFAULT_BATCH_SIZE = 8


# ------------------------------------------------------------- candidates


def _stimuli_of(spec: ProgramSpec, device_id: str):
    return [s for s in spec.stimuli if s.device_id == device_id]


def _hold_for(spec: ProgramSpec, device_id: str, index: int,
              config: SearchConfig) -> Hold:
    """A maximum-safe hold armed just before the device's ``index``-th
    stimulus — after the previous same-device stimulus, whose event size
    would otherwise trip the hold early."""
    stimuli = _stimuli_of(spec, device_id)
    stimulus = stimuli[index]
    if index == 0:
        at = stimulus.at - config.lead
    else:
        at = (stimuli[index - 1].at + stimulus.at) / 2.0
    return Hold(device_id=device_id, at=round(at, 3), duration=None)


def condition_devices(spec: ProgramSpec) -> list[str]:
    """Condition device ids in first-appearance order across the rules."""
    seen: list[str] = []
    for line in spec.rules:
        rule = parse_rule(line, rule_id="probe")
        if rule.condition is not None and rule.condition.device_id not in seen:
            seen.append(rule.condition.device_id)
    return seen


def candidate_schedules(spec: ProgramSpec,
                        config: SearchConfig) -> list[Schedule]:
    """Candidate hold schedules in the fixed exploration order."""
    candidates: list[Schedule] = []
    saturation = tuple(
        _hold_for(spec, device_id, len(_stimuli_of(spec, device_id)) - 1,
                  config)
        for device_id in condition_devices(spec)
        if _stimuli_of(spec, device_id)
    )
    if saturation:
        candidates.append(saturation)
    for label in spec.devices:
        device_id = label.lower()
        for index in range(len(_stimuli_of(spec, device_id))):
            single = (_hold_for(spec, device_id, index, config),)
            if single not in candidates:
                candidates.append(single)
    return candidates[:config.max_candidates]


# --------------------------------------------------------------- shrinking


def shrink(
    spec: ProgramSpec,
    schedule: Schedule,
    violation: str,
    baseline: BehaviorTrace,
    config: SearchConfig,
) -> tuple[Schedule, int]:
    """Minimise a violating schedule; returns ``(witness, steps)``.

    Every step re-runs the program and keeps the change only if the
    primary violation class survives with the invariants silent; the
    schedule only ever loses holds or swaps a maximum-safe hold for a
    finite duration, never grows.
    """
    steps = 0

    def still_violates(candidate: Schedule) -> bool:
        nonlocal steps
        steps += 1
        trace = run_program(spec, candidate)
        found = classify(baseline, trace, config.delay_threshold)
        return (primary_class(found) == violation
                and not trace.invariant_violations)

    current = tuple(schedule)
    changed = True
    while changed and len(current) > 1:
        changed = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1:]
            if still_violates(candidate):
                current = candidate
                changed = True
                break
    minimized: list[Hold] = []
    for index, hold in enumerate(current):
        if hold.duration is None:
            for duration in sorted(config.duration_ladder):
                candidate = (tuple(minimized)
                             + (replace(hold, duration=duration),)
                             + current[index + 1:])
                if still_violates(candidate):
                    hold = replace(hold, duration=duration)
                    break
        minimized.append(hold)
    return tuple(minimized), steps


# ------------------------------------------------------------- one program


def case_digest(spec_digest: str, schedule: Schedule, violation: str) -> str:
    """Content address of one violation case (spec x witness x class)."""
    payload = {
        "spec": spec_digest,
        "schedule": schedule_to_lists(schedule),
        "violation": violation,
    }
    return hashlib.blake2b(canonical(payload), digest_size=16).hexdigest()


def plan_program(spec: ProgramSpec, config: SearchConfig) -> dict[str, Any]:
    """Search one program for a minimal verified violation witness.

    Returns ``{"program_index", "explored", "hit"}`` where ``hit`` is the
    JSON-able corpus case record, or None when no candidate within the
    budget induced a verified violation.
    """
    baseline = run_program(spec)
    explored = 0
    for schedule in candidate_schedules(spec, config):
        attacked = run_program(spec, schedule)
        explored += 1
        violations = classify(baseline, attacked, config.delay_threshold)
        if (not violations or attacked.invariant_violations
                or baseline.invariant_violations):
            continue
        violation = primary_class(violations)
        witness, shrink_steps = shrink(spec, schedule, violation, baseline,
                                       config)
        final = run_program(spec, witness)
        final_violations = classify(baseline, final, config.delay_threshold)
        verified = (primary_class(final_violations) == violation
                    and not final.invariant_violations)
        if not verified:
            # The shrinker's acceptance runs make this unreachable in
            # practice; a hit that fails its final re-verification is
            # dropped rather than emitted unverified.
            continue
        spec_digest = spec.digest()
        hit = {
            "schema": spec.schema,
            "program_index": spec.program_index,
            "seed": spec.seed,
            "spec": spec.to_dict(),
            "spec_digest": spec_digest,
            "schedule": schedule_to_lists(witness),
            "violation": violation,
            "violations": [dict(v) for v in final_violations],
            "baseline_digest": baseline.digest(),
            "attacked_digest": final.digest(),
            "explored": explored,
            "shrink_steps": shrink_steps,
            "verified": True,
            "case_digest": case_digest(spec_digest, witness, violation),
        }
        return {"program_index": spec.program_index, "explored": explored,
                "hit": hit}
    return {"program_index": spec.program_index, "explored": explored,
            "hit": None}


# --------------------------------------------------------------- one batch


def search_batch(
    start: int,
    count: int,
    base_seed: int,
    config: dict[str, Any] | None = None,
) -> list[dict[str, Any]]:
    """Shard function: generate and search programs ``start .. start+count-1``.

    Module-level and pure — workers import it by qualified name and the
    cache addresses it by ``(start, count, base_seed, config)``.  Search
    telemetry (candidates explored, hits, shrink steps) is recorded into
    a registry that auto-registers with the active telemetry capture, so
    it merges into the campaign snapshot and manifest.
    """
    cfg = SearchConfig.from_dict(config)
    generator = RuleSetGenerator(base_seed, cfg)
    registry = MetricsRegistry()
    programs = registry.counter("search", "programs")
    candidates = registry.counter("search", "candidates_explored")
    hits = registry.counter("search", "hits")
    shrink_steps = registry.counter("search", "shrink_steps")
    rows: list[dict[str, Any]] = []
    for index in range(start, start + count):
        outcome = plan_program(generator.sample(index), cfg)
        programs.inc()
        candidates.inc(outcome["explored"])
        hit = outcome["hit"]
        if hit is not None:
            hits.inc()
            shrink_steps.inc(hit["shrink_steps"])
            registry.counter("search", "violations",
                             kind=hit["violation"]).inc()
        rows.append(outcome)
    return rows


# -------------------------------------------------------------- the search


@dataclass
class SearchReport:
    """Aggregate account of one adversarial search campaign."""

    programs: int
    explored: int
    hits: tuple[dict[str, Any], ...]
    corpus_digest: str
    wall_seconds: float
    case_paths: tuple[Path, ...] = ()
    corpus_dir: Path | None = None
    manifest_path: Path | None = None
    runner_summary: str = ""

    @property
    def hit_rate(self) -> float:
        return len(self.hits) / self.programs if self.programs else 0.0

    @property
    def candidates_per_second(self) -> float:
        return self.explored / self.wall_seconds if self.wall_seconds else 0.0


class SearchRunner:
    """Steps an adversarial search in batches across the campaign pool."""

    def __init__(
        self,
        programs: int,
        base_seed: int = 0,
        jobs: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        config: SearchConfig | None = None,
        cache: Any = None,
        manifest: Any = True,
        campaign: str = "search",
        registry: MetricsRegistry | None = None,
    ) -> None:
        if programs < 0:
            raise ValueError(f"program count must be >= 0: {programs}")
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1: {batch_size}")
        self.programs = programs
        self.base_seed = base_seed
        self.batch_size = batch_size
        self.config = config or SearchConfig()
        self.campaign = campaign
        self.runner = CampaignRunner(
            jobs=jobs, base_seed=base_seed, campaign=campaign, cache=cache,
            manifest=manifest, registry=registry,
        )

    def shards(self) -> list[Shard]:
        """The search's batch partition — jobs- and cache-independent."""
        config = (
            None if self.config == SearchConfig() else self.config.to_dict()
        )
        out = []
        for start in range(0, self.programs, self.batch_size):
            count = min(self.batch_size, self.programs - start)
            out.append(Shard(
                key=f"search/batch/{start}+{count}",
                fn=search_batch,
                kwargs={
                    "start": start,
                    "count": count,
                    "base_seed": self.base_seed,
                    "config": config,
                },
                # Per-program seeds derive from (base_seed, program index)
                # inside the batch; a shard-level seed would vary with
                # batching.
                pass_seed=False,
            ))
        return out

    def run(self, corpus_dir: "str | Path | None" = None) -> SearchReport:
        from .corpus import corpus_digest, write_corpus

        start = time.perf_counter()
        batches = self.runner.run(self.shards())
        wall = time.perf_counter() - start
        rows = [row for batch in batches if batch is not None for row in batch]
        hits = tuple(row["hit"] for row in rows if row["hit"] is not None)
        case_paths: tuple[Path, ...] = ()
        out_dir: Path | None = None
        if corpus_dir is not None:
            out_dir = Path(corpus_dir)
            case_paths = tuple(write_corpus(hits, out_dir))
        return SearchReport(
            programs=len(rows),
            explored=sum(row["explored"] for row in rows),
            hits=hits,
            corpus_digest=corpus_digest(hits),
            wall_seconds=wall,
            case_paths=case_paths,
            corpus_dir=out_dir,
            manifest_path=self.runner.last_manifest_path,
            runner_summary=self.runner.summary(),
        )


def run_search(
    programs: int,
    seed: int = 0,
    jobs: int | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    config: SearchConfig | None = None,
    cache: Any = None,
    manifest: Any = True,
    campaign: str = "search",
    corpus_dir: "str | Path | None" = None,
) -> SearchReport:
    """One-call adversarial search (the CLI and bench entry point)."""
    runner = SearchRunner(
        programs=programs, base_seed=seed, jobs=jobs, batch_size=batch_size,
        config=config, cache=cache, manifest=manifest, campaign=campaign,
    )
    return runner.run(corpus_dir=corpus_dir)


def plan_specs(specs: Sequence[ProgramSpec],
               config: SearchConfig | None = None) -> list[dict[str, Any]]:
    """Plan a fixed spec list serially (the Table III differential path)."""
    cfg = config or SearchConfig()
    return [plan_program(spec, cfg) for spec in specs]
