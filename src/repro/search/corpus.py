"""Violation-case corpus: one JSONL file per verified minimal witness.

Every verified hit is written as a single-line, sorted-key JSON record —
the program spec, the shrunk minimal schedule, the classified violations,
and the content digests that make the case replayable and byte-comparable
across machines.  File names embed the case digest
(``case-<program_index>-<digest12>.jsonl``) so a corpus directory is
content-addressed: identical searches produce byte-identical trees, and
:func:`corpus_digest` folds the case digests into one campaign-level
address (the value the CI smoke and differential goldens pin).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from .spec import SEARCH_SCHEMA


def case_filename(case: dict[str, Any]) -> str:
    index = case["program_index"]
    sign = "t" if index < 0 else ""
    return f"case-{sign}{abs(index):05d}-{case['case_digest'][:12]}.jsonl"


def write_case(case: dict[str, Any], directory: Path) -> Path:
    """Write one case record; returns the path (stable for stable cases)."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / case_filename(case)
    line = json.dumps(case, sort_keys=True, separators=(",", ":"))
    path.write_text(line + "\n", encoding="utf-8")
    return path


def write_corpus(cases: Sequence[dict[str, Any]],
                 directory: "str | Path") -> list[Path]:
    """Write every case, ordered by program index; returns the paths."""
    directory = Path(directory)
    return [
        write_case(case, directory)
        for case in sorted(cases, key=lambda c: c["program_index"])
    ]


def read_case(path: "str | Path") -> dict[str, Any]:
    """Load one case file, refusing records from a newer schema."""
    record = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = record.get("schema", 0)
    if schema > SEARCH_SCHEMA:
        raise ValueError(
            f"corpus case schema {schema} is newer than supported "
            f"({SEARCH_SCHEMA}); upgrade the tooling"
        )
    return record


def read_corpus(directory: "str | Path") -> list[dict[str, Any]]:
    """Load every case in a corpus directory, in file-name order."""
    return [
        read_case(path)
        for path in sorted(Path(directory).glob("case-*.jsonl"))
    ]


def corpus_digest(cases: Iterable[dict[str, Any]]) -> str:
    """Order-insensitive content address of a whole corpus.

    Folds the (sorted) case digests, so the value is invariant to batch
    partition, worker count, and cache state — the byte-identity the
    determinism tests and the CI smoke compare.
    """
    digest = hashlib.blake2b(digest_size=16)
    for case_digest in sorted(c["case_digest"] for c in cases):
        digest.update(case_digest.encode("ascii"))
    return digest.hexdigest()
