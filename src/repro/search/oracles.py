"""Differential violation oracles over paired behaviour traces.

Each oracle compares the baseline trace of a program against the trace of
the same program under a candidate hold schedule and reports semantic
violations — the observable consequences the paper's Section V taxonomy
names.  The classes, in priority order:

* ``spurious-execution`` — a rule's action ran in the attacked run more
  often than in the baseline (the condition was stale-true; Cases 5-8);
* ``disabled-execution`` — a rule's action ran *less* often (the
  condition was stale-false, or the trigger was discarded as stale;
  Cases 4, 9-11);
* ``action-disorder`` — a device received the same commands in a
  different order (Section V-B's opposite-actions disordering);
* ``delay`` — an action or notification happened in both runs but at
  least ``threshold`` seconds later when attacked (Type-I/II, Cases 1-3).

Oracles are pure functions of the two traces; hits are only *verified*
when the attacked run's :class:`~repro.faults.InvariantSuite` stayed
silent (checked by the planner, not here).
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from .engine import BehaviorTrace

SPURIOUS = "spurious-execution"
DISABLED = "disabled-execution"
DISORDER = "action-disorder"
DELAY = "delay"

#: Most severe first; the first class present is a hit's primary class.
CLASS_PRIORITY = (SPURIOUS, DISABLED, DISORDER, DELAY)


def _fired_counts(trace: BehaviorTrace) -> Counter:
    return Counter(
        rule_id for _ts, rule_id, _ev, _cond, taken in trace.firings if taken
    )


def _command_sequences(trace: BehaviorTrace) -> dict[str, list[str]]:
    sequences: dict[str, list[str]] = {}
    for _ts, device_id, command in trace.actions:
        sequences.setdefault(device_id, []).append(command)
    return sequences


def _first_times(trace: BehaviorTrace) -> dict[tuple[str, str], float]:
    first: dict[tuple[str, str], float] = {}
    for ts, device_id, command in trace.actions:
        first.setdefault((device_id, command), ts)
    return first


def _first_deliveries(trace: BehaviorTrace) -> dict[tuple[str, str], float]:
    first: dict[tuple[str, str], float] = {}
    for _sent, channel, message, delivered in trace.notifications:
        if delivered is not None:
            first.setdefault((channel, message), delivered)
    return first


def classify(
    baseline: BehaviorTrace,
    attacked: BehaviorTrace,
    threshold: float = 5.0,
) -> tuple[dict[str, Any], ...]:
    """Every violation the attacked trace exhibits, most severe first.

    Returns a tuple of plain dicts (JSON-able: they ride in corpus case
    files) sorted by ``CLASS_PRIORITY`` then subject, so the result is
    deterministic for deterministic traces.
    """
    violations: list[dict[str, Any]] = []

    base_fired = _fired_counts(baseline)
    atk_fired = _fired_counts(attacked)
    for rule_id in sorted(set(base_fired) | set(atk_fired)):
        base_n, atk_n = base_fired[rule_id], atk_fired[rule_id]
        if atk_n > base_n:
            violations.append({
                "class": SPURIOUS, "rule_id": rule_id,
                "baseline_firings": base_n, "attacked_firings": atk_n,
            })
        elif atk_n < base_n:
            violations.append({
                "class": DISABLED, "rule_id": rule_id,
                "baseline_firings": base_n, "attacked_firings": atk_n,
            })

    base_seq = _command_sequences(baseline)
    atk_seq = _command_sequences(attacked)
    for device_id in sorted(set(base_seq) & set(atk_seq)):
        b, a = base_seq[device_id], atk_seq[device_id]
        if len(b) >= 2 and b != a and sorted(b) == sorted(a):
            violations.append({
                "class": DISORDER, "device_id": device_id,
                "baseline_order": list(b), "attacked_order": list(a),
            })

    base_first = _first_times(baseline)
    atk_first = _first_times(attacked)
    for key in sorted(set(base_first) & set(atk_first)):
        delta = atk_first[key] - base_first[key]
        if delta >= threshold:
            device_id, command = key
            violations.append({
                "class": DELAY, "device_id": device_id, "command": command,
                "delta_seconds": round(delta, 9),
            })
    base_notes = _first_deliveries(baseline)
    atk_notes = _first_deliveries(attacked)
    for key in sorted(set(base_notes) & set(atk_notes)):
        delta = atk_notes[key] - base_notes[key]
        if delta >= threshold:
            channel, message = key
            violations.append({
                "class": DELAY, "channel": channel, "message": message,
                "delta_seconds": round(delta, 9),
            })

    violations.sort(key=lambda v: (
        CLASS_PRIORITY.index(v["class"]),
        v.get("rule_id", ""), v.get("device_id", ""),
        v.get("command", ""), v.get("message", ""),
    ))
    return tuple(violations)


def primary_class(violations: tuple[dict[str, Any], ...]) -> str | None:
    """The most severe class present, or None for a clean pair."""
    return violations[0]["class"] if violations else None
