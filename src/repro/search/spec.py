"""Search-space specifications: one generated TAP program, as data.

A :class:`ProgramSpec` is everything needed to reconstruct one generated
trigger-condition-action program byte-identically anywhere: the derived
seed, the device mix, the rule set (as DSL text), the pre-seeded device
states, the stimulus timeline, and the integration policy.  A
:class:`Hold` is one attacker hold in a candidate schedule; a schedule is
a tuple of holds.  Specs are frozen, picklable, JSON-round-trippable, and
schema-versioned exactly like :mod:`repro.fleet.spec`: a loader refuses
specs written by a *newer* schema rather than silently misreading them.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Any

from ..cache.keys import canonical
from ..fleet.spec import Stimulus

#: Bump when the spec layout, the generator draw order, or the planner
#: candidate order changes incompatibly; loaders reject newer specs.
SEARCH_SCHEMA = 1


@dataclass(frozen=True)
class Hold:
    """One attacker hold: arm an e-Delay on ``device_id`` at ``at``.

    ``at`` is seconds after the timeline start (the same frame as
    :class:`~repro.fleet.spec.Stimulus.at`); ``duration=None`` holds for
    the maximum safe window the device's timeout behaviour allows.
    """

    device_id: str
    at: float
    duration: float | None = None

    def to_list(self) -> list[Any]:
        return [self.device_id, self.at, self.duration]

    @classmethod
    def from_list(cls, record: list[Any]) -> "Hold":
        return cls(device_id=record[0], at=record[1], duration=record[2])


Schedule = tuple[Hold, ...]


def schedule_to_lists(schedule: Schedule) -> list[list[Any]]:
    return [hold.to_list() for hold in schedule]


def schedule_from_lists(records: list[list[Any]]) -> Schedule:
    return tuple(Hold.from_list(record) for record in records)


@dataclass(frozen=True)
class ProgramSpec:
    """A complete, reconstructible description of one generated program."""

    program_index: int
    seed: int
    #: Catalogue labels (cloud table); hub children pull their hubs in.
    devices: tuple[str, ...]
    #: Automation rules as DSL lines (``WHEN ... THEN ...``).
    rules: tuple[str, ...]
    #: Device states seeded before settle: ``(device_id, value)`` pairs.
    initial_states: tuple[tuple[str, str], ...] = ()
    #: Integration event-discard window (Case 4's 30 s), or None.
    integration_staleness: float | None = None
    #: Simulated seconds the timeline runs after the observe window.
    duration: float = 120.0
    stimuli: tuple[Stimulus, ...] = ()
    schema: int = SEARCH_SCHEMA
    #: Free-form provenance (generator config digest etc.), not identity.
    meta: dict[str, Any] = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------- identity

    def digest(self) -> str:
        """Content address of this spec (identity excludes ``meta``)."""
        payload = self.to_dict()
        payload.pop("meta", None)
        return hashlib.blake2b(canonical(payload), digest_size=16).hexdigest()

    # ---------------------------------------------------------- (de)serialise

    def to_dict(self) -> dict[str, Any]:
        record = asdict(self)
        record["devices"] = list(self.devices)
        record["rules"] = list(self.rules)
        record["initial_states"] = [list(pair) for pair in self.initial_states]
        record["stimuli"] = [list(s.to_tuple()) for s in self.stimuli]
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "ProgramSpec":
        schema = record.get("schema", 0)
        if schema > SEARCH_SCHEMA:
            raise ValueError(
                f"program spec schema {schema} is newer than supported "
                f"({SEARCH_SCHEMA}); upgrade the tooling"
            )
        return cls(
            program_index=record["program_index"],
            seed=record["seed"],
            devices=tuple(record["devices"]),
            rules=tuple(record["rules"]),
            initial_states=tuple(
                (pair[0], pair[1]) for pair in record.get("initial_states", ())
            ),
            integration_staleness=record.get("integration_staleness"),
            duration=record.get("duration", 120.0),
            stimuli=tuple(
                Stimulus(at=s[0], device_id=s[1], value=s[2])
                for s in record.get("stimuli", ())
            ),
            schema=schema,
            meta=dict(record.get("meta", {})),
        )


@dataclass(frozen=True)
class SearchConfig:
    """Generator and planner knobs for one adversarial search campaign.

    The generator defaults bias toward *attackable* structure: most rules
    carry an IF condition on a second device (conditions are what the
    erroneous-execution attacks subvert) and every rule gets a bait story
    in the stimulus timeline.  The config rides inside shard kwargs, so
    it must stay a plain frozen dataclass of JSON-able values.
    """

    # -- generator ---------------------------------------------------------
    min_sensors: int = 2
    max_sensors: int = 4
    max_actuators: int = 2
    min_rules: int = 1
    max_rules: int = 3
    #: Probability a rule carries an IF condition on a second device
    #: (high: conditioned rules are the interesting part of the space).
    condition_probability: float = 0.7
    #: Probability a rule commands an actuator (vs notifying the user).
    command_probability: float = 0.6
    #: Probability a conditioned rule's bait story seeds the condition
    #: *true first* (spurious bait) vs *false first* (disabled bait).
    spurious_bait_probability: float = 0.5
    #: Seconds between the two bait events, and between bait and trigger.
    gap_range: tuple[float, float] = (4.0, 8.0)
    #: Idle seconds between consecutive rule stories.
    story_spacing: tuple[float, float] = (6.0, 10.0)
    #: Idle tail after the last stimulus (late holds must still release).
    tail_range: tuple[float, float] = (20.0, 40.0)

    # -- planner -----------------------------------------------------------
    #: Candidate schedules explored per program before giving up.
    max_candidates: int = 8
    #: Seconds before a device's first stimulus at which a hold arms.
    lead: float = 2.0
    #: Minimum attacked-vs-baseline latency shift that counts as a
    #: delay-class violation.
    delay_threshold: float = 5.0
    #: Finite durations the shrinker tries (ascending) in place of a
    #: maximum-safe hold.
    duration_ladder: tuple[float, ...] = (5.0, 10.0, 20.0)
    schema: int = SEARCH_SCHEMA

    def to_dict(self) -> dict[str, Any]:
        record = asdict(self)
        record["gap_range"] = list(self.gap_range)
        record["story_spacing"] = list(self.story_spacing)
        record["tail_range"] = list(self.tail_range)
        record["duration_ladder"] = list(self.duration_ladder)
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any] | None) -> "SearchConfig":
        if record is None:
            return cls()
        schema = record.get("schema", 0)
        if schema > SEARCH_SCHEMA:
            raise ValueError(
                f"search config schema {schema} is newer than supported "
                f"({SEARCH_SCHEMA}); upgrade the tooling"
            )
        kwargs = dict(record)
        kwargs["gap_range"] = tuple(record.get("gap_range", cls.gap_range))
        kwargs["story_spacing"] = tuple(
            record.get("story_spacing", cls.story_spacing)
        )
        kwargs["tail_range"] = tuple(record.get("tail_range", cls.tail_range))
        kwargs["duration_ladder"] = tuple(
            record.get("duration_ladder", cls.duration_ladder)
        )
        return cls(**kwargs)
