"""Paired program execution: one spec, with and without a hold schedule.

:func:`run_program` reconstructs a generated program's smart home from
its :class:`~repro.search.spec.ProgramSpec`, optionally deploys a
phantom-delay attacker armed per a candidate :class:`Schedule`, and folds
the run into a :class:`BehaviorTrace` — the compact, content-addressed
account of everything the oracles compare: rule firings, device actions,
notifications, final states, alarms, and invariant violations.

The run structure mirrors :func:`repro.core.attacks.base.run_scenario`
exactly (settle, then an observe window in *both* runs so baseline and
attacked stay time-aligned, then the stimulus timeline), and the attacker
arming mirrors the fleet engine: each hold is scheduled as a deferred
``StateUpdateDelay.arm`` keyed on the target device's event-size
fingerprint.  Invariant checking is always on — a hit only counts when
the cross-layer :class:`~repro.faults.InvariantSuite` stayed silent,
which is the paper's stealthiness claim.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from ..automation.dsl import parse_rule
from ..cache.keys import canonical
from ..testbed import SmartHomeTestbed
from .spec import ProgramSpec, Schedule

#: Seconds every program gets to establish sessions before anything runs.
SETTLE_SECONDS = 10.0

#: Sniffing window between interposition and the timeline (both runs, so
#: the comparison stays time-aligned) — same rationale as Scenario.observe.
OBSERVE_SECONDS = 40.0


@dataclass(frozen=True)
class BehaviorTrace:
    """The deterministic, comparable account of one program run."""

    completed: bool
    events: int
    now: float
    #: ``(ts, rule_id, trigger_event, condition_met, action_taken)`` rows.
    firings: tuple[tuple[float, str, str, bool, bool], ...]
    #: ``(ts, device_id, command)`` rows, sorted by time then device.
    actions: tuple[tuple[float, str, str], ...]
    #: ``(sent_at, channel, message, delivered_at)`` rows.
    notifications: tuple[tuple[float, str, str, float | None], ...]
    #: ``(device_id, attribute, value)`` final-state rows, sorted.
    states: tuple[tuple[str, str, str], ...]
    alarms: tuple[tuple[str, int], ...]
    invariant_violations: tuple[str, ...]

    def digest(self) -> str:
        return hashlib.blake2b(canonical(self.to_dict()),
                               digest_size=16).hexdigest()

    def to_dict(self) -> dict[str, Any]:
        return {
            "completed": self.completed,
            "events": self.events,
            "now": self.now,
            "firings": [list(row) for row in self.firings],
            "actions": [list(row) for row in self.actions],
            "notifications": [list(row) for row in self.notifications],
            "states": [list(row) for row in self.states],
            "alarms": [list(row) for row in self.alarms],
            "invariant_violations": list(self.invariant_violations),
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "BehaviorTrace":
        return cls(
            completed=record["completed"],
            events=record["events"],
            now=record["now"],
            firings=tuple(tuple(row) for row in record["firings"]),
            actions=tuple(tuple(row) for row in record["actions"]),
            notifications=tuple(tuple(row) for row in record["notifications"]),
            states=tuple(tuple(row) for row in record["states"]),
            alarms=tuple(tuple(row) for row in record["alarms"]),
            invariant_violations=tuple(record["invariant_violations"]),
        )


def build_program(spec: ProgramSpec,
                  check_invariants: bool = True) -> SmartHomeTestbed:
    """Construct (without running) the testbed one program spec describes."""
    tb = SmartHomeTestbed(
        seed=spec.seed,
        integration_staleness=spec.integration_staleness,
        check_invariants=check_invariants,
    )
    for label in spec.devices:
        tb.add_device(label)
    for j, line in enumerate(spec.rules):
        tb.install_rule(
            parse_rule(line, rule_id=f"p{spec.program_index}-r{j}")
        )
    for device_id, value in spec.initial_states:
        device = tb.device(device_id)
        device.state[device.behavior.attribute] = value
    return tb


def run_program(
    spec: ProgramSpec,
    schedule: Schedule = (),
    check_invariants: bool = True,
    event_budget: int | None = None,
) -> BehaviorTrace:
    """Run one program through its timeline, attacked iff ``schedule``.

    ``event_budget`` caps the scheduler's event count; a program that
    trips it is reported ``completed=False`` deterministically rather
    than raised, mirroring the fleet engine.
    """
    tb = build_program(spec, check_invariants=check_invariants)
    if event_budget is not None:
        tb.sim.max_events = event_budget
    completed = True
    try:
        tb.settle(SETTLE_SECONDS)
        if schedule:
            from ..core.attacker import PhantomDelayAttacker
            from ..core.attacks.state_update_delay import StateUpdateDelay

            attacker = PhantomDelayAttacker.deploy(tb)
            primitives: dict[str, StateUpdateDelay] = {}
            for hold in schedule:
                primitive = primitives.get(hold.device_id)
                if primitive is None:
                    primitive = StateUpdateDelay(attacker,
                                                 tb.device(hold.device_id))
                    primitives[hold.device_id] = primitive
                tb.sim.schedule(
                    max(0.0, OBSERVE_SECONDS + hold.at),
                    lambda p=primitive, h=hold: p.arm(duration=h.duration),
                    label="search:arm-hold",
                )
        tb.run(OBSERVE_SECONDS)
        for stimulus in spec.stimuli:
            tb.sim.schedule(
                stimulus.at,
                tb.device(stimulus.device_id).stimulate,
                stimulus.value,
                label="search:stimulus",
            )
        tb.run(spec.duration)
    except RuntimeError as exc:
        if "event budget" not in str(exc):
            raise
        completed = False
    return _trace(tb, completed)


def _trace(tb: SmartHomeTestbed, completed: bool) -> BehaviorTrace:
    """Fold a finished program run into its comparable trace.

    Timestamps are rounded to nanoseconds before storing so trace digests
    stay stable under float formatting changes (the fleet digest recipe).
    """
    actions = sorted(
        (round(ts, 9), device_id, command)
        for device_id, device in sorted(tb.devices.items())
        for ts, command, _data in device.actions_executed
    )
    states = tuple(
        (device_id, attribute, str(value))
        for device_id, device in sorted(tb.devices.items())
        for attribute, value in sorted(device.state.items())
    )
    return BehaviorTrace(
        completed=completed,
        events=tb.sim.events_processed,
        now=round(tb.now, 9),
        firings=tuple(
            (round(f.ts, 9), f.rule_id, f.trigger_event, f.condition_met,
             f.action_taken)
            for f in tb.integration.engine.firings
        ),
        actions=tuple(actions),
        notifications=tuple(
            (round(n.sent_at, 9), n.channel, n.message,
             None if n.delivered_at is None else round(n.delivered_at, 9))
            for n in tb.notifier.notifications
        ),
        states=states,
        alarms=tuple(sorted(tb.alarms.summary().items())),
        invariant_violations=tuple(
            str(v) for v in (tb.invariants.violations if tb.invariants else ())
        ),
    )
