"""Adversarial schedule search over generated TAP rule sets.

The pipeline, end to end:

1. :class:`~repro.search.generator.RuleSetGenerator` draws seeded
   trigger-condition-action programs (device mix, DSL rules, bait-story
   stimulus timelines) as schema-versioned
   :class:`~repro.search.spec.ProgramSpec` records;
2. the planner (:func:`~repro.search.planner.plan_program`) explores
   candidate attacker hold/release schedules per program, comparing each
   attacked run against the baseline with the differential oracles in
   :mod:`~repro.search.oracles`;
3. every hit is minimised by the deterministic shrinker and re-verified
   (violation class intact, :class:`~repro.faults.InvariantSuite`
   silent) before it becomes a corpus case;
4. :mod:`~repro.search.corpus` writes one JSONL case file per hit and
   folds the case digests into a campaign-level corpus digest.

Searches shard over :class:`~repro.parallel.runner.CampaignRunner`, so
they cache, parallelise, and manifest like every other campaign — and
the corpus is byte-identical across ``--jobs`` and cache state.
"""

from .corpus import (
    corpus_digest,
    read_case,
    read_corpus,
    write_corpus,
)
from .engine import BehaviorTrace, build_program, run_program
from .generator import RuleSetGenerator, program_seed, session_of
from .oracles import (
    CLASS_PRIORITY,
    DELAY,
    DISABLED,
    DISORDER,
    SPURIOUS,
    classify,
    primary_class,
)
from .planner import (
    DEFAULT_BATCH_SIZE,
    SearchReport,
    SearchRunner,
    candidate_schedules,
    case_digest,
    plan_program,
    plan_specs,
    run_search,
    search_batch,
    shrink,
)
from .spec import (
    SEARCH_SCHEMA,
    Hold,
    ProgramSpec,
    Schedule,
    SearchConfig,
    schedule_from_lists,
    schedule_to_lists,
)
from .table3 import TABLE3_EXPECTED, table3_spec, table3_specs

__all__ = [
    "BehaviorTrace",
    "CLASS_PRIORITY",
    "DEFAULT_BATCH_SIZE",
    "DELAY",
    "DISABLED",
    "DISORDER",
    "Hold",
    "ProgramSpec",
    "RuleSetGenerator",
    "SEARCH_SCHEMA",
    "SPURIOUS",
    "Schedule",
    "SearchConfig",
    "SearchReport",
    "SearchRunner",
    "TABLE3_EXPECTED",
    "build_program",
    "candidate_schedules",
    "case_digest",
    "classify",
    "corpus_digest",
    "plan_program",
    "plan_specs",
    "primary_class",
    "program_seed",
    "read_case",
    "read_corpus",
    "run_program",
    "run_search",
    "schedule_from_lists",
    "schedule_to_lists",
    "search_batch",
    "session_of",
    "shrink",
    "table3_spec",
    "table3_specs",
    "write_corpus",
]
