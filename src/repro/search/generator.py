"""Seeded sampling of :class:`~repro.search.spec.ProgramSpec` rule sets.

Following TAPInspector's observation that hand-written rule sets cannot
cover the trigger-condition-action space, every program's device mix,
rules, and stimulus timeline are drawn from seeded distributions through
the existing :mod:`repro.automation.dsl` layer.  The draw is a pure
function of ``(base_seed, program_index)`` through the campaign seed
derivation (:func:`~repro.parallel.seeds.derive_seed` over the
``search/<program-index>`` namespace), so program *i* of a search is the
same program no matter which batch, worker, or process samples it.

Unlike the fleet sampler, the generator builds a *bait story* into each
rule's timeline: for a conditioned rule it first puts the condition into
one state, then flips it, then fires the trigger — the exact event
ordering a hold/release schedule can subvert into spurious or disabled
execution (paper Section V-C).  Condition devices are always drawn from a
different uplink session than the trigger device, because holding a
condition event on a shared hub session would hold the trigger too
(order is preserved on a flow — see Case 6's build note).

Determinism rules for the generator body: one private ``random.Random``
per program, consumed in a fixed documented order; never iterate an
unordered container; never consult the wall clock.  Changing the draw
order is a breaking change (every generated corpus silently re-rolls)
and must bump :data:`~repro.search.spec.SEARCH_SCHEMA`.
"""

from __future__ import annotations

import random

from ..devices.behaviors import behavior_for
from ..devices.profiles import CATALOGUE
from ..fleet.sampler import ACTUATOR_POOL, SENSOR_POOL
from ..fleet.spec import Stimulus
from ..parallel.seeds import derive_seed
from .spec import ProgramSpec, SearchConfig

#: Seed namespace shared with the runner: program *i*'s seed is
#: ``derive_seed(base_seed, SEED_NAMESPACE.format(i))``.
SEED_NAMESPACE = "search/{}"


def program_seed(base_seed: int, program_index: int) -> int:
    """The derived simulation seed of one generated program."""
    return derive_seed(base_seed, SEED_NAMESPACE.format(program_index))


def session_of(label: str) -> str:
    """The uplink session group of one catalogue device.

    Hub children share their hub's TCP session; standalone WiFi devices
    own theirs.  Two devices in the same group cannot be delayed
    independently of each other.
    """
    profile = CATALOGUE.get(label)
    return profile.hub_label or profile.label


class RuleSetGenerator:
    """Draws the ``program_index``-th :class:`ProgramSpec` of one search."""

    def __init__(self, base_seed: int, config: SearchConfig | None = None) -> None:
        self.base_seed = base_seed
        self.config = config or SearchConfig()

    def sample(self, program_index: int) -> ProgramSpec:
        cfg = self.config
        seed = program_seed(self.base_seed, program_index)
        rng = random.Random(seed)

        # Draw order is part of the reproducibility contract — see module
        # docstring.  1) device mix, 2) per-rule structure + bait story
        # (trigger, condition, action, story shape, story gaps), 3) tail.
        n_sensors = rng.randint(cfg.min_sensors, cfg.max_sensors)
        sensors = rng.sample(SENSOR_POOL, n_sensors)
        n_actuators = rng.randint(0, cfg.max_actuators)
        actuators = rng.sample(ACTUATOR_POOL, n_actuators)
        devices = tuple(sensors + actuators)

        rules: list[str] = []
        stimuli: list[Stimulus] = []
        clock = 1.0
        for j in range(rng.randint(cfg.min_rules, cfg.max_rules)):
            rule, clock = self._sample_rule(
                rng, program_index, j, sensors, actuators, stimuli, clock
            )
            rules.append(rule)

        duration = round(clock + rng.uniform(*cfg.tail_range), 3)

        return ProgramSpec(
            program_index=program_index,
            seed=seed,
            devices=devices,
            rules=tuple(rules),
            duration=max(60.0, duration),
            stimuli=tuple(stimuli),
        )

    def sample_many(self, count: int, start: int = 0) -> list[ProgramSpec]:
        return [self.sample(start + i) for i in range(count)]

    # ------------------------------------------------------------- internals

    def _sample_rule(
        self,
        rng: random.Random,
        program_index: int,
        rule_index: int,
        sensors: list[str],
        actuators: list[str],
        stimuli: list[Stimulus],
        clock: float,
    ) -> tuple[str, float]:
        """Draw one rule and append its bait story to the timeline.

        Returns the DSL line and the advanced story clock.  Story shapes:

        * conditioned, spurious bait: condition matches at t0, flips away
          at t1, trigger fires at t2 — holding the t1 event makes the
          stale condition fire the action (spurious execution);
        * conditioned, disabled bait: condition mismatches at t0, turns
          true at t1, trigger fires at t2 — holding the t1 event leaves
          the condition stale-false (disabled execution);
        * unconditioned: a single trigger event (state-update/action
          delay bait).
        """
        cfg = self.config
        trigger_label = rng.choice(sensors)
        trigger_behavior = behavior_for(CATALOGUE.get(trigger_label).kind)
        trigger_value = rng.choice(trigger_behavior.sensor_values)
        trigger_event = trigger_behavior.event_name(trigger_value)

        condition = ""
        cond_story: tuple[tuple[str, str], tuple[str, str]] | None = None
        peers = [
            s for s in sensors
            if session_of(s) != session_of(trigger_label)
        ]
        if peers and rng.random() < cfg.condition_probability:
            cond_label = rng.choice(peers)
            cond_behavior = behavior_for(CATALOGUE.get(cond_label).kind)
            cond_value = rng.choice(cond_behavior.sensor_values)
            cond_other = next(
                v for v in cond_behavior.sensor_values if v != cond_value
            )
            condition = (
                f" IF {cond_label.lower()}.{cond_behavior.attribute}"
                f" == {cond_value}"
            )
            if rng.random() < cfg.spurious_bait_probability:
                # Condition true first, falsified second: spurious bait.
                cond_story = ((cond_label.lower(), cond_value),
                              (cond_label.lower(), cond_other))
            else:
                # Condition false first, enabled second: disabled bait.
                cond_story = ((cond_label.lower(), cond_other),
                              (cond_label.lower(), cond_value))

        if actuators and rng.random() < cfg.command_probability:
            target = rng.choice(actuators)
            command = rng.choice(sorted(
                behavior_for(CATALOGUE.get(target).kind).commands
            ))
            action = f"COMMAND {target.lower()} {command}"
        else:
            action = (
                f'NOTIFY push "program-{program_index} rule-{rule_index}: '
                f'{trigger_event}"'
            )

        t = clock
        if cond_story is not None:
            for device_id, value in cond_story:
                stimuli.append(Stimulus(at=round(t, 3), device_id=device_id,
                                        value=value))
                t += rng.uniform(*cfg.gap_range)
        stimuli.append(Stimulus(at=round(t, 3),
                                device_id=trigger_label.lower(),
                                value=trigger_value))
        t += rng.uniform(*cfg.story_spacing)

        rule = (
            f"WHEN {trigger_label.lower()} {trigger_event}{condition} "
            f"THEN {action}"
        )
        return rule, t
