"""The paper's Table III attack cases, re-encoded as program specs.

Each of the eleven end-to-end cases the paper demonstrates (and
:mod:`repro.core.attacks.scenarios` scripts imperatively) is restated
here as a declarative :class:`~repro.search.spec.ProgramSpec` — the same
devices, rules, pre-seeded states, and stimulus timeline, minus the
hand-written attack.  The differential harness then requires the planner
to *rediscover* a violating hold schedule for every case, and the
classified violation must match the effect column of the table:

=====  ============================  ======================
case   paper effect                  expected class
=====  ============================  ======================
1-3    delayed notification/action   ``delay``
4      discarded (stale) trigger     ``disabled-execution``
5-8    condition stale-true          ``spurious-execution``
9-11   condition stale-false         ``disabled-execution``
=====  ============================  ======================

These specs also serve as the *novelty* reference: a generated search
hit whose case digest collides with a Table III rediscovery digest is
counted as a rediscovery, not a novel case.
"""

from __future__ import annotations

from ..parallel.seeds import derive_seed
from .oracles import DELAY, DISABLED, SPURIOUS
from .spec import ProgramSpec
from ..fleet.spec import Stimulus

#: Seed namespace for the encoded cases (distinct from generated
#: programs so digests can never collide by construction).
TABLE3_NAMESPACE = "search/table3/{}"

#: ``case number -> expected primary violation class``.
TABLE3_EXPECTED: dict[int, str] = {
    1: DELAY, 2: DELAY, 3: DELAY,
    4: DISABLED,
    5: SPURIOUS, 6: SPURIOUS, 7: SPURIOUS, 8: SPURIOUS,
    9: DISABLED, 10: DISABLED, 11: DISABLED,
}

#: ``case -> (devices, rule, initial_states, staleness, stimuli, duration)``.
_CASES: dict[int, tuple] = {
    # Type-I/II delays: a lone trigger whose downstream effect the hold
    # pushes past the delay threshold.
    1: (("C1",),
        'WHEN c1 contact.open THEN NOTIFY voice "Front door opened"',
        (), None, ((5.0, "c1", "open"),), 90.0),
    2: (("M1",),
        'WHEN m1 motion.active THEN NOTIFY push "Motion detected at home"',
        (), None, ((5.0, "m1", "active"),), 90.0),
    3: (("C2", "LK1"),
        "WHEN c2 contact.closed THEN COMMAND lk1 lock",
        (("lk1", "unlocked"),), None, ((5.0, "c2", "closed"),), 120.0),
    # Stale-trigger discard: the platform's 30 s staleness policy drops
    # the held arm event, so the plug never turns off.
    4: (("HS1", "P4"),
        "WHEN hs1 security.armed-away THEN COMMAND p4 off",
        (("p4", "on"),), 30.0, ((5.0, "hs1", "armed-away"),), 150.0),
    # Condition stale-true: seed the condition, falsify it, fire the
    # trigger; holding the falsifier makes the rule fire spuriously.
    5: (("LK1", "M2", "HS2"),
        "WHEN lk1 lock.unlocked IF m2.motion == inactive "
        "THEN COMMAND hs2 disarm",
        (("hs2", "armed-away"),), None,
        ((1.0, "m2", "inactive"), (8.0, "m2", "active"),
         (14.0, "lk1", "unlocked")), 120.0),
    6: (("M7", "C3", "P2"),
        "WHEN m7 motion.active IF c3.contact == closed THEN COMMAND p2 on",
        (), None,
        ((1.0, "c3", "closed"), (8.0, "c3", "open"),
         (14.0, "m7", "active")), 120.0),
    7: (("M3", "C2", "P3"),
        "WHEN m3 motion.active IF c2.contact == closed THEN COMMAND p3 on",
        (), None,
        ((1.0, "c2", "closed"), (8.0, "c2", "open"),
         (14.0, "m3", "active")), 120.0),
    8: (("C5", "PR1", "LK1"),
        "WHEN c5 contact.open IF pr1.presence == present "
        "THEN COMMAND lk1 unlock",
        (), None,
        ((1.0, "pr1", "present"), (8.0, "pr1", "away"),
         (18.0, "c5", "open")), 120.0),
    # Condition stale-false: seed the condition false, enable it, fire
    # the trigger; holding the enabler suppresses the rule.
    9: (("PR1", "C5"),
        'WHEN pr1 presence.away IF c5.contact == open '
        'THEN NOTIFY sms "Front door left open!"',
        (), None,
        ((1.0, "c5", "closed"), (8.0, "c5", "open"),
         (14.0, "pr1", "away")), 120.0),
    10: (("PR1", "LK1"),
         "WHEN pr1 presence.away IF lk1.lock == unlocked "
         "THEN COMMAND lk1 lock",
         (), None,
         ((1.0, "lk1", "locked"), (8.0, "lk1", "unlocked"),
          (16.0, "pr1", "away")), 120.0),
    11: (("PR1", "P4"),
         "WHEN pr1 presence.away IF p4.switch == on THEN COMMAND p4 off",
         (), None,
         ((1.0, "p4", "off"), (8.0, "p4", "on"),
          (16.0, "pr1", "away")), 120.0),
}


def table3_spec(case: int, base_seed: int = 0) -> ProgramSpec:
    """The declarative program spec of one Table III case.

    ``program_index`` is the negated case number so table specs can never
    collide with generated programs (whose indices are >= 0).
    """
    devices, rule, initial, staleness, stimuli, duration = _CASES[case]
    return ProgramSpec(
        program_index=-case,
        seed=derive_seed(base_seed, TABLE3_NAMESPACE.format(case)),
        devices=devices,
        rules=(rule,),
        initial_states=tuple(initial),
        integration_staleness=staleness,
        duration=duration,
        stimuli=tuple(Stimulus(at=s[0], device_id=s[1], value=s[2])
                      for s in stimuli),
        meta={"table3_case": case},
    )


def table3_specs(base_seed: int = 0) -> list[ProgramSpec]:
    """All eleven case specs in table order."""
    return [table3_spec(case, base_seed) for case in sorted(_CASES)]
