"""Seeded sampling of :class:`~repro.fleet.spec.HomeSpec` populations.

Following TAPInspector's observation that hand-written rule sets cannot
cover the trigger-condition-action space, every home's rule set, device
mix, fault profile, and attacker schedule are drawn from seeded
distributions instead of from the paper's 11 fixed cases.  The draw is a
pure function of ``(base_seed, home_index)`` through the campaign seed
derivation (:func:`~repro.parallel.seeds.derive_seed` over the
``fleet/<home-index>`` namespace), so home *i* of a fleet is the same home
no matter which batch, worker, or process samples it — the property the
differential fleet-equivalence suite pins.

Determinism rules for the sampler body: one private ``random.Random`` per
home, consumed in a fixed documented order; never iterate an unordered
container; never consult the wall clock.  Changing the draw order is a
breaking change (every sampled fleet silently changes) and must bump
:data:`~repro.fleet.spec.SPEC_SCHEMA`.
"""

from __future__ import annotations

import random

from ..devices.behaviors import KIND_BEHAVIORS, behavior_for
from ..devices.profiles import ACTUATOR, CATALOGUE, SENSOR, TABLE_LOCAL
from ..parallel.seeds import derive_seed
from .spec import FleetConfig, HomeSpec, Stimulus

#: Seed namespace shared with the runner: home *i*'s seed is
#: ``derive_seed(base_seed, SEED_NAMESPACE.format(i))``.
SEED_NAMESPACE = "fleet/{}"


def home_seed(base_seed: int, home_index: int) -> int:
    """The derived simulation seed of one fleet home."""
    return derive_seed(base_seed, SEED_NAMESPACE.format(home_index))


def _sensor_pool() -> list[str]:
    """Catalogue labels usable as rule triggers (stimulable cloud sensors)."""
    pool = []
    for profile in CATALOGUE:
        if profile.table == TABLE_LOCAL or profile.device_class != SENSOR:
            continue
        behavior = KIND_BEHAVIORS.get(profile.kind)
        if behavior is not None and behavior.sensor_values:
            pool.append(profile.label)
    return pool


def _actuator_pool() -> list[str]:
    """Catalogue labels usable as COMMAND targets (stateful cloud actuators)."""
    pool = []
    for profile in CATALOGUE:
        if profile.table == TABLE_LOCAL or profile.device_class != ACTUATOR:
            continue
        behavior = KIND_BEHAVIORS.get(profile.kind)
        if behavior is not None and behavior.commands:
            pool.append(profile.label)
    return pool


#: The pools are catalogue-derived constants: computing them once keeps the
#: per-home sample cheap, and pinning them at import time means a
#: catalogue edit shows up as a sampler golden-test failure, not as a
#: silent re-roll of every fleet.
SENSOR_POOL: tuple[str, ...] = tuple(_sensor_pool())
ACTUATOR_POOL: tuple[str, ...] = tuple(_actuator_pool())


class FleetSampler:
    """Draws the ``home_index``-th :class:`HomeSpec` of one fleet."""

    def __init__(self, base_seed: int, config: FleetConfig | None = None) -> None:
        self.base_seed = base_seed
        self.config = config or FleetConfig()

    def sample(self, home_index: int) -> HomeSpec:
        cfg = self.config
        seed = home_seed(self.base_seed, home_index)
        rng = random.Random(seed)

        # Draw order is part of the reproducibility contract — see module
        # docstring.  1) device mix, 2) rules, 3) faults, 4) attacker,
        # 5) duration, 6) stimuli.
        n_sensors = rng.randint(cfg.min_sensors, cfg.max_sensors)
        sensors = rng.sample(SENSOR_POOL, n_sensors)
        n_actuators = rng.randint(0, cfg.max_actuators)
        actuators = rng.sample(ACTUATOR_POOL, n_actuators)
        devices = tuple(sensors + actuators)

        rules = tuple(
            self._sample_rule(rng, home_index, j, sensors, actuators)
            for j in range(rng.randint(cfg.min_rules, cfg.max_rules))
        )

        fault_profile = self._weighted(rng, cfg.fault_weights)

        attacker = rng.random() < cfg.attacker_probability
        attack_target = rng.choice(sensors) if attacker else None
        hold_at = rng.uniform(1.0, 30.0) if attacker else 0.0
        hold_duration: float | None = None
        if attacker and rng.random() >= cfg.max_safe_hold_probability:
            hold_duration = rng.uniform(*cfg.hold_range)

        duration = rng.uniform(*cfg.duration_range)

        stimuli = []
        for label in sensors:
            behavior = behavior_for(CATALOGUE.get(label).kind)
            for k in range(rng.randint(cfg.min_stimuli, cfg.max_stimuli)):
                stimuli.append(Stimulus(
                    at=rng.uniform(1.0, max(2.0, duration - 10.0)),
                    device_id=label.lower(),
                    value=behavior.sensor_values[k % len(behavior.sensor_values)],
                ))
        stimuli.sort(key=lambda s: (s.at, s.device_id))

        return HomeSpec(
            home_index=home_index,
            seed=seed,
            devices=devices,
            rules=rules,
            fault_profile=fault_profile,
            attacker=attacker,
            attack_target=attack_target,
            hold_at=hold_at,
            hold_duration=hold_duration,
            duration=duration,
            stimuli=tuple(stimuli),
        )

    def sample_many(self, count: int, start: int = 0) -> list[HomeSpec]:
        return [self.sample(start + i) for i in range(count)]

    # ------------------------------------------------------------- internals

    @staticmethod
    def _weighted(rng: random.Random,
                  weights: tuple[tuple[str | None, float], ...]) -> str | None:
        total = sum(w for _, w in weights)
        draw = rng.random() * total
        acc = 0.0
        for value, weight in weights:
            acc += weight
            if draw < acc:
                return value
        return weights[-1][0]

    def _sample_rule(self, rng: random.Random, home_index: int, rule_index: int,
                     sensors: list[str], actuators: list[str]) -> str:
        cfg = self.config
        trigger_label = rng.choice(sensors)
        trigger_behavior = behavior_for(CATALOGUE.get(trigger_label).kind)
        trigger_event = trigger_behavior.event_name(
            rng.choice(trigger_behavior.sensor_values)
        )
        condition = ""
        others = [s for s in sensors if s != trigger_label]
        if others and rng.random() < cfg.condition_probability:
            cond_label = rng.choice(others)
            cond_behavior = behavior_for(CATALOGUE.get(cond_label).kind)
            condition = (
                f" IF {cond_label.lower()}.{cond_behavior.attribute}"
                f" == {cond_behavior.initial}"
            )
        if actuators and rng.random() < cfg.command_probability:
            target = rng.choice(actuators)
            command = rng.choice(sorted(
                behavior_for(CATALOGUE.get(target).kind).commands
            ))
            action = f"COMMAND {target.lower()} {command}"
        else:
            action = (
                f'NOTIFY push "home-{home_index} rule-{rule_index}: '
                f'{trigger_event}"'
            )
        return f"WHEN {trigger_label.lower()} {trigger_event}{condition} THEN {action}"
