"""Parameterised home specifications: one sampled smart home, as data.

A :class:`HomeSpec` is everything needed to reconstruct one simulated
smart home byte-identically anywhere — in this process, in a forked
worker, or from a cache entry months later: the derived seed, the device
mix, the automation rule set (as DSL text), the fault profile, the
attacker's presence and hold schedule, and the stimulus timeline.  Specs
are frozen, picklable, JSON-round-trippable, and schema-versioned: a
loader refuses specs written by a *newer* schema rather than silently
misreading them, mirroring the run-manifest policy.

The spec is deliberately textual where it can be (rule DSL lines,
catalogue labels, fault profile names) so a spec dump is readable and a
golden-pinned digest of one is reviewable in a test diff.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Any

from ..cache.keys import canonical

#: Bump when the spec layout changes incompatibly; loaders reject newer
#: specs (the sampler always emits the current schema).
SPEC_SCHEMA = 1


@dataclass(frozen=True)
class Stimulus:
    """One physical stimulation of one device, ``at`` seconds after settle."""

    at: float
    device_id: str
    value: str

    def to_tuple(self) -> tuple[float, str, str]:
        return (self.at, self.device_id, self.value)


@dataclass(frozen=True)
class HomeSpec:
    """A complete, reconstructible description of one sampled home."""

    home_index: int
    seed: int
    #: Catalogue labels (cloud table); hub children pull their hubs in.
    devices: tuple[str, ...]
    #: Automation rules as DSL lines (``WHEN ... THEN ...``).
    rules: tuple[str, ...]
    #: Named fault profile, or None for an ideal LAN.
    fault_profile: str | None = None
    #: Whether a phantom-delay attacker is present on this LAN.
    attacker: bool = False
    #: Catalogue label of the device whose events the attacker holds.
    attack_target: str | None = None
    #: Seconds after settle at which the attacker arms its hold.
    hold_at: float = 0.0
    #: Hold duration in seconds; None = the maximum safe delay.
    hold_duration: float | None = None
    #: Simulated seconds the home runs after settling.
    duration: float = 120.0
    stimuli: tuple[Stimulus, ...] = ()
    schema: int = SPEC_SCHEMA
    #: Free-form provenance (sampler config digest etc.), not identity.
    meta: dict[str, Any] = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------- identity

    def digest(self) -> str:
        """Content address of this spec (identity excludes ``meta``)."""
        payload = self.to_dict()
        payload.pop("meta", None)
        return hashlib.blake2b(canonical(payload), digest_size=16).hexdigest()

    # ---------------------------------------------------------- (de)serialise

    def to_dict(self) -> dict[str, Any]:
        record = asdict(self)
        record["devices"] = list(self.devices)
        record["rules"] = list(self.rules)
        record["stimuli"] = [list(s.to_tuple()) for s in self.stimuli]
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "HomeSpec":
        schema = record.get("schema", 0)
        if schema > SPEC_SCHEMA:
            raise ValueError(
                f"home spec schema {schema} is newer than supported "
                f"({SPEC_SCHEMA}); upgrade the tooling"
            )
        return cls(
            home_index=record["home_index"],
            seed=record["seed"],
            devices=tuple(record["devices"]),
            rules=tuple(record["rules"]),
            fault_profile=record.get("fault_profile"),
            attacker=record.get("attacker", False),
            attack_target=record.get("attack_target"),
            hold_at=record.get("hold_at", 0.0),
            hold_duration=record.get("hold_duration"),
            duration=record.get("duration", 120.0),
            stimuli=tuple(
                Stimulus(at=s[0], device_id=s[1], value=s[2])
                for s in record.get("stimuli", ())
            ),
            schema=schema,
            meta=dict(record.get("meta", {})),
        )


@dataclass(frozen=True)
class FleetConfig:
    """Sampler knobs: the distributions one fleet's homes are drawn from.

    The defaults describe a plausible consumer home — a couple of sensors,
    sometimes an actuator, a small rule set, a mostly-clean LAN, and an
    attacker on roughly half the homes (so fleet campaigns measure attacked
    and baseline populations in one run).  The config rides inside shard
    kwargs, so it must stay a plain frozen dataclass of JSON-able values.
    """

    min_sensors: int = 1
    max_sensors: int = 3
    max_actuators: int = 2
    min_rules: int = 1
    max_rules: int = 4
    #: Probability a rule carries an IF condition on a second device.
    condition_probability: float = 0.3
    #: Probability a rule commands an actuator (vs notifying the user).
    command_probability: float = 0.6
    #: Weighted fault-profile draw: (profile name or None, weight).
    fault_weights: tuple[tuple[str | None, float], ...] = (
        (None, 0.7), ("lossy", 0.15), ("jittery", 0.15),
    )
    attacker_probability: float = 0.5
    #: Hold duration draw: None (max safe) with this probability, else
    #: uniform in ``hold_range``.
    max_safe_hold_probability: float = 0.5
    hold_range: tuple[float, float] = (10.0, 40.0)
    #: Per-sensor stimulation count range and home run length range.
    min_stimuli: int = 1
    max_stimuli: int = 3
    duration_range: tuple[float, float] = (60.0, 180.0)
    schema: int = SPEC_SCHEMA

    def to_dict(self) -> dict[str, Any]:
        record = asdict(self)
        record["fault_weights"] = [list(pair) for pair in self.fault_weights]
        record["hold_range"] = list(self.hold_range)
        record["duration_range"] = list(self.duration_range)
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any] | None) -> "FleetConfig":
        if record is None:
            return cls()
        schema = record.get("schema", 0)
        if schema > SPEC_SCHEMA:
            raise ValueError(
                f"fleet config schema {schema} is newer than supported "
                f"({SPEC_SCHEMA}); upgrade the tooling"
            )
        kwargs = dict(record)
        kwargs["fault_weights"] = tuple(
            (pair[0], pair[1]) for pair in record.get("fault_weights", ())
        ) or cls.fault_weights
        kwargs["hold_range"] = tuple(record.get("hold_range", cls.hold_range))
        kwargs["duration_range"] = tuple(
            record.get("duration_range", cls.duration_range)
        )
        return cls(**kwargs)
