"""Fleet execution: millions of parameterised homes over the campaign pool.

The unit of work is one *batch* of homes, not one home: a
:class:`~repro.parallel.runner.Shard` carries ``run_home_batch`` with a
``(start, count)`` window, and each home inside the batch is sampled and
seeded purely from ``(base_seed, home_index)`` — so the partition into
batches, the worker count, and the cache state can never change a single
home's behaviour.  ``tests/test_fleet_equivalence.py`` holds the proof:
a fleet of K homes produces byte-identical per-home digests to K
independently constructed :class:`~repro.testbed.SmartHomeTestbed` runs.

Results are deliberately *compact*: a home simulation is thrown away at
the end of its batch and only a :class:`HomeResult` row — a content digest
of the home's observable behaviour plus a handful of counters — rides
back.  Fleet-level aggregates stream through the mergeable
``repro.obs.telemetry`` machinery (each batch records into a captured
:class:`~repro.obs.metrics.MetricsRegistry`), so the campaign manifest
carries the population metrics without the driver materialising a fleet-
sized result list; per-home rows can additionally be streamed to JSONL
and dropped (``stream_to=..., keep_rows=False``).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

from ..automation.dsl import parse_rule
from ..cache.keys import canonical
from ..obs.metrics import MetricsRegistry
from ..parallel import CampaignRunner, Shard
from ..testbed import SmartHomeTestbed
from .sampler import FleetSampler, home_seed
from .spec import FleetConfig, HomeSpec

#: Seconds every home gets to establish sessions before its timeline runs.
SETTLE_SECONDS = 8.0

#: Homes per shard.  Fixed (never derived from ``jobs``) so the batch
#: partition — and with it every shard key and cache address — is a pure
#: function of the fleet size.
DEFAULT_BATCH_SIZE = 16


# ---------------------------------------------------------------- one home


@dataclass(frozen=True)
class HomeResult:
    """The compact, deterministic account of one simulated home."""

    home_index: int
    seed: int
    digest: str
    devices: int
    rules: int
    attacker: bool
    fault_profile: str | None
    completed: bool
    events: int
    sim_seconds: float
    notifications: int
    delivered: int
    rule_firings: int
    alarms: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "home_index": self.home_index,
            "seed": self.seed,
            "digest": self.digest,
            "devices": self.devices,
            "rules": self.rules,
            "attacker": self.attacker,
            "fault_profile": self.fault_profile,
            "completed": self.completed,
            "events": self.events,
            "sim_seconds": self.sim_seconds,
            "notifications": self.notifications,
            "delivered": self.delivered,
            "rule_firings": self.rule_firings,
            "alarms": self.alarms,
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "HomeResult":
        return cls(**record)


def build_home(spec: HomeSpec) -> SmartHomeTestbed:
    """Construct (without running) the testbed one spec describes."""
    tb = SmartHomeTestbed(seed=spec.seed, faults=spec.fault_profile)
    for label in spec.devices:
        tb.add_device(label)
    for j, line in enumerate(spec.rules):
        tb.install_rule(parse_rule(line, rule_id=f"h{spec.home_index}-r{j}"))
    return tb


def drive_home(tb: SmartHomeTestbed, spec: HomeSpec,
               event_budget: int | None = None) -> HomeResult:
    """Run one built home through its spec'd timeline and summarise it.

    ``event_budget`` caps the scheduler's event count; a home that trips
    it is reported ``completed=False`` (deterministically — the same
    budget stops the same home at the same event) rather than raised, so
    the breaking-point experiment can measure a success-rate floor.
    """
    if event_budget is not None:
        tb.sim.max_events = event_budget
    completed = True
    try:
        tb.settle(SETTLE_SECONDS)
        if spec.attacker and spec.attack_target is not None:
            from ..core.attacker import PhantomDelayAttacker
            from ..core.attacks.state_update_delay import StateUpdateDelay

            attacker = PhantomDelayAttacker.deploy(tb)
            delay = StateUpdateDelay(attacker, tb.device(spec.attack_target.lower()))
            tb.sim.schedule(
                max(0.0, spec.hold_at),
                lambda: delay.arm(duration=spec.hold_duration),
                label="fleet:arm-hold",
            )
        for stimulus in spec.stimuli:
            tb.sim.schedule(
                stimulus.at,
                tb.device(stimulus.device_id).stimulate,
                stimulus.value,
                label="fleet:stimulus",
            )
        tb.run(spec.duration)
    except RuntimeError as exc:
        if "event budget" not in str(exc):
            raise
        completed = False
    return _summarise(tb, spec, completed)


def _summarise(tb: SmartHomeTestbed, spec: HomeSpec, completed: bool) -> HomeResult:
    """Fold a finished home into its deterministic result row.

    The digest covers everything observable about the home — final device
    states, the notification log, rule firings, alarms, the event count,
    and the clock — so two runs agree on the digest iff they agreed on
    behaviour.  Timestamps are rounded to nanoseconds before hashing to
    keep the digest stable under float formatting changes.
    """
    notifications = [
        (round(n.sent_at, 9), n.channel, n.message,
         None if n.delivered_at is None else round(n.delivered_at, 9))
        for n in tb.notifier.notifications
    ]
    firings = [
        (round(f.ts, 9), f.rule_id, f.trigger_event, f.condition_met,
         f.action_taken)
        for f in tb.integration.engine.firings
    ]
    alarms = tb.alarms.summary()
    summary = {
        "home": spec.home_index,
        "seed": spec.seed,
        "spec": spec.digest(),
        "completed": completed,
        "events": tb.sim.events_processed,
        "now": round(tb.now, 9),
        "states": {device_id: dict(device.state)
                   for device_id, device in sorted(tb.devices.items())},
        "notifications": notifications,
        "firings": firings,
        "alarms": alarms,
    }
    digest = hashlib.blake2b(canonical(summary), digest_size=16).hexdigest()
    return HomeResult(
        home_index=spec.home_index,
        seed=spec.seed,
        digest=digest,
        devices=len(tb.devices),
        rules=len(spec.rules),
        attacker=spec.attacker,
        fault_profile=spec.fault_profile,
        completed=completed,
        events=tb.sim.events_processed,
        sim_seconds=round(tb.now, 9),
        notifications=len(notifications),
        delivered=sum(1 for n in tb.notifier.notifications if n.delivered),
        rule_firings=len(firings),
        alarms=sum(alarms.values()),
    )


def run_home(spec: HomeSpec | dict[str, Any],
             event_budget: int | None = None) -> HomeResult:
    """Build and run one home from its spec (dict form accepted)."""
    if isinstance(spec, dict):
        spec = HomeSpec.from_dict(spec)
    return drive_home(build_home(spec), spec, event_budget=event_budget)


# --------------------------------------------------------------- one batch


def run_home_batch(
    start: int,
    count: int,
    base_seed: int,
    config: dict[str, Any] | None = None,
    event_budget: int | None = None,
) -> list[dict[str, Any]]:
    """Shard function: sample and run homes ``start .. start+count-1``.

    Module-level and pure — workers import it by qualified name and the
    cache addresses it by ``(start, count, base_seed, config, budget)``.
    Fleet-level metrics are recorded into a registry that auto-registers
    with the active telemetry capture, so they merge into the campaign
    snapshot and manifest without riding in the return value.
    """
    sampler = FleetSampler(base_seed, FleetConfig.from_dict(config))
    registry = MetricsRegistry()
    homes = registry.counter("fleet", "homes")
    homes_ok = registry.counter("fleet", "homes_completed")
    homes_attacked = registry.counter("fleet", "homes_attacked")
    homes_impaired = registry.counter("fleet", "homes_impaired")
    deliveries = registry.counter("fleet", "notifications_delivered")
    home_events = registry.histogram("fleet", "home_events")
    home_rules = registry.histogram("fleet", "home_rules")
    rows: list[dict[str, Any]] = []
    for index in range(start, start + count):
        result = run_home(sampler.sample(index), event_budget=event_budget)
        homes.inc()
        if result.completed:
            homes_ok.inc()
        if result.attacker:
            homes_attacked.inc()
        if result.fault_profile is not None:
            homes_impaired.inc()
        deliveries.inc(result.delivered)
        home_events.observe(float(result.events))
        home_rules.observe(float(result.rules))
        rows.append(result.to_dict())
    return rows


# --------------------------------------------------------------- the fleet


@dataclass
class FleetReport:
    """Aggregate account of one fleet run."""

    homes: int
    completed: int
    attacked: int
    impaired: int
    events: int
    notifications_delivered: int
    fleet_digest: str
    digests: tuple[str, ...]
    wall_seconds: float
    rows: tuple[HomeResult, ...] = ()
    manifest_path: Path | None = None
    results_path: Path | None = None
    runner_summary: str = ""

    @property
    def failed(self) -> int:
        return self.homes - self.completed

    @property
    def success_rate(self) -> float:
        return self.completed / self.homes if self.homes else 1.0

    @property
    def homes_per_second(self) -> float:
        return self.homes / self.wall_seconds if self.wall_seconds else 0.0


class FleetRunner:
    """Steps a sampled fleet of homes in batches across the campaign pool.

    One runner is one fleet campaign: it owns the fleet size, the base
    seed, the batch partition, and (through its internal
    :class:`CampaignRunner`) the jobs/cache/manifest policy.  ``run()``
    returns a :class:`FleetReport`; the campaign manifest, cache entries,
    and merged telemetry land exactly where every other campaign puts
    them.
    """

    def __init__(
        self,
        homes: int,
        base_seed: int = 0,
        jobs: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        config: FleetConfig | None = None,
        event_budget: int | None = None,
        cache: Any = None,
        manifest: Any = True,
        campaign: str = "fleet",
        registry: MetricsRegistry | None = None,
    ) -> None:
        if homes < 0:
            raise ValueError(f"fleet size must be >= 0: {homes}")
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1: {batch_size}")
        self.homes = homes
        self.base_seed = base_seed
        self.batch_size = batch_size
        self.config = config or FleetConfig()
        self.event_budget = event_budget
        self.campaign = campaign
        self.runner = CampaignRunner(
            jobs=jobs, base_seed=base_seed, campaign=campaign, cache=cache,
            manifest=manifest, registry=registry,
        )

    def shards(self) -> list[Shard]:
        """The fleet's batch partition — jobs- and cache-independent."""
        config = (
            None if self.config == FleetConfig() else self.config.to_dict()
        )
        out = []
        for start in range(0, self.homes, self.batch_size):
            count = min(self.batch_size, self.homes - start)
            out.append(Shard(
                key=f"fleet/batch/{start}+{count}",
                fn=run_home_batch,
                kwargs={
                    "start": start,
                    "count": count,
                    "base_seed": self.base_seed,
                    "config": config,
                    "event_budget": self.event_budget,
                },
                # Per-home seeds derive from (base_seed, home index) inside
                # the batch; a shard-level seed would vary with batching.
                pass_seed=False,
            ))
        return out

    def run(self, keep_rows: bool = True,
            stream_to: "str | os.PathLike | None" = None) -> FleetReport:
        """Run every home; aggregate batch rows as they merge back.

        ``stream_to`` appends one JSON object per home to a JSONL file;
        with ``keep_rows=False`` the rows are dropped after streaming and
        only digests/aggregates stay in memory — the shape a
        million-home campaign needs.
        """
        start = time.perf_counter()
        batches = self.runner.run(self.shards())
        wall = time.perf_counter() - start
        digests: list[str] = []
        rows: list[HomeResult] = []
        completed = attacked = impaired = events = delivered = 0
        stream = None
        results_path: Path | None = None
        if stream_to is not None:
            results_path = Path(stream_to)
            results_path.parent.mkdir(parents=True, exist_ok=True)
            stream = open(results_path, "w")
        try:
            for record in self._iter_rows(batches):
                digests.append(record["digest"])
                completed += bool(record["completed"])
                attacked += bool(record["attacker"])
                impaired += record["fault_profile"] is not None
                events += record["events"]
                delivered += record["delivered"]
                if stream is not None:
                    stream.write(json.dumps(record, sort_keys=True) + "\n")
                if keep_rows:
                    rows.append(HomeResult.from_dict(record))
        finally:
            if stream is not None:
                stream.close()
        return FleetReport(
            homes=len(digests),
            completed=completed,
            attacked=attacked,
            impaired=impaired,
            events=events,
            notifications_delivered=delivered,
            fleet_digest=fleet_digest(digests),
            digests=tuple(digests),
            wall_seconds=wall,
            rows=tuple(rows),
            manifest_path=self.runner.last_manifest_path,
            results_path=results_path,
            runner_summary=self.runner.summary(),
        )

    @staticmethod
    def _iter_rows(batches: Sequence[Any]) -> Iterator[dict[str, Any]]:
        for batch in batches:
            if batch is None:
                continue
            yield from batch


def fleet_digest(digests: Sequence[str]) -> str:
    """One content address for a whole fleet: digest of per-home digests."""
    h = hashlib.blake2b(digest_size=16)
    for entry in digests:
        h.update(entry.encode())
        h.update(b"\n")
    return h.hexdigest()


def run_fleet(
    homes: int,
    seed: int = 0,
    jobs: int | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    config: FleetConfig | None = None,
    event_budget: int | None = None,
    cache: Any = None,
    manifest: Any = True,
    campaign: str = "fleet",
    keep_rows: bool = True,
    stream_to: "str | os.PathLike | None" = None,
) -> FleetReport:
    """One-call fleet campaign (the CLI and bench entry point)."""
    runner = FleetRunner(
        homes=homes, base_seed=seed, jobs=jobs, batch_size=batch_size,
        config=config, event_budget=event_budget, cache=cache,
        manifest=manifest, campaign=campaign,
    )
    return runner.run(keep_rows=keep_rows, stream_to=stream_to)


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "SETTLE_SECONDS",
    "FleetReport",
    "FleetRunner",
    "HomeResult",
    "build_home",
    "drive_home",
    "fleet_digest",
    "home_seed",
    "run_fleet",
    "run_home",
    "run_home_batch",
]
