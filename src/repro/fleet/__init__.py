"""Fleet engine: populations of sampled smart homes at campaign scale.

``repro.fleet`` turns the single-home testbed into a population workload:
:class:`FleetSampler` draws per-home :class:`HomeSpec`\\ s (device mix,
rule set, fault profile, attacker schedule) from seeded distributions;
:class:`FleetRunner` steps the homes in content-addressed batches across
the ``repro.parallel`` pool and streams aggregates through ``repro.obs``.
See ``docs/API.md`` ("repro.fleet") and ``experiments/breaking_point.py``
for the step-load experiment built on top.
"""

from .engine import (
    DEFAULT_BATCH_SIZE,
    SETTLE_SECONDS,
    FleetReport,
    FleetRunner,
    HomeResult,
    build_home,
    drive_home,
    fleet_digest,
    run_fleet,
    run_home,
    run_home_batch,
)
from .sampler import SEED_NAMESPACE, FleetSampler, home_seed
from .spec import SPEC_SCHEMA, FleetConfig, HomeSpec, Stimulus

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "SEED_NAMESPACE",
    "SETTLE_SECONDS",
    "SPEC_SCHEMA",
    "FleetConfig",
    "FleetReport",
    "FleetRunner",
    "FleetSampler",
    "HomeResult",
    "HomeSpec",
    "Stimulus",
    "build_home",
    "drive_home",
    "fleet_digest",
    "home_seed",
    "run_fleet",
    "run_home",
    "run_home_batch",
]
