"""Plain-text table rendering for the experiment harness.

The benches regenerate the paper's tables as fixed-width text so the
"same rows the paper reports" requirement is met on any terminal; no
plotting dependencies are needed.
"""

from __future__ import annotations

import math
from typing import Any, Iterable


def fmt_seconds(value: float | None, precision: int = 1) -> str:
    """Render a timeout/delay value the way the paper's tables do."""
    if value is None:
        return "∞"
    if isinstance(value, float) and math.isinf(value):
        return "∞"
    return f"{value:.{precision}f}s"


def fmt_window(window: tuple[float, float] | None, precision: int = 0) -> str:
    """Render a delay window like the paper's ``[60s, 180s]``."""
    if window is None:
        return "-"
    lo, hi = window
    if math.isinf(hi):
        return "∞"
    if abs(hi - lo) < 0.5:
        return fmt_seconds(hi, precision)
    return f"[{fmt_seconds(lo, precision)}, {fmt_seconds(hi, precision)}]"


def fmt_bool(value: Any) -> str:
    if value is None:
        return "-"
    return "yes" if value else "no"


class TextTable:
    """Minimal fixed-width table builder."""

    def __init__(self, headers: list[str], title: str = "") -> None:
        self.title = title
        self.headers = headers
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def median(values: Iterable[float]) -> float:
    data = sorted(values)
    if not data:
        raise ValueError("median of empty sequence")
    mid = len(data) // 2
    if len(data) % 2:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


def mean(values: Iterable[float]) -> float:
    data = list(values)
    if not data:
        raise ValueError("mean of empty sequence")
    return sum(data) / len(data)
