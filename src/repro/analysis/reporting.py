"""Plain-text table rendering for the experiment harness.

The benches regenerate the paper's tables as fixed-width text so the
"same rows the paper reports" requirement is met on any terminal; no
plotting dependencies are needed.
"""

from __future__ import annotations

import math
from typing import Any, Iterable


def fmt_seconds(value: float | None, precision: int = 1) -> str:
    """Render a timeout/delay value the way the paper's tables do."""
    if value is None:
        return "∞"
    if isinstance(value, float) and math.isinf(value):
        return "∞"
    return f"{value:.{precision}f}s"


def fmt_window(window: tuple[float, float] | None, precision: int = 0) -> str:
    """Render a delay window like the paper's ``[60s, 180s]``."""
    if window is None:
        return "-"
    lo, hi = window
    if math.isinf(hi):
        return "∞"
    if abs(hi - lo) < 0.5:
        return fmt_seconds(hi, precision)
    return f"[{fmt_seconds(lo, precision)}, {fmt_seconds(hi, precision)}]"


def fmt_bool(value: Any) -> str:
    if value is None:
        return "-"
    return "yes" if value else "no"


class TextTable:
    """Minimal fixed-width table builder."""

    def __init__(self, headers: list[str], title: str = "") -> None:
        self.title = title
        self.headers = headers
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def median(values: Iterable[float]) -> float:
    data = sorted(values)
    if not data:
        raise ValueError("median of empty sequence")
    mid = len(data) // 2
    if len(data) % 2:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


def mean(values: Iterable[float]) -> float:
    data = list(values)
    if not data:
        raise ValueError("mean of empty sequence")
    return sum(data) / len(data)


def render_manifest(manifest: Any) -> str:
    """Human-readable account of one campaign run manifest.

    ``manifest`` is a :class:`repro.obs.manifest.RunManifest`; imported by
    duck type so this module keeps zero dependencies on ``repro.obs``.
    """
    header = manifest.header
    out: list[str] = []
    info = TextTable(["Field", "Value"],
                     title=f"Campaign manifest — {header.get('campaign', '?')}")
    for field in ("schema", "seed", "jobs", "shards", "cached_shards",
                  "replayed_shards", "fault_profile", "cache_fingerprint",
                  "git_describe", "wall_seconds", "created_at"):
        value = header.get(field)
        if value is not None:
            info.add_row(field.replace("_", " "), value)
    out.append(info.render())

    if manifest.shards:
        rows = TextTable(
            ["#", "Shard", "Seed", "Cached", "Replayed", "Wall", "CPU",
             "Peak RSS", "Events"],
            title="Per-shard execution",
        )
        for row in manifest.shards:
            rows.add_row(
                row.index,
                row.key,
                "-" if row.seed is None else row.seed,
                fmt_bool(row.cached),
                fmt_bool(row.replayed),
                f"{row.wall_seconds:.3f}s",
                f"{row.cpu_seconds:.3f}s",
                f"{row.peak_rss_kb / 1024:.1f} MiB" if row.peak_rss_kb else "-",
                row.events or "-",
            )
        out.append("")
        out.append(rows.render())

    if manifest.hot_timers:
        hot = TextTable(["Timer label", "Fires"], title="Hottest timer labels")
        for entry in manifest.hot_timers:
            hot.add_row(entry["label"], entry["fires"])
        out.append("")
        out.append(hot.render())

    if manifest.attribution:
        attr = TextTable(["Delay metric", "Count", "Mean", "Min", "Max"],
                         title="Delay attribution summaries")
        for entry in manifest.attribution:
            attr.add_row(
                entry["metric"], entry["count"], f"{entry['mean']:.2f}s",
                f"{entry['min']:.2f}s", f"{entry['max']:.2f}s",
            )
        out.append("")
        out.append(attr.render())

    counters = [r for r in manifest.metrics if r.get("kind") == "counter"]
    if counters:
        table = TextTable(["Metric", "Value"], title="Merged counters")
        for record in counters:
            labels = ",".join(f"{k}={v}" for k, v in sorted(
                record.get("labels", {}).items()))
            name = f"{record['component']}/{record['name']}"
            if labels:
                name += f"[{labels}]"
            table.add_row(name, int(record["value"]))
        out.append("")
        out.append(table.render())
    return "\n".join(out)


def render_manifest_diff(diff: Any) -> str:
    """Render a :class:`repro.obs.manifest.ManifestDiff` for the CLI."""
    a, b = diff.a.header, diff.b.header
    out = [
        f"manifest diff: {a.get('campaign', '?')} "
        f"(seed {a.get('seed')}, jobs {a.get('jobs')}) vs "
        f"{b.get('campaign', '?')} (seed {b.get('seed')}, jobs {b.get('jobs')})",
    ]
    if diff.metric_drift:
        table = TextTable(["Metric", "Field", "A", "B"],
                          title=f"Metric drift ({len(diff.metric_drift)})")
        for entry in diff.metric_drift:
            table.add_row(entry["metric"], entry["field"],
                          entry["a"], entry["b"])
        out.append(table.render())
    if diff.attribution_deltas:
        table = TextTable(["Delay metric", "A", "B"],
                          title=f"Attribution deltas ({len(diff.attribution_deltas)})")
        for entry in diff.attribution_deltas:

            def _fmt(side: dict | None) -> str:
                if side is None:
                    return "absent"
                return (f"n={side.get('count')} mean={side.get('mean'):.2f}s "
                        f"[{side.get('min'):.2f}s, {side.get('max'):.2f}s]")

            table.add_row(entry["metric"], _fmt(entry["a"]), _fmt(entry["b"]))
        out.append(table.render())
    for note in diff.notes:
        out.append(f"note: {note}")
    out.append(
        "result: zero drift — deterministic sections identical"
        if diff.clean else
        "result: DRIFT — the runs measured different campaigns"
    )
    return "\n".join(out)
