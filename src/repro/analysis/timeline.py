"""Merged timelines: physical world vs cyber world, side by side.

The erroneous-execution attacks are about *disagreement between the two
worlds' orders of events* (the paper's ``I(E)`` vs ``S(E)``).  This module
assembles one chronological view from a testbed run — physical stimuli,
server-side event arrivals, rule firings, commands executed on devices,
notifications — which the examples print and the tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..obs.tracing import Span

if TYPE_CHECKING:  # pragma: no cover
    from ..testbed import SmartHomeTestbed

KIND_PHYSICAL = "physical"
KIND_SERVER_EVENT = "server-event"
KIND_RULE = "rule"
KIND_ACTION = "action"
KIND_NOTIFY = "notify"
KIND_ALARM = "alarm"
KIND_ATTACK = "attack"


@dataclass(frozen=True)
class TimelineEntry:
    ts: float
    kind: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.ts:9.3f}] {self.kind:12s} {self.subject}: {self.detail}"


def build_timeline(tb: "SmartHomeTestbed", since: float = 0.0) -> list[TimelineEntry]:
    """Collect every observable of a run into one ordered list."""
    entries: list[TimelineEntry] = []

    for device_id, device in tb.devices.items():
        for ts, attribute, value in device.state_history:
            if ts >= since:
                entries.append(
                    TimelineEntry(ts, KIND_PHYSICAL, device_id, f"{attribute}={value}")
                )
        for ts, name, _data in device.actions_executed:
            if ts >= since:
                entries.append(TimelineEntry(ts, KIND_ACTION, device_id, f"executed '{name}'"))

    engines = [tb.integration.engine]
    if tb.local_server is not None:
        engines.append(tb.local_server.engine)
    for engine in engines:
        for event in engine.event_log:
            if event.received_at >= since:
                entries.append(
                    TimelineEntry(
                        event.received_at,
                        KIND_SERVER_EVENT,
                        event.device_id,
                        f"'{event.event_name}' arrived "
                        f"(generated {event.received_at - event.device_time:.2f}s earlier)",
                    )
                )
        for firing in engine.firings:
            if firing.ts >= since:
                outcome = "fired" if firing.action_taken else (
                    "condition unmet" if not firing.condition_met else "no action"
                )
                entries.append(
                    TimelineEntry(
                        firing.ts, KIND_RULE, firing.rule_id,
                        f"{firing.trigger_event} -> {outcome}",
                    )
                )

    for note in tb.notifier.notifications:
        if note.delivered_at is not None and note.delivered_at >= since:
            entries.append(
                TimelineEntry(note.delivered_at, KIND_NOTIFY, note.channel, note.message)
            )

    for alarm in tb.alarms.alarms:
        if alarm.ts >= since:
            entries.append(TimelineEntry(alarm.ts, KIND_ALARM, alarm.source, alarm.kind))

    entries.sort(key=lambda e: (e.ts, e.kind))
    return entries


def render_timeline(tb: "SmartHomeTestbed", since: float = 0.0) -> str:
    return "\n".join(str(entry) for entry in build_timeline(tb, since=since))


def build_timeline_from_trace(spans: list[Span], since: float = 0.0) -> list[TimelineEntry]:
    """Rebuild a campaign timeline purely from recorded span data.

    This is the offline counterpart of :func:`build_timeline`: a trace
    exported with :meth:`~repro.obs.Tracer.export_jsonl` round-trips into
    the same chronological view without a live testbed — plus the attacker
    hold windows, which the live view cannot see.
    """
    entries: list[TimelineEntry] = []
    for span in spans:
        if span.component == "device" and span.name.startswith("stimulus:"):
            if span.start >= since:
                entries.append(
                    TimelineEntry(
                        span.start,
                        KIND_PHYSICAL,
                        str(span.attrs.get("device_id", "?")),
                        span.name.split(":", 1)[1],
                    )
                )
        elif span.component == "appproto" and span.name.startswith("event:"):
            delivered = span.attrs.get("delivered_at")
            if delivered is not None and delivered >= since:
                entries.append(
                    TimelineEntry(
                        delivered,
                        KIND_SERVER_EVENT,
                        str(span.attrs.get("device_id", "?")),
                        f"'{span.name.split(':', 1)[1]}' arrived "
                        f"(generated {delivered - span.start:.2f}s earlier)",
                    )
                )
        elif span.component == "attack" and span.name.startswith("hold"):
            if span.start >= since:
                held = (
                    "still holding"
                    if span.end is None
                    else f"held {span.duration:.2f}s ({span.attrs.get('reason', '?')})"
                )
                entries.append(
                    TimelineEntry(
                        span.start,
                        KIND_ATTACK,
                        str(span.attrs.get("flow", "?")),
                        f"{span.name} {held}",
                    )
                )
        elif span.component == "automation" and span.name.startswith("rule:"):
            if span.start >= since:
                if span.attrs.get("action_taken"):
                    outcome = "fired"
                elif not span.attrs.get("condition_met", True):
                    outcome = "condition unmet"
                else:
                    outcome = "no action"
                entries.append(
                    TimelineEntry(
                        span.start,
                        KIND_RULE,
                        span.name.split(":", 1)[1],
                        f"{span.attrs.get('trigger', '?')} -> {outcome}",
                    )
                )
        elif span.component == "cloud" and span.name.startswith("notify:"):
            delivered = span.attrs.get("delivered_at")
            if delivered is not None and delivered >= since:
                entries.append(
                    TimelineEntry(
                        delivered,
                        KIND_NOTIFY,
                        span.name.split(":", 1)[1],
                        str(span.attrs.get("message", "")),
                    )
                )
        elif span.component == "alarms" and span.name.startswith("alarm:"):
            if span.start >= since:
                entries.append(
                    TimelineEntry(
                        span.start,
                        KIND_ALARM,
                        str(span.attrs.get("source", "?")),
                        span.name.split(":", 1)[1],
                    )
                )
    entries.sort(key=lambda e: (e.ts, e.kind))
    return entries


def render_timeline_from_trace(spans: list[Span], since: float = 0.0) -> str:
    return "\n".join(str(entry) for entry in build_timeline_from_trace(spans, since=since))


def ordering_violations(tb: "SmartHomeTestbed", since: float = 0.0) -> list[tuple[str, str]]:
    """Pairs of server-side events whose arrival order contradicts their
    generation order — the wire-level signature of a phantom delay.

    A defender with access to device timestamps could compute exactly this;
    its emptiness in benign runs (and non-emptiness under attack) is
    asserted by the tests.
    """
    engines = [tb.integration.engine]
    if tb.local_server is not None:
        engines.append(tb.local_server.engine)
    violations: list[tuple[str, str]] = []
    for engine in engines:
        log = [e for e in engine.event_log if e.received_at >= since]
        for earlier, later in zip(log, log[1:]):
            if earlier.device_time > later.device_time + 1e-9:
                violations.append(
                    (
                        f"{earlier.device_id}:{earlier.event_name}@{earlier.device_time:.2f}",
                        f"{later.device_id}:{later.event_name}@{later.device_time:.2f}",
                    )
                )
    return violations
