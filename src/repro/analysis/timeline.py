"""Merged timelines: physical world vs cyber world, side by side.

The erroneous-execution attacks are about *disagreement between the two
worlds' orders of events* (the paper's ``I(E)`` vs ``S(E)``).  This module
assembles one chronological view from a testbed run — physical stimuli,
server-side event arrivals, rule firings, commands executed on devices,
notifications — which the examples print and the tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..testbed import SmartHomeTestbed

KIND_PHYSICAL = "physical"
KIND_SERVER_EVENT = "server-event"
KIND_RULE = "rule"
KIND_ACTION = "action"
KIND_NOTIFY = "notify"
KIND_ALARM = "alarm"


@dataclass(frozen=True)
class TimelineEntry:
    ts: float
    kind: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.ts:9.3f}] {self.kind:12s} {self.subject}: {self.detail}"


def build_timeline(tb: "SmartHomeTestbed", since: float = 0.0) -> list[TimelineEntry]:
    """Collect every observable of a run into one ordered list."""
    entries: list[TimelineEntry] = []

    for device_id, device in tb.devices.items():
        for ts, attribute, value in device.state_history:
            if ts >= since:
                entries.append(
                    TimelineEntry(ts, KIND_PHYSICAL, device_id, f"{attribute}={value}")
                )
        for ts, name, _data in device.actions_executed:
            if ts >= since:
                entries.append(TimelineEntry(ts, KIND_ACTION, device_id, f"executed '{name}'"))

    engines = [tb.integration.engine]
    if tb.local_server is not None:
        engines.append(tb.local_server.engine)
    for engine in engines:
        for event in engine.event_log:
            if event.received_at >= since:
                entries.append(
                    TimelineEntry(
                        event.received_at,
                        KIND_SERVER_EVENT,
                        event.device_id,
                        f"'{event.event_name}' arrived "
                        f"(generated {event.received_at - event.device_time:.2f}s earlier)",
                    )
                )
        for firing in engine.firings:
            if firing.ts >= since:
                outcome = "fired" if firing.action_taken else (
                    "condition unmet" if not firing.condition_met else "no action"
                )
                entries.append(
                    TimelineEntry(
                        firing.ts, KIND_RULE, firing.rule_id,
                        f"{firing.trigger_event} -> {outcome}",
                    )
                )

    for note in tb.notifier.notifications:
        if note.delivered_at is not None and note.delivered_at >= since:
            entries.append(
                TimelineEntry(note.delivered_at, KIND_NOTIFY, note.channel, note.message)
            )

    for alarm in tb.alarms.alarms:
        if alarm.ts >= since:
            entries.append(TimelineEntry(alarm.ts, KIND_ALARM, alarm.source, alarm.kind))

    entries.sort(key=lambda e: (e.ts, e.kind))
    return entries


def render_timeline(tb: "SmartHomeTestbed", since: float = 0.0) -> str:
    return "\n".join(str(entry) for entry in build_timeline(tb, since=since))


def ordering_violations(tb: "SmartHomeTestbed", since: float = 0.0) -> list[tuple[str, str]]:
    """Pairs of server-side events whose arrival order contradicts their
    generation order — the wire-level signature of a phantom delay.

    A defender with access to device timestamps could compute exactly this;
    its emptiness in benign runs (and non-emptiness under attack) is
    asserted by the tests.
    """
    engines = [tb.integration.engine]
    if tb.local_server is not None:
        engines.append(tb.local_server.engine)
    violations: list[tuple[str, str]] = []
    for engine in engines:
        log = [e for e in engine.event_log if e.received_at >= since]
        for earlier, later in zip(log, log[1:]):
            if earlier.device_time > later.device_time + 1e-9:
                violations.append(
                    (
                        f"{earlier.device_id}:{earlier.event_name}@{earlier.device_time:.2f}",
                        f"{later.device_id}:{later.event_name}@{later.device_time:.2f}",
                    )
                )
    return violations
