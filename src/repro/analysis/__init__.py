"""Reporting, metrics, and timeline analysis for the experiment harness."""

from .reporting import TextTable, fmt_bool, fmt_seconds, fmt_window, mean, median
from .timeline import (
    TimelineEntry,
    build_timeline,
    ordering_violations,
    render_timeline,
)

__all__ = [
    "TextTable",
    "TimelineEntry",
    "build_timeline",
    "fmt_bool",
    "fmt_seconds",
    "fmt_window",
    "mean",
    "median",
    "ordering_violations",
    "render_timeline",
]
