"""Reporting, metrics, and timeline analysis for the experiment harness."""

from .reporting import (
    TextTable,
    fmt_bool,
    fmt_seconds,
    fmt_window,
    mean,
    median,
    render_manifest,
    render_manifest_diff,
)
from .timeline import (
    TimelineEntry,
    build_timeline,
    build_timeline_from_trace,
    ordering_violations,
    render_timeline,
    render_timeline_from_trace,
)

__all__ = [
    "TextTable",
    "TimelineEntry",
    "build_timeline",
    "build_timeline_from_trace",
    "fmt_bool",
    "fmt_seconds",
    "fmt_window",
    "mean",
    "median",
    "ordering_violations",
    "render_manifest",
    "render_manifest_diff",
    "render_timeline",
    "render_timeline_from_trace",
]
