"""A small textual rule language.

The paper collects its PoC automation rules from user forums where they are
written in prose; the examples directory uses this DSL to keep scenario
scripts readable::

    WHEN c2 contact.open IF pr1.presence == present THEN COMMAND lk1 unlock
    WHEN sm1 smoke.detected THEN NOTIFY push "Smoke detected in the kitchen"

Grammar (one rule per line, ``#`` comments allowed)::

    rule      := "WHEN" device event [ "IF" device "." attr "==" value ] "THEN" action
    action    := "COMMAND" device command | "NOTIFY" channel quoted-text
"""

from __future__ import annotations

import itertools
import re
import shlex

from .rules import CommandAction, Condition, EventPattern, NotifyAction, Rule

_rule_ids = itertools.count(1)

_CONDITION_RE = re.compile(r"^(?P<dev>[\w-]+)\.(?P<attr>[\w-]+)$")


class RuleSyntaxError(ValueError):
    """Raised when a DSL line cannot be parsed."""


def parse_rule(line: str, rule_id: str | None = None) -> Rule:
    """Parse one DSL line into a :class:`Rule`."""
    tokens = shlex.split(line, comments=True)
    if not tokens:
        raise RuleSyntaxError("empty rule")
    try:
        return _parse_tokens(tokens, rule_id or f"rule-{next(_rule_ids)}", line)
    except (IndexError, StopIteration) as exc:
        raise RuleSyntaxError(f"truncated rule: {line!r}") from exc


def _parse_tokens(tokens: list[str], rule_id: str, line: str) -> Rule:
    it = iter(tokens)
    if next(it).upper() != "WHEN":
        raise RuleSyntaxError(f"rule must start with WHEN: {line!r}")
    trigger = EventPattern(device_id=next(it), event_name=next(it))
    condition = None
    word = next(it).upper()
    if word == "IF":
        target = next(it)
        match = _CONDITION_RE.match(target)
        if match is None:
            raise RuleSyntaxError(f"bad condition target {target!r}")
        op = next(it)
        if op != "==":
            raise RuleSyntaxError(f"only '==' conditions supported, got {op!r}")
        condition = Condition(
            device_id=match.group("dev"),
            attribute=match.group("attr"),
            equals=next(it),
        )
        word = next(it).upper()
    if word != "THEN":
        raise RuleSyntaxError(f"expected THEN, got {word!r}")
    kind = next(it).upper()
    if kind == "COMMAND":
        action = CommandAction(device_id=next(it), command=next(it))
    elif kind == "NOTIFY":
        action = NotifyAction(channel=next(it), message=next(it))
    else:
        raise RuleSyntaxError(f"unknown action kind {kind!r}")
    return Rule(
        rule_id=rule_id,
        trigger=trigger,
        condition=condition,
        action=action,
        description=line.strip(),
    )


def _quote(token: str) -> str:
    """Render one token so :func:`shlex.split` gives it back verbatim.

    :func:`shlex.quote` already quotes everything outside ``[\\w@%+=:,./-]``
    — including ``#``, which matters because :func:`parse_rule` splits
    with comments enabled.
    """
    return shlex.quote(token)


def unparse_rule(rule: Rule) -> str:
    """Render a :class:`Rule` back into one DSL line.

    The inverse of :func:`parse_rule` up to token spelling:
    ``parse_rule(unparse_rule(rule))`` reproduces the rule's trigger,
    condition, and action exactly (``rule_id`` and ``description`` are
    not part of the grammar and are not preserved).
    """
    parts = ["WHEN", _quote(rule.trigger.device_id),
             _quote(rule.trigger.event_name)]
    if rule.condition is not None:
        parts += [
            "IF",
            f"{rule.condition.device_id}.{rule.condition.attribute}",
            "==",
            _quote(rule.condition.equals),
        ]
    parts.append("THEN")
    if isinstance(rule.action, CommandAction):
        parts += ["COMMAND", _quote(rule.action.device_id),
                  _quote(rule.action.command)]
    elif isinstance(rule.action, NotifyAction):
        parts += ["NOTIFY", _quote(rule.action.channel),
                  _quote(rule.action.message)]
    else:
        raise RuleSyntaxError(
            f"cannot render action of type {type(rule.action).__name__}"
        )
    return " ".join(parts)


def parse_rules(text: str) -> list[Rule]:
    """Parse a block of DSL text, skipping blank and comment lines."""
    rules = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        rules.append(parse_rule(line))
    return rules
