"""Trigger-condition-action automation: rules, engine, and DSL."""

from .dsl import RuleSyntaxError, parse_rule, parse_rules
from .engine import AutomationEngine, ReceivedEvent, ShadowState
from .rules import (
    Action,
    CommandAction,
    Condition,
    EventPattern,
    NotifyAction,
    Rule,
    RuleFiring,
)

__all__ = [
    "Action",
    "AutomationEngine",
    "CommandAction",
    "Condition",
    "EventPattern",
    "NotifyAction",
    "ReceivedEvent",
    "Rule",
    "RuleFiring",
    "RuleSyntaxError",
    "ShadowState",
    "parse_rule",
    "parse_rules",
]
