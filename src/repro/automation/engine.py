"""The automation engine an IoT server runs.

The engine keeps a *shadow state* per device — the cyber-world's knowledge
of the physical world — updated strictly in event **arrival** order.  The
paper's central observation is that this knowledge can silently go stale:
delayed events make the shadow lag reality, so conditions evaluate against
the past and actions fire (or fail to fire) wrongly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from .rules import CommandAction, NotifyAction, Rule, RuleFiring

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

CommandSink = Callable[[str, str, dict[str, Any]], None]
NotifySink = Callable[[str, str], None]


@dataclass
class ShadowState:
    """The server's last-known value of one device attribute."""

    value: str
    updated_at: float
    device_time: float  # timestamp the device put in the event


@dataclass
class ReceivedEvent:
    """One event as seen by the server (arrival order, not generation order)."""

    received_at: float
    device_id: str
    event_name: str
    device_time: float
    data: dict[str, Any] = field(default_factory=dict)


class AutomationEngine:
    """Evaluates TCA rules over arriving events."""

    def __init__(
        self,
        sim: "Simulator",
        command_sink: CommandSink,
        notify_sink: NotifySink | None = None,
        name: str = "engine",
        trigger_max_age: float | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.command_sink = command_sink
        self.notify_sink = notify_sink
        #: Section VII-B timestamp checking: events older than this do not
        #: *trigger* rules (they still update the shadow).  None disables
        #: the check — today's deployed behaviour.
        self.trigger_max_age = trigger_max_age
        self.rules: list[Rule] = []
        self.shadow: dict[tuple[str, str], ShadowState] = {}
        self.event_log: list[ReceivedEvent] = []
        self.firings: list[RuleFiring] = []
        self.stale_triggers_suppressed: list[ReceivedEvent] = []

    # ---------------------------------------------------------------- rules

    def install_rule(self, rule: Rule) -> None:
        if any(r.rule_id == rule.rule_id for r in self.rules):
            raise ValueError(f"duplicate rule id: {rule.rule_id}")
        self.rules.append(rule)

    def remove_rule(self, rule_id: str) -> None:
        self.rules = [r for r in self.rules if r.rule_id != rule_id]

    # --------------------------------------------------------------- events

    def handle_event(
        self,
        device_id: str,
        event_name: str,
        device_time: float,
        data: dict[str, Any] | None = None,
    ) -> list[RuleFiring]:
        """Process one arriving event: update shadow, then evaluate rules.

        Returns the firing record for each rule the event triggered.
        """
        data = data or {}
        received = ReceivedEvent(
            received_at=self.sim.now,
            device_id=device_id,
            event_name=event_name,
            device_time=device_time,
            data=dict(data),
        )
        self.event_log.append(received)
        self._update_shadow(device_id, event_name, device_time)
        obs = self.sim.obs
        if obs.enabled:
            obs.registry.counter("automation", "events_in", engine=self.name).inc()
        if (
            self.trigger_max_age is not None
            and self.sim.now - device_time > self.trigger_max_age
        ):
            # Timestamp checking: a stale event may not start an automation.
            # Note the asymmetry the paper points out — the shadow update
            # above still happened late, so condition-delay attacks survive.
            self.stale_triggers_suppressed.append(received)
            if obs.enabled:
                obs.registry.counter(
                    "automation", "stale_triggers_suppressed", engine=self.name
                ).inc()
            return []
        fired: list[RuleFiring] = []
        inv = self.sim.invariants
        for rule in self.rules:
            if not rule.trigger.matches(device_id, event_name):
                continue
            if inv is not None:
                inv.on_rule_fired(rule.rule_id, device_id, event_name)
            fired.append(self._evaluate(rule, event_name))
        return fired

    def _update_shadow(self, device_id: str, event_name: str, device_time: float) -> None:
        if "." not in event_name:
            return
        attribute, value = event_name.split(".", 1)
        self.shadow[(device_id, attribute)] = ShadowState(
            value=value, updated_at=self.sim.now, device_time=device_time
        )

    def _evaluate(self, rule: Rule, trigger_event: str) -> RuleFiring:
        obs = self.sim.obs
        if obs.enabled:
            with obs.tracer.span(
                "automation", f"rule:{rule.rule_id}", trigger=trigger_event
            ) as span:
                firing = self._evaluate_inner(rule, trigger_event)
                span.attrs["condition_met"] = firing.condition_met
                span.attrs["action_taken"] = firing.action_taken
            obs.registry.counter(
                "automation", "rule_evaluations", rule=rule.rule_id
            ).inc()
            if firing.action_taken:
                obs.registry.counter(
                    "automation", "rule_firings", rule=rule.rule_id
                ).inc()
            return firing
        return self._evaluate_inner(rule, trigger_event)

    def _evaluate_inner(self, rule: Rule, trigger_event: str) -> RuleFiring:
        condition_met = True
        detail = ""
        if rule.condition is not None:
            state = self.shadow.get((rule.condition.device_id, rule.condition.attribute))
            condition_met = state is not None and state.value == rule.condition.equals
            detail = (
                f"condition {rule.condition} -> "
                f"{state.value if state else '<unknown>'}"
            )
        firing = RuleFiring(
            ts=self.sim.now,
            rule_id=rule.rule_id,
            trigger_event=trigger_event,
            condition_met=condition_met,
            action_taken=False,
            detail=detail,
        )
        if condition_met:
            self._execute(rule)
            firing.action_taken = True
        self.firings.append(firing)
        return firing

    def _execute(self, rule: Rule) -> None:
        action = rule.action
        if isinstance(action, CommandAction):
            self.command_sink(action.device_id, action.command, dict(action.data))
        elif isinstance(action, NotifyAction):
            if self.notify_sink is not None:
                self.notify_sink(action.message, action.channel)

    # ------------------------------------------------------------ inspection

    def state_of(self, device_id: str, attribute: str) -> str | None:
        state = self.shadow.get((device_id, attribute))
        return state.value if state else None

    def firings_of(self, rule_id: str) -> list[RuleFiring]:
        return [f for f in self.firings if f.rule_id == rule_id]

    def actions_taken(self, rule_id: str | None = None) -> list[RuleFiring]:
        return [
            f
            for f in self.firings
            if f.action_taken and (rule_id is None or f.rule_id == rule_id)
        ]
