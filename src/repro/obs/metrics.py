"""Metrics substrate: counters, gauges, and streaming histograms.

The registry gives every layer of the reproduction one uniform way to
account for what it did — frames forwarded, segments retransmitted, alarms
raised, timer firing latencies — keyed by ``(component, name, labels)``.
Histograms are *streaming*: quantiles (p50/p95/p99) come from
logarithmically-bucketed counts, so recording a sample is O(1) and memory
stays bounded no matter how long a campaign runs.  The relative error of a
reported quantile is bounded by the bucket growth factor (default 5%).

Everything here is deliberately free of simulation imports: a registry can
be snapshotted to JSONL mid-run, shipped elsewhere, and re-imported for
offline analysis (mirroring how TAPInspector-style rule checkers consume
structured event records rather than live state).
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import tempfile
from typing import Any, Iterable

#: Canonical identity of one metric: (component, name, sorted label pairs).
MetricKey = tuple[str, str, tuple[tuple[str, str], ...]]


def _make_key(component: str, name: str, labels: dict[str, str]) -> MetricKey:
    return (component, name, tuple(sorted(labels.items())))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("key", "value")
    kind = "counter"

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        """Fold another shard's count in: counts of disjoint runs add."""
        self.value += other.value

    def summary(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Point-in-time value (queue depth, live session count, ...)."""

    __slots__ = ("key", "value", "high_water")
    kind = "gauge"

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, n: float = 1.0) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def merge(self, other: "Gauge") -> None:
        """Fold another shard's gauge in.

        Instantaneous values of disjoint shards add (each shard's queue
        depth contributes to the campaign's); high-water marks take the
        max, since the shards never coexisted in one process.
        """
        self.value += other.value
        self.high_water = max(self.high_water, other.high_water)

    def summary(self) -> dict[str, Any]:
        return {"value": self.value, "high_water": self.high_water}


class StreamingHistogram:
    """Quantile sketch over log-spaced buckets; no samples are stored.

    A sample ``v`` lands in bucket ``floor(log(v) / log(growth))``; the
    representative value reported for a bucket is the geometric mean of its
    bounds, so any quantile is accurate to within ``growth`` relative error
    (±5% at the default).  Zero and sub-``floor`` samples are counted in a
    dedicated zero bucket — timer latencies of exactly 0 are common in a
    discrete-event simulator and must not vanish.
    """

    __slots__ = ("key", "buckets", "zero_count", "count", "total", "min", "max",
                 "_log_growth", "growth")
    kind = "histogram"

    #: Samples below this are indistinguishable from zero (1 µs of sim time).
    FLOOR = 1e-6

    def __init__(self, key: MetricKey, growth: float = 1.05) -> None:
        self.key = key
        self.growth = growth
        self._log_growth = math.log(growth)
        self.buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < self.FLOOR:
            self.zero_count += 1
            return
        # floor, not int(): truncation would merge the two buckets around
        # 1.0 (negative logs round toward zero) and double their error.
        idx = math.floor(math.log(value) / self._log_growth)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], to within the bucket precision."""
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        rank = q * (self.count - 1) + 1  # 1-based rank, nearest-rank style
        if rank <= self.zero_count:
            return self._clamp(0.0)
        seen = self.zero_count
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                lo = self.growth ** idx
                # Geometric bucket midpoint, clamped: the midpoint of the
                # min or max observation's bucket can fall outside the
                # observed range, and a quantile must never do that.
                return self._clamp(lo * math.sqrt(self.growth))
        return self.max

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min), self.max)

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram's buckets in (exact, order-independent).

        Bucket counts, the zero bucket, ``count``, ``min``, and ``max``
        combine exactly, so any quantile of the merged sketch is the same
        no matter how many shards contributed or in which order they were
        merged.  ``total`` is a float sum, so ``mean`` is merge-order
        sensitive only in its last bits; campaign merges therefore always
        fold in shard-index order.  Growth factors must match — resampling
        between bucket bases would silently widen the error bound.
        """
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge histograms with different growth factors: "
                f"{self.growth} != {other.growth}"
            )
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # ------------------------------------------------------- serialisation

    def state(self) -> dict[str, Any]:
        return {
            "growth": self.growth,
            "buckets": {str(k): v for k, v in self.buckets.items()},
            "zero_count": self.zero_count,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.growth = state["growth"]
        self._log_growth = math.log(self.growth)
        self.buckets = {int(k): v for k, v in state["buckets"].items()}
        self.zero_count = state["zero_count"]
        self.count = state["count"]
        self.total = state["total"]
        self.min = state["min"] if state["min"] is not None else math.inf
        self.max = state["max"] if state["max"] is not None else -math.inf


Metric = Counter | Gauge | StreamingHistogram


class MetricsRegistry:
    """All metrics of one simulation run, keyed by (component, name, labels).

    ``counter`` / ``gauge`` / ``histogram`` get-or-create, so instrumentation
    sites never need registration boilerplate.  Hot paths should hold on to
    the returned handle instead of re-looking it up per event.
    """

    def __init__(self, *, capture: bool = True) -> None:
        self._metrics: dict[MetricKey, Metric] = {}
        if capture:
            # Worker-side telemetry: a registry born while a shard capture
            # is active is harvested into the shard's snapshot when the
            # capture closes (see repro.obs.telemetry).  ``capture=False``
            # keeps merge targets and driver bookkeeping out of the loop.
            from . import telemetry

            telemetry.register_registry(self)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[Metric]:
        return iter(self._metrics.values())

    def _get_or_create(self, cls: type, component: str, name: str,
                       labels: dict[str, str]) -> Any:
        key = _make_key(component, name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(key)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {key} already registered as {metric.kind}, "
                f"requested {cls.__name__}"
            )
        return metric

    def counter(self, component: str, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, component, name, labels)

    def gauge(self, component: str, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, component, name, labels)

    def histogram(self, component: str, name: str, **labels: str) -> StreamingHistogram:
        return self._get_or_create(StreamingHistogram, component, name, labels)

    # ------------------------------------------------------------ queries

    def get(self, component: str, name: str, **labels: str) -> Metric | None:
        return self._metrics.get(_make_key(component, name, labels))

    def find(self, component: str | None = None, name: str | None = None) -> list[Metric]:
        return [
            m
            for key, m in sorted(self._metrics.items())
            if (component is None or key[0] == component)
            and (name is None or key[1] == name)
        ]

    def value(self, component: str, name: str, **labels: str) -> float:
        """Counter/gauge value (0 when the metric was never touched)."""
        metric = self.get(component, name, **labels)
        if metric is None:
            return 0
        if isinstance(metric, StreamingHistogram):
            return metric.count
        return metric.value

    # ------------------------------------------------------------- merging

    def merge(self, other: "MetricsRegistry",
              exclude_components: Iterable[str] = ()) -> "MetricsRegistry":
        """Fold another registry's metrics into this one, key by key.

        Metrics present in both registries combine by kind (counters add,
        gauges add value / max high-water, histograms add buckets); metrics
        only in ``other`` are created here.  A key registered with a
        different kind raises ``TypeError`` — silent coercion would corrupt
        campaign roll-ups.  ``exclude_components`` skips whole components
        (the runner uses it to keep wall-clock bookkeeping out of the
        deterministic campaign snapshot).
        """
        excluded = frozenset(exclude_components)
        for key, metric in sorted(other._metrics.items()):
            component, name, labels = key
            if component in excluded:
                continue
            mine = self._get_or_create(type(metric), component, name, dict(labels))
            mine.merge(metric)
        return self

    @classmethod
    def from_records(cls, records: Iterable[dict[str, Any]]) -> "MetricsRegistry":
        """Rebuild a registry from snapshot records (see :meth:`snapshot`)."""
        registry = cls(capture=False)
        for record in records:
            labels = record.get("labels", {})
            kind = record["kind"]
            if kind == "counter":
                registry.counter(record["component"], record["name"], **labels).inc(
                    record["value"]
                )
            elif kind == "gauge":
                gauge = registry.gauge(record["component"], record["name"], **labels)
                gauge.high_water = record.get("high_water", record["value"])
                gauge.value = record["value"]
            elif kind == "histogram":
                hist = registry.histogram(record["component"], record["name"], **labels)
                hist.restore(record["state"])
            else:
                raise ValueError(f"unknown metric kind in record: {kind!r}")
        return registry

    # --------------------------------------------------------- snapshotting

    def snapshot(self) -> list[dict[str, Any]]:
        """All metrics as plain records, sorted by key for determinism."""
        out = []
        for key, metric in sorted(self._metrics.items()):
            component, name, labels = key
            record: dict[str, Any] = {
                "component": component,
                "name": name,
                "labels": dict(labels),
                "kind": metric.kind,
            }
            record.update(metric.summary())
            if isinstance(metric, StreamingHistogram):
                record["state"] = metric.state()
            elif isinstance(metric, Gauge):
                record["high_water"] = metric.high_water
            out.append(record)
        return out

    def export_jsonl(self, path: str) -> int:
        """Write a snapshot as JSON lines, atomically; returns the count.

        Serialisation happens before the destination is touched and the
        blob lands via a same-directory temp file + ``os.replace``, so a
        crash mid-export never truncates an existing snapshot.
        """
        records = self.snapshot()
        blob = "".join(json.dumps(r) + "\n" for r in records)
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".metrics-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        return len(records)

    @classmethod
    def import_jsonl(cls, path: str) -> "MetricsRegistry":
        """Rebuild a registry from an exported snapshot."""
        records = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return cls.from_records(records)

    # ------------------------------------------------------------ rendering

    def render_table(self, component: str | None = None) -> str:
        """Human-readable metrics table (the ``repro observe`` output)."""
        from ..analysis.reporting import TextTable

        table = TextTable(
            ["Component", "Metric", "Labels", "Kind", "Value", "p50", "p95", "p99"],
            title="Metrics",
        )
        for key, metric in sorted(self._metrics.items()):
            comp, name, labels = key
            if component is not None and comp != component:
                continue
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            if isinstance(metric, StreamingHistogram):
                table.add_row(
                    comp, name, label_str, metric.kind,
                    f"n={metric.count}",
                    f"{metric.quantile(0.50):.4f}",
                    f"{metric.quantile(0.95):.4f}",
                    f"{metric.quantile(0.99):.4f}",
                )
            else:
                value = metric.value
                shown = f"{value:g}"
                table.add_row(comp, name, label_str, metric.kind, shown, "", "", "")
        return table.render()
