"""Phantom-delay attribution: where did a message's latency go?

The paper's headline number — "the alert arrived 72 s late and nothing
alarmed" — begs the obvious follow-up: *which* mechanism contributed what.
This module decomposes one traced message's end-to-end delay into

* **attacker_hold** — time the hijacker's hold kept segments buffered
  (from the hold span's trigger to its release, clipped to the message's
  in-flight window);
* **tcp_retransmission** — time spent waiting on retransmission timers for
  the message's flow (each ``tcp/retx`` event carries the RTO that elapsed
  before it fired);
* **transit** — the residual: link/cloud latency and endpoint processing.

The three components sum to the observed end-to-end delay by construction,
so the interesting output is their *ratio* — in a clean e-Delay run the
hold dominates and retransmission is exactly zero, which is the paper's
decoupling claim in one line of arithmetic.

Attacker hold spans are recorded against the *flow* (the hijacker cannot
see msg_ids inside TLS), so :func:`link_hold_spans` stitches them into the
message's span tree by flow match and time overlap before rendering.
"""

from __future__ import annotations

from dataclasses import dataclass

from .tracing import Span


@dataclass
class DelayAttribution:
    """Decomposition of one message's delivery delay."""

    trace_id: int
    msg_id: int | None
    origin_ts: float
    delivered_ts: float
    attacker_hold: float
    tcp_retransmission: float
    transit: float

    @property
    def total(self) -> float:
        return self.delivered_ts - self.origin_ts

    @property
    def components_sum(self) -> float:
        return self.attacker_hold + self.tcp_retransmission + self.transit

    def render(self) -> str:
        lines = [
            f"end-to-end delay : {self.total:9.3f} s "
            f"(origin {self.origin_ts:.3f} -> delivered {self.delivered_ts:.3f})",
            f"  attacker hold  : {self.attacker_hold:9.3f} s",
            f"  tcp retransmit : {self.tcp_retransmission:9.3f} s",
            f"  transit/other  : {self.transit:9.3f} s",
        ]
        return "\n".join(lines)


def _message_span(spans: list[Span], msg_id: int) -> Span | None:
    for span in spans:
        if span.component == "appproto" and span.attrs.get("msg_id") == msg_id:
            return span
    return None


def _overlap(lo_a: float, hi_a: float, lo_b: float, hi_b: float) -> float:
    return max(0.0, min(hi_a, hi_b) - max(lo_a, lo_b))


def hold_spans_for_flow(spans: list[Span], flow: str) -> list[Span]:
    return [
        s
        for s in spans
        if s.component == "attack"
        and s.name.startswith("hold")
        and s.attrs.get("flow") == flow
    ]


def link_hold_spans(spans: list[Span]) -> int:
    """Reparent orphan attacker-hold spans onto the message they delayed.

    A hold span joins a message span's tree when their flows match and the
    hold's window overlaps the message's in-flight window.  Returns the
    number of spans relinked (idempotent — already-linked spans are
    skipped).
    """
    messages = [
        s for s in spans if s.component == "appproto" and "flow" in s.attrs
    ]
    linked = 0
    for hold in spans:
        if hold.component != "attack" or not hold.name.startswith("hold"):
            continue
        if hold.parent_id is not None:
            continue
        hold_end = hold.end if hold.end is not None else float("inf")
        for message in messages:
            msg_end = message.end if message.end is not None else float("inf")
            if message.attrs.get("flow") != hold.attrs.get("flow"):
                continue
            if _overlap(hold.start, hold_end, message.start, msg_end) <= 0:
                continue
            hold.parent_id = message.span_id
            hold.trace_id = message.trace_id
            linked += 1
            break
    return linked


def attribute_delay(spans: list[Span], msg_id: int) -> DelayAttribution | None:
    """Decompose the delivery delay of the message with ``msg_id``.

    Returns None when the message was never traced or never delivered
    (e.g. it was silently discarded — itself a finding worth surfacing).
    """
    message = _message_span(spans, msg_id)
    if message is None:
        return None
    delivered = message.attrs.get("delivered_at")
    if delivered is None:
        return None

    # Origin: the physical stimulus (the device-layer root), falling back to
    # the send instant for messages without a traced stimulus.
    origin = message.start
    by_id = {s.span_id: s for s in spans}
    parent = by_id.get(message.parent_id) if message.parent_id is not None else None
    if parent is not None and parent.component == "device":
        origin = parent.start

    flow = message.attrs.get("flow", "")
    hold_time = 0.0
    for hold in hold_spans_for_flow(spans, flow):
        hold_end = hold.end if hold.end is not None else delivered
        hold_time += _overlap(hold.start, hold_end, origin, delivered)

    retx_time = 0.0
    for span in spans:
        if span.component != "tcp" or span.name != "retx":
            continue
        if span.attrs.get("flow") != flow:
            continue
        if origin <= span.start <= delivered:
            retx_time += float(span.attrs.get("waited", 0.0))

    total = delivered - origin
    # The residual is transit: link latency, cloud hops, and processing.
    transit = total - hold_time - retx_time
    return DelayAttribution(
        trace_id=message.trace_id,
        msg_id=msg_id,
        origin_ts=origin,
        delivered_ts=delivered,
        attacker_hold=hold_time,
        tcp_retransmission=retx_time,
        transit=transit,
    )
