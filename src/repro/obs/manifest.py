"""Run manifests: one JSONL artifact per campaign, diffable and loadable.

A campaign that ran is a campaign that can be audited: the manifest records
*what* ran (campaign, seed, jobs, fault profile, cache fingerprint, git
describe), *what it measured* (the merged deterministic metrics snapshot,
span rollups, delay summaries, the hottest timer labels), and *how each
shard behaved* (wall/CPU seconds, peak RSS, cache hit, in-process replay
after a worker failure).  The file is line-oriented JSON with a
schema-versioned header, written atomically, and loads back through
:meth:`RunManifest.load` for ``phantom-delay observe report|diff`` and
``repro.analysis``.

The metric records are the determinism contract: for the same campaign and
seed they are byte-identical for every ``jobs`` value, warm or cold, so
``diff`` of two equivalent runs reports zero drift while timing rows are
surfaced as context, never as drift.
"""

from __future__ import annotations

import contextlib
import json
import os
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .telemetry import RegistrySnapshot, ShardTelemetry

#: Bump when the manifest layout changes; loaders reject newer schemas.
MANIFEST_SCHEMA = 1

#: How many of the hottest timer labels the manifest keeps.
HOT_TIMER_TOP_K = 10

#: Environment override for where auto-named manifests land.
MANIFEST_DIR_ENV = "REPRO_MANIFEST_DIR"


def git_describe() -> str:
    """Best-effort code identity (``unknown`` outside a git repo)."""
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=root, capture_output=True, text=True, timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    described = out.stdout.strip()
    return described if out.returncode == 0 and described else "unknown"


def manifest_dir() -> Path:
    """Where auto-named campaign manifests are written.

    Defaults next to the campaign cache so test isolation of
    ``REPRO_CACHE_DIR`` isolates manifests too.
    """
    env = os.environ.get(MANIFEST_DIR_ENV)
    if env:
        return Path(env)
    from ..cache.store import default_cache_dir

    return default_cache_dir() / "manifests"


def manifest_path_for(campaign: str, override: str | os.PathLike | None = None) -> Path:
    """The deterministic manifest path of one campaign."""
    if override is not None:
        return Path(override)
    return manifest_dir() / f"{campaign}.jsonl"


@dataclass(frozen=True)
class ShardRow:
    """One shard's account in the manifest."""

    index: int
    key: str
    seed: int | None
    cached: bool = False
    replayed: bool = False
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    peak_rss_kb: int = 0
    events: int = 0

    def to_record(self) -> dict[str, Any]:
        return {
            "record": "shard",
            "index": self.index,
            "key": self.key,
            "seed": self.seed,
            "cached": self.cached,
            "replayed": self.replayed,
            "wall_seconds": round(self.wall_seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
            "peak_rss_kb": self.peak_rss_kb,
            "events": self.events,
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "ShardRow":
        return cls(
            index=record["index"],
            key=record["key"],
            seed=record.get("seed"),
            cached=record.get("cached", False),
            replayed=record.get("replayed", False),
            wall_seconds=record.get("wall_seconds", 0.0),
            cpu_seconds=record.get("cpu_seconds", 0.0),
            peak_rss_kb=record.get("peak_rss_kb", 0),
            events=record.get("events", 0),
        )

    @classmethod
    def from_telemetry(cls, index: int, key: str, seed: int | None,
                       telemetry: ShardTelemetry | None) -> "ShardRow":
        if telemetry is None:
            return cls(index=index, key=key, seed=seed)
        usage = telemetry.usage
        return cls(
            index=index,
            key=key,
            seed=seed,
            cached=telemetry.cached,
            replayed=telemetry.replayed,
            wall_seconds=usage.wall_seconds if usage else 0.0,
            cpu_seconds=usage.cpu_seconds if usage else 0.0,
            peak_rss_kb=usage.peak_rss_kb if usage else 0,
            events=telemetry.events_processed(),
        )


@dataclass
class RunManifest:
    """In-memory form of one campaign manifest."""

    header: dict[str, Any]
    metrics: tuple[dict[str, Any], ...] = ()
    shards: tuple[ShardRow, ...] = ()
    span_summaries: tuple[dict[str, Any], ...] = ()
    hot_timers: tuple[dict[str, Any], ...] = ()
    attribution: tuple[dict[str, Any], ...] = ()

    # ------------------------------------------------------------- building

    @classmethod
    def build(
        cls,
        campaign: str,
        seed: int,
        jobs: int,
        snapshot: RegistrySnapshot,
        span_summaries: tuple[dict[str, Any], ...],
        shard_rows: tuple[ShardRow, ...],
        fault_profile: str | None = None,
        cache_fingerprint: str | None = None,
        wall_seconds: float = 0.0,
    ) -> "RunManifest":
        header = {
            "record": "header",
            "schema": MANIFEST_SCHEMA,
            "campaign": campaign,
            "seed": seed,
            "jobs": jobs,
            "shards": len(shard_rows),
            "cached_shards": sum(1 for r in shard_rows if r.cached),
            "replayed_shards": sum(1 for r in shard_rows if r.replayed),
            "fault_profile": fault_profile,
            "cache_fingerprint": cache_fingerprint,
            "git_describe": git_describe(),
            "wall_seconds": round(wall_seconds, 6),
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        }
        return cls(
            header=header,
            metrics=tuple(snapshot.records),
            shards=shard_rows,
            span_summaries=span_summaries,
            hot_timers=hot_timer_labels(snapshot),
            attribution=delay_attribution_summary(snapshot),
        )

    # ---------------------------------------------------------------- views

    @property
    def campaign(self) -> str:
        return self.header.get("campaign", "?")

    def snapshot(self) -> RegistrySnapshot:
        return RegistrySnapshot(records=self.metrics)

    def metric_index(self) -> dict[tuple[str, str, tuple[tuple[str, str], ...]],
                                   dict[str, Any]]:
        return {
            (r["component"], r["name"], tuple(sorted(r.get("labels", {}).items()))): r
            for r in self.metrics
        }

    # ----------------------------------------------------------------- I/O

    def records(self) -> list[dict[str, Any]]:
        out: list[dict[str, Any]] = [self.header]
        out.extend({"record": "metric", **r} for r in self.metrics)
        out.extend(row.to_record() for row in self.shards)
        out.extend({"record": "span", **s} for s in self.span_summaries)
        if self.hot_timers:
            out.append({"record": "hot_timers", "top": list(self.hot_timers)})
        if self.attribution:
            out.append({"record": "attribution", "summaries": list(self.attribution)})
        return out

    def write(self, path: str | os.PathLike) -> Path:
        """Write the manifest atomically (same-dir temp + ``os.replace``)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        blob = "".join(json.dumps(r, sort_keys=True) + "\n" for r in self.records())
        fd, tmp = tempfile.mkstemp(dir=target.parent, prefix=".manifest-",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob)
            os.replace(tmp, target)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        return target

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RunManifest":
        header: dict[str, Any] | None = None
        metrics: list[dict[str, Any]] = []
        shards: list[ShardRow] = []
        spans: list[dict[str, Any]] = []
        hot: tuple[dict[str, Any], ...] = ()
        attribution: tuple[dict[str, Any], ...] = ()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.get("record")
                if kind == "header":
                    if record.get("schema", 0) > MANIFEST_SCHEMA:
                        raise ValueError(
                            f"manifest schema {record.get('schema')} is newer than "
                            f"supported ({MANIFEST_SCHEMA}); upgrade the tooling"
                        )
                    header = record
                elif kind == "metric":
                    metrics.append({k: v for k, v in record.items() if k != "record"})
                elif kind == "shard":
                    shards.append(ShardRow.from_record(record))
                elif kind == "span":
                    spans.append({k: v for k, v in record.items() if k != "record"})
                elif kind == "hot_timers":
                    hot = tuple(record.get("top", ()))
                elif kind == "attribution":
                    attribution = tuple(record.get("summaries", ()))
        if header is None:
            raise ValueError(f"not a campaign manifest (no header record): {path}")
        return cls(
            header=header,
            metrics=tuple(metrics),
            shards=tuple(shards),
            span_summaries=tuple(spans),
            hot_timers=hot,
            attribution=attribution,
        )


# -------------------------------------------------------------- derivations


def hot_timer_labels(snapshot: RegistrySnapshot,
                     top_k: int = HOT_TIMER_TOP_K) -> tuple[dict[str, Any], ...]:
    """The campaign's hottest scheduler timer labels by fire count."""
    fires = [
        {"label": dict(r.get("labels", {})).get("label", "?"),
         "fires": int(r["value"])}
        for r in snapshot.records
        if r["component"] == "scheduler" and r["name"] == "timer_fired"
    ]
    fires.sort(key=lambda e: (-e["fires"], e["label"]))
    return tuple(fires[:top_k])


def delay_attribution_summary(
    snapshot: RegistrySnapshot,
) -> tuple[dict[str, Any], ...]:
    """Campaign-level delay summaries, from harvested result metrics.

    Every numeric result metric whose name mentions delay/hold/window is a
    measured phantom-delay quantity; the summary carries its count, mean,
    and extrema so two manifests can be diffed for attribution drift.
    """
    out = []
    for record in snapshot.records:
        if record["component"] != "campaign" or record["name"] != "result_metric":
            continue
        metric = dict(record.get("labels", {})).get("metric", "")
        lowered = metric.lower()
        if not any(word in lowered for word in ("delay", "hold", "window", "release")):
            continue
        out.append({
            "metric": metric,
            "count": record["count"],
            "mean": record["mean"],
            "min": record["min"],
            "max": record["max"],
        })
    return tuple(out)


# --------------------------------------------------------------------- diff


@dataclass
class ManifestDiff:
    """Outcome of diffing two manifests (``a`` = reference, ``b`` = new)."""

    a: RunManifest
    b: RunManifest
    metric_drift: list[dict[str, Any]] = field(default_factory=list)
    attribution_deltas: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the deterministic sections agree exactly."""
        return not self.metric_drift and not self.attribution_deltas


#: Fields compared per metric kind; every one is merge-order independent.
_COMPARED_FIELDS = {
    "counter": ("value",),
    "gauge": ("value", "high_water"),
    "histogram": ("count", "min", "max", "p50", "p95", "p99"),
}


def diff_manifests(a: RunManifest, b: RunManifest) -> ManifestDiff:
    """Compare the deterministic sections of two manifests.

    Metric drift covers counts, values, and quantiles; attribution deltas
    cover the per-metric delay summaries.  Shard-row timing differences and
    cached/replayed flags are reported as notes — they describe *how* a run
    executed, not *what* it measured.
    """
    diff = ManifestDiff(a=a, b=b)
    index_a, index_b = a.metric_index(), b.metric_index()
    for key in sorted(set(index_a) | set(index_b)):
        rec_a, rec_b = index_a.get(key), index_b.get(key)
        component, name, labels = key
        label_str = ",".join(f"{k}={v}" for k, v in labels)
        if rec_a is None or rec_b is None:
            diff.metric_drift.append({
                "metric": f"{component}/{name}" + (f"[{label_str}]" if label_str else ""),
                "field": "presence",
                "a": None if rec_a is None else "present",
                "b": None if rec_b is None else "present",
            })
            continue
        for fieldname in _COMPARED_FIELDS.get(rec_a["kind"], ()):
            va, vb = rec_a.get(fieldname), rec_b.get(fieldname)
            if va != vb:
                diff.metric_drift.append({
                    "metric": f"{component}/{name}"
                              + (f"[{label_str}]" if label_str else ""),
                    "field": fieldname,
                    "a": va,
                    "b": vb,
                })
    attr_a = {entry["metric"]: entry for entry in a.attribution}
    attr_b = {entry["metric"]: entry for entry in b.attribution}
    for metric in sorted(set(attr_a) | set(attr_b)):
        ea, eb = attr_a.get(metric), attr_b.get(metric)
        if ea is None or eb is None or any(
            ea.get(f) != eb.get(f) for f in ("count", "mean", "min", "max")
        ):
            diff.attribution_deltas.append({"metric": metric, "a": ea, "b": eb})
    if len(a.shards) != len(b.shards):
        diff.notes.append(
            f"shard count differs: {len(a.shards)} vs {len(b.shards)}"
        )
    replayed_a = sum(1 for r in a.shards if r.replayed)
    replayed_b = sum(1 for r in b.shards if r.replayed)
    if replayed_a != replayed_b:
        diff.notes.append(
            f"degraded-run difference: {replayed_a} vs {replayed_b} shard(s) "
            "replayed in-process after worker failures"
        )
    cached_a = sum(1 for r in a.shards if r.cached)
    cached_b = sum(1 for r in b.shards if r.cached)
    if cached_a != cached_b:
        diff.notes.append(
            f"cache usage differs: {cached_a} vs {cached_b} shard(s) from cache"
        )
    return diff
