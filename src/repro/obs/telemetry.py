"""Campaign-scale telemetry: mergeable snapshots and worker-side capture.

``repro.parallel`` runs every shard in its own process, and until this
module existed each worker's observability died with it: the driver kept
only its own bookkeeping counters.  The pieces here make shard telemetry
*survive the pool*:

* :class:`RegistrySnapshot` — a compact, picklable, canonical snapshot of a
  :class:`~repro.obs.metrics.MetricsRegistry`.  Snapshots merge (counters
  add, gauges add / max high-water, histogram buckets add), and merging is
  exact for counts, buckets, min/max, and therefore quantiles — merge order
  can never change what a campaign reports.
* :func:`capture` — a context manager the shard wrapper puts around the
  shard function.  While active, every ``MetricsRegistry`` and every
  :class:`~repro.simnet.scheduler.Simulator` constructed registers itself
  with the capture; at close the capture folds them into one snapshot
  (simulators contribute their event counts without any per-event hook, so
  the scheduler hot loop stays untouched).
* :func:`harvest_result` — result-shape telemetry: fault-injector stats,
  invariant violations, alarm counts, and numeric scenario metrics found in
  a shard's return value are mirrored into the capture registry, so a
  campaign's merged metrics carry the paper-level signals (delays, drops,
  violations) even for runs that never enabled full observability.
* :class:`ShardTelemetry` — what rides back with each shard result: the
  snapshot, span summaries from any observed simulators, and the worker's
  resource usage (wall/CPU seconds, peak RSS via ``getrusage``).  The
  deterministic part (snapshot + spans) is byte-identical for any ``jobs``
  value and is cached alongside the result by ``repro.cache``; the usage
  part is per-run and reported separately.

Everything deterministic is kept strictly apart from everything timed: the
``parallel`` component (wall clocks, cache hit counts) is excluded from
captured snapshots, so ``jobs=1`` and ``jobs=N`` campaigns — warm or cold —
merge to identical metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterator

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

#: Version stamp carried by every snapshot (bump on layout changes).
SNAPSHOT_SCHEMA = 1

#: Components whose metrics are wall-clock/cache-state dependent and must
#: never enter the deterministic campaign snapshot.
NONDETERMINISTIC_COMPONENTS = frozenset({"parallel"})


# --------------------------------------------------------------- snapshots


@dataclass(frozen=True)
class RegistrySnapshot:
    """Picklable, canonical image of one registry's metrics.

    ``records`` is exactly :meth:`MetricsRegistry.snapshot` output (sorted
    by key), so a snapshot round-trips through JSON, pickle, and
    :meth:`to_registry` without loss.
    """

    records: tuple[dict[str, Any], ...] = ()
    schema: int = SNAPSHOT_SCHEMA

    @classmethod
    def of(cls, registry: MetricsRegistry,
           exclude_components: frozenset[str] = frozenset()) -> "RegistrySnapshot":
        records = tuple(
            r for r in registry.snapshot() if r["component"] not in exclude_components
        )
        return cls(records=records)

    @classmethod
    def empty(cls) -> "RegistrySnapshot":
        return cls()

    def __bool__(self) -> bool:
        return bool(self.records)

    def to_registry(self) -> MetricsRegistry:
        return MetricsRegistry.from_records(self.records)

    def merge(self, other: "RegistrySnapshot") -> "RegistrySnapshot":
        """A new snapshot with both sets of metrics folded together."""
        if not self.records:
            return other
        if not other.records:
            return self
        merged = self.to_registry()
        merged.merge(other.to_registry())
        return RegistrySnapshot.of(merged)


# ------------------------------------------------------------ shard payload


@dataclass(frozen=True)
class ShardUsage:
    """Worker-process resource account of one shard (never deterministic)."""

    wall_seconds: float
    cpu_seconds: float
    peak_rss_kb: int

    @classmethod
    def measure(cls, start_wall: float, end_wall: float,
                start_cpu: float) -> "ShardUsage":
        if resource is None:  # pragma: no cover - non-POSIX fallback
            return cls(wall_seconds=end_wall - start_wall, cpu_seconds=0.0,
                       peak_rss_kb=0)
        ru = resource.getrusage(resource.RUSAGE_SELF)
        return cls(
            wall_seconds=end_wall - start_wall,
            cpu_seconds=(ru.ru_utime + ru.ru_stime) - start_cpu,
            peak_rss_kb=int(ru.ru_maxrss),
        )


def cpu_seconds_now() -> float:
    """Process CPU time (user+sys) so far; 0.0 where ``resource`` is absent."""
    if resource is None:  # pragma: no cover - non-POSIX fallback
        return 0.0
    ru = resource.getrusage(resource.RUSAGE_SELF)
    return ru.ru_utime + ru.ru_stime


@dataclass(frozen=True)
class ShardTelemetry:
    """Everything one shard reports back besides its result.

    ``snapshot`` and ``span_summaries`` are deterministic (identical for
    any ``jobs`` value and replayed byte-identically from cache);
    ``usage`` is the live run's resource account and ``replayed`` /
    ``cached`` are driver-side annotations about *how* the result was
    obtained this time.
    """

    snapshot: RegistrySnapshot = field(default_factory=RegistrySnapshot)
    span_summaries: tuple[dict[str, Any], ...] = ()
    usage: ShardUsage | None = None
    replayed: bool = False
    cached: bool = False

    @classmethod
    def empty(cls) -> "ShardTelemetry":
        return cls()

    def deterministic(self) -> "ShardTelemetry":
        """The cacheable part: run-specific usage and flags stripped."""
        return replace(self, usage=None, replayed=False, cached=False)

    def events_processed(self) -> int:
        """Total scheduler events this shard's simulations processed."""
        for record in self.snapshot.records:
            if (record["component"], record["name"]) == (
                "scheduler", "events_processed",
            ) and not record.get("labels"):
                return int(record["value"])
        return 0


# ----------------------------------------------------------------- capture


class TelemetryCapture:
    """Collects every registry and simulator created while active."""

    def __init__(self) -> None:
        self.registries: list[MetricsRegistry] = []
        self.simulators: list["Simulator"] = []

    # Registration happens at *construction* time only — nothing here is on
    # a per-event path, which is what keeps capture overhead invisible to
    # the scheduler microbenchmark.

    def snapshot(self) -> RegistrySnapshot:
        """Fold everything captured into one canonical snapshot."""
        merged = MetricsRegistry(capture=False)
        for registry in self.registries:
            merged.merge(registry, exclude_components=NONDETERMINISTIC_COMPONENTS)
        if self.simulators:
            sims = merged.counter("scheduler", "simulations")
            events = merged.counter("scheduler", "events_processed")
            clock = merged.histogram("scheduler", "sim_clock_seconds")
            for sim in self.simulators:
                sims.inc()
                events.inc(sim.events_processed)
                clock.observe(sim.now)
        return RegistrySnapshot.of(merged)

    def span_summaries(self) -> tuple[dict[str, Any], ...]:
        """Per-(component, name) span rollup across observed simulators."""
        rollup: dict[tuple[str, str], dict[str, Any]] = {}
        for sim in self.simulators:
            tracer = sim.obs.tracer if sim.obs.enabled else None
            if tracer is None:
                continue
            for span in tracer.spans:
                entry = rollup.setdefault(
                    (span.component, span.name),
                    {"component": span.component, "name": span.name,
                     "count": 0, "total_duration": 0.0},
                )
                entry["count"] += 1
                if span.end is not None:
                    entry["total_duration"] += span.end - span.start
        return tuple(rollup[key] for key in sorted(rollup))

    def finish(self, result: Any = None, usage: ShardUsage | None = None,
               ) -> ShardTelemetry:
        """Harvest the result shape and pack the shard's telemetry."""
        if result is not None:
            harvest = MetricsRegistry(capture=False)
            harvest_result(result, harvest)
            self.registries.append(harvest)
        return ShardTelemetry(
            snapshot=self.snapshot(),
            span_summaries=self.span_summaries(),
            usage=usage,
        )


_CAPTURES: list[TelemetryCapture] = []


def active_capture() -> TelemetryCapture | None:
    return _CAPTURES[-1] if _CAPTURES else None


def register_registry(registry: MetricsRegistry) -> None:
    if _CAPTURES:
        _CAPTURES[-1].registries.append(registry)


def register_simulator(sim: "Simulator") -> None:
    if _CAPTURES:
        _CAPTURES[-1].simulators.append(sim)


class capture:
    """Context manager installing a :class:`TelemetryCapture`.

    Captures nest: a registry or simulator registers with the *innermost*
    active capture only, mirroring how a nested campaign's shards should
    account to the nested campaign.
    """

    def __enter__(self) -> TelemetryCapture:
        cap = TelemetryCapture()
        _CAPTURES.append(cap)
        return cap

    def __exit__(self, *exc_info: Any) -> None:
        _CAPTURES.pop()


# ------------------------------------------------------------------ harvest


def _is_number(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and not (isinstance(value, float) and math.isnan(value))
    )


def harvest_result(result: Any, registry: MetricsRegistry, _depth: int = 0) -> None:
    """Mirror result-shape telemetry into ``registry``.

    Understands the experiment result idioms of this repo without importing
    any of them: objects carrying ``fault_stats`` dicts,
    ``invariant_violations`` lists, ``alarms`` dicts, integer ``violations``
    counts, and ``metrics`` dicts of numeric measurements (recorded into
    per-name histograms so delays aggregate across cases).  Recurses
    through sequences and through ``baseline``/``attacked`` pairs only —
    everything found is deterministic given the shard's seed.
    """
    if result is None or _depth > 4:
        return
    if isinstance(result, (list, tuple)):
        for item in result:
            harvest_result(item, registry, _depth)
        return
    fault_stats = getattr(result, "fault_stats", None)
    if isinstance(fault_stats, dict):
        for key in sorted(fault_stats):
            value = fault_stats[key]
            if _is_number(value):
                registry.counter("faults", str(key)).inc(int(value))
    violations = getattr(result, "invariant_violations", None)
    if isinstance(violations, list):
        registry.counter("invariants", "runs_audited").inc()
        if violations:
            registry.counter("invariants", "violations").inc(len(violations))
    count = getattr(result, "violations", None)
    if _is_number(count) and count:
        registry.counter("invariants", "violations").inc(int(count))
    alarms = getattr(result, "alarms", None)
    if isinstance(alarms, dict):
        for kind in sorted(alarms):
            if _is_number(alarms[kind]):
                registry.counter("alarms", str(kind)).inc(int(alarms[kind]))
    metrics = getattr(result, "metrics", None)
    if isinstance(metrics, dict):
        for name in sorted(metrics):
            value = metrics[name]
            if _is_number(value) and not math.isinf(value):
                registry.histogram("campaign", "result_metric",
                                   metric=str(name)).observe(float(value))
    for attr in ("baseline", "attacked"):
        nested = getattr(result, attr, None)
        if nested is not None and nested is not result:
            harvest_result(nested, registry, _depth + 1)


# ------------------------------------------------------------- aggregation


def merge_telemetry(
    telemetry: Iterator[ShardTelemetry | None] | list[ShardTelemetry | None],
) -> tuple[RegistrySnapshot, tuple[dict[str, Any], ...]]:
    """Fold shard telemetry (in shard-index order) into campaign totals.

    Returns the merged deterministic snapshot and the merged span
    summaries.  ``None`` entries (shards the user skipped, legacy cache
    entries without telemetry) contribute nothing.
    """
    merged = MetricsRegistry(capture=False)
    spans: dict[tuple[str, str], dict[str, Any]] = {}
    for shard in telemetry:
        if shard is None:
            continue
        if shard.snapshot:
            merged.merge(shard.snapshot.to_registry())
        for summary in shard.span_summaries:
            entry = spans.setdefault(
                (summary["component"], summary["name"]),
                {"component": summary["component"], "name": summary["name"],
                 "count": 0, "total_duration": 0.0},
            )
            entry["count"] += summary["count"]
            entry["total_duration"] += summary["total_duration"]
    return RegistrySnapshot.of(merged), tuple(spans[key] for key in sorted(spans))
