"""Scheduler observers and the per-simulation observability facade.

The :class:`~repro.simnet.scheduler.Simulator` hot loop must stay fast:
profiling is therefore *injected*.  :class:`SimObserver` is the no-op base —
install it (or nothing) and the loop pays one attribute load and a branch
per event.  :class:`SchedulerProfiler` is the real implementation: it keeps
per-label fire counters, a queue-depth gauge, and per-label firing-latency
histograms (time from ``schedule()`` to the callback running) in a
:class:`~repro.obs.metrics.MetricsRegistry`.

:class:`Observability` bundles the registry and tracer for one simulation.
Every :class:`Simulator` owns a disabled instance from birth; components
cache a reference and check ``obs.enabled`` (a plain attribute) before
doing any instrumentation work, so a run without observability is within
noise of the pre-instrumentation code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import Counter, Gauge, MetricsRegistry, StreamingHistogram
from .tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator, Timer


class SimObserver:
    """No-op scheduler observer; subclass and override what you need."""

    def timer_scheduled(self, timer: "Timer", now: float) -> None:
        """A timer was entered into the event store at simulated time ``now``."""

    def timer_fired(self, timer: "Timer", now: float, queue_depth: int) -> None:
        """A timer's callback is about to run; ``queue_depth`` excludes it.

        ``queue_depth`` is the number of *live* pending timers (scheduled,
        not yet fired or cancelled) — cancelled ghosts awaiting lazy
        removal from the timer wheel are never counted.  The hook fires
        for every logical event, including periodic fires the scheduler
        batch-steps through its quiescence fast path, so profilers see an
        identical stream whether or not the fast path engaged.
        """


class SchedulerProfiler(SimObserver):
    """Records scheduler activity into a metrics registry.

    Metric handles are cached per label so the per-event cost is two dict
    lookups and three O(1) updates — cheap enough to leave on for a whole
    campaign.
    """

    UNLABELLED = "<unlabelled>"

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._fired: dict[str, Counter] = {}
        self._latency: dict[str, StreamingHistogram] = {}
        self._depth: Gauge = registry.gauge("scheduler", "queue_depth")
        self._events: Counter = registry.counter("scheduler", "events_processed")

    def timer_fired(self, timer: "Timer", now: float, queue_depth: int) -> None:
        label = timer.label or self.UNLABELLED
        counter = self._fired.get(label)
        if counter is None:
            counter = self.registry.counter("scheduler", "timer_fired", label=label)
            self._fired[label] = counter
            self._latency[label] = self.registry.histogram(
                "scheduler", "firing_latency", label=label
            )
        counter.inc()
        self._events.inc()
        self._latency[label].observe(now - timer.created_at)
        self._depth.set(queue_depth)

    # ------------------------------------------------------------- queries

    def fire_counts(self) -> dict[str, int]:
        return {label: c.value for label, c in self._fired.items()}

    def events_per_second(self, elapsed: float) -> float:
        return self._events.value / elapsed if elapsed > 0 else 0.0


class Observability:
    """Registry + tracer for one simulation; disabled (and empty) by default.

    The same object lives for the simulator's whole lifetime so components
    may cache it: :meth:`enable` mutates it in place rather than replacing
    it.
    """

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self) -> None:
        self.enabled = False
        self.registry: MetricsRegistry | None = None
        self.tracer: Tracer | None = None

    def enable(self, sim: "Simulator") -> "Observability":
        if not self.enabled:
            self.registry = MetricsRegistry()
            self.tracer = Tracer(sim)
            self.enabled = True
        return self
