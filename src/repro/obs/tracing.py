"""Causal span tracing across the protocol stack.

A phantom-delay attack is a *timing* phenomenon that crosses every layer:
sensor stimulus → application-protocol encode → TLS record → TCP segments →
(attacker hold → release) → cloud delivery → automation rule fire.  The
:class:`Tracer` records each of those steps as a :class:`Span` stamped with
simulated-clock time, so one delayed smoke alert can be reconstructed
end-to-end as a span tree and its delay *attributed* (see
:mod:`repro.obs.attribution`) to the attacker's hold vs. TCP retransmission
vs. ordinary transit latency.

Causality propagates two ways:

* **ambient context** — the tracer keeps a stack of open spans; a span
  started while another is current becomes its child.  This covers every
  synchronous call chain (device stimulate → protocol client → TLS → TCP).
* **message binding** — asynchronous hops (LAN frames in flight, cloud-to-
  cloud relays) break the ambient chain, so layers that can see a message's
  ``msg_id`` re-attach to the message's span via :meth:`Tracer.bind_message`
  / :meth:`Tracer.message_span`.  The attacker's hold cannot see inside TLS
  and records flow-keyed spans instead; :mod:`repro.obs.attribution` links
  those into the tree by flow and time overlap.
"""

from __future__ import annotations

import itertools
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator


@dataclass
class Span:
    """One timed operation (or punctual event, when ``end == start``)."""

    span_id: int
    trace_id: int
    parent_id: int | None
    component: str
    name: str
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    @property
    def punctual(self) -> bool:
        return self.end == self.start

    def to_record(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "component": self.component,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Span":
        return cls(
            span_id=record["span_id"],
            trace_id=record["trace_id"],
            parent_id=record["parent_id"],
            component=record["component"],
            name=record["name"],
            start=record["start"],
            end=record["end"],
            attrs=dict(record.get("attrs", {})),
        )


class Tracer:
    """Span recorder bound to one simulator's clock."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.spans: list[Span] = []
        self._by_id: dict[int, Span] = {}
        self._stack: list[Span] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._message_spans: dict[int, Span] = {}

    # -------------------------------------------------------------- recording

    @property
    def current(self) -> Span | None:
        """Innermost open span of the active synchronous call chain."""
        return self._stack[-1] if self._stack else None

    def start_span(
        self,
        component: str,
        name: str,
        parent: Span | None = None,
        new_trace: bool = False,
        **attrs: Any,
    ) -> Span:
        """Open a span; its parent defaults to the current ambient span."""
        if parent is None and not new_trace:
            parent = self.current
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = next(self._trace_ids)
            parent_id = None
        span = Span(
            span_id=next(self._span_ids),
            trace_id=trace_id,
            parent_id=parent_id,
            component=component,
            name=name,
            start=self.sim.now,
            attrs=attrs,
        )
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def end_span(self, span: Span, **attrs: Any) -> None:
        if span.end is None:
            span.end = self.sim.now
        if attrs:
            span.attrs.update(attrs)

    def event(
        self, component: str, name: str, parent: Span | None = None, **attrs: Any
    ) -> Span:
        """Record a punctual span (start == end == now)."""
        span = self.start_span(component, name, parent=parent, **attrs)
        span.end = span.start
        return span

    @contextmanager
    def span(
        self,
        component: str,
        name: str,
        parent: Span | None = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open a span and make it ambient for the enclosed call chain."""
        opened = self.start_span(component, name, parent=parent, **attrs)
        self._stack.append(opened)
        try:
            yield opened
        finally:
            self._stack.pop()
            self.end_span(opened)

    @contextmanager
    def ambient(self, span: Span) -> Iterator[Span]:
        """Re-enter an existing span's context without re-timing it."""
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    # ----------------------------------------------------- message bindings

    def bind_message(self, msg_id: int, span: Span) -> None:
        """Attach a message id to its span, bridging asynchronous hops."""
        self._message_spans[msg_id] = span

    def message_span(self, msg_id: int) -> Span | None:
        return self._message_spans.get(msg_id)

    # --------------------------------------------------------------- queries

    def get(self, span_id: int) -> Span | None:
        return self._by_id.get(span_id)

    def trace(self, trace_id: int) -> list[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(
        self, component: str | None = None, name_prefix: str = ""
    ) -> list[Span]:
        return [
            s
            for s in self.spans
            if (component is None or s.component == component)
            and s.name.startswith(name_prefix)
        ]

    # ------------------------------------------------------------- rendering

    def render_tree(self, trace_id: int) -> str:
        """ASCII span tree of one trace, children indented under parents."""
        spans = self.trace(trace_id)
        return render_span_tree(spans)

    # --------------------------------------------------------- serialisation

    def export_jsonl(self, path: str) -> int:
        """Dump every span as JSON lines; returns the number written."""
        with open(path, "w") as fh:
            fh.write("".join(json.dumps(s.to_record()) + "\n" for s in self.spans))
        return len(self.spans)

    @staticmethod
    def import_jsonl(path: str) -> list[Span]:
        """Load spans exported by :meth:`export_jsonl` (no simulator needed)."""
        spans: list[Span] = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    spans.append(Span.from_record(json.loads(line)))
        return spans


def render_span_tree(spans: list[Span]) -> str:
    """Render a list of spans (one or more traces) as an indented tree."""
    by_parent: dict[int | None, list[Span]] = {}
    ids = {s.span_id for s in spans}
    for span in spans:
        # Spans whose parent is outside this slice render as roots.
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)
    for siblings in by_parent.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        if span.end is None:
            timing = f"@{span.start:.3f}s (open)"
        elif span.punctual:
            timing = f"@{span.start:.3f}s"
        else:
            timing = f"@{span.start:.3f}s +{span.duration:.3f}s"
        attrs = ""
        if span.attrs:
            shown = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            attrs = f"  [{shown}]"
        lines.append(f"{'  ' * depth}{span.component}/{span.name} {timing}{attrs}")
        for child in by_parent.get(span.span_id, []):
            emit(child, depth + 1)

    for root in by_parent.get(None, []):
        emit(root, 0)
    return "\n".join(lines)
