"""Cross-layer observability: metrics, causal tracing, scheduler profiling.

The measurement substrate for the reproduction.  Three pieces:

* :class:`MetricsRegistry` — counters, gauges, and streaming histograms
  keyed by ``(component, name, labels)``;
* :class:`Tracer` — span-style causal tracing on simulated-clock time, able
  to reconstruct one delayed message end-to-end across every layer;
* :class:`SimObserver` / :class:`SchedulerProfiler` — injectable scheduler
  profiling (events/sec by timer label, queue depth, firing latency).

Each :class:`~repro.simnet.scheduler.Simulator` carries a disabled
:class:`Observability` facade; call ``sim.enable_observability()`` (or pass
``observe=True`` to :class:`~repro.testbed.SmartHomeTestbed`) to turn the
whole substrate on for a run.
"""

from .attribution import DelayAttribution, attribute_delay, link_hold_spans
from .manifest import ManifestDiff, RunManifest, ShardRow, diff_manifests, git_describe
from .metrics import Counter, Gauge, MetricsRegistry, StreamingHistogram
from .observer import Observability, SchedulerProfiler, SimObserver
from .telemetry import RegistrySnapshot, ShardTelemetry, ShardUsage, capture
from .tracing import Span, Tracer, render_span_tree

__all__ = [
    "Counter",
    "DelayAttribution",
    "Gauge",
    "ManifestDiff",
    "MetricsRegistry",
    "Observability",
    "RegistrySnapshot",
    "RunManifest",
    "SchedulerProfiler",
    "ShardRow",
    "ShardTelemetry",
    "ShardUsage",
    "SimObserver",
    "Span",
    "StreamingHistogram",
    "Tracer",
    "attribute_delay",
    "capture",
    "diff_manifests",
    "git_describe",
    "link_hold_spans",
    "render_span_tree",
]
