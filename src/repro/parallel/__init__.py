"""Parallel campaign execution: shard-per-device fan-out over processes.

Public surface:

* :func:`derive_seed` — stable per-shard seed derivation;
* :class:`Shard` — one independent simulation of a campaign;
* :class:`CampaignRunner` — ordered, deterministic fan-out/merge;
* :class:`CampaignCancelled` — raised on cooperative mid-campaign cancel;
* :class:`SharedWorkerPool` — one long-lived pool shared by many runners
  (the campaign service's execution substrate);
* :func:`resolve_jobs` / :func:`fork_available` — worker-count policy.

See ``docs/API.md`` for the determinism guarantee and usage examples.
"""

from .runner import (
    JOBS_CAP,
    CampaignCancelled,
    CampaignRunner,
    Shard,
    SharedWorkerPool,
    fork_available,
    resolve_jobs,
)
from .seeds import derive_seed

__all__ = [
    "JOBS_CAP",
    "CampaignCancelled",
    "CampaignRunner",
    "Shard",
    "SharedWorkerPool",
    "derive_seed",
    "fork_available",
    "resolve_jobs",
]
