"""Parallel campaign execution: shard-per-device fan-out over processes.

Public surface:

* :func:`derive_seed` — stable per-shard seed derivation;
* :class:`Shard` — one independent simulation of a campaign;
* :class:`CampaignRunner` — ordered, deterministic fan-out/merge;
* :func:`resolve_jobs` / :func:`fork_available` — worker-count policy.

See ``docs/API.md`` for the determinism guarantee and usage examples.
"""

from .runner import JOBS_CAP, CampaignRunner, Shard, fork_available, resolve_jobs
from .seeds import derive_seed

__all__ = [
    "JOBS_CAP",
    "CampaignRunner",
    "Shard",
    "derive_seed",
    "fork_available",
    "resolve_jobs",
]
