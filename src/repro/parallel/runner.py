"""Sharded campaign execution over a process pool.

The paper's evaluation is embarrassingly parallel: 36 cloud profiles,
14 local profiles, 11 PoC cases, and every ablation/countermeasure sweep
are independent simulations that only meet again at the output table.
:class:`CampaignRunner` fans those shards out across a
``ProcessPoolExecutor`` and merges results back **in submission order**, so
a parallel campaign renders byte-identically to a serial one.

Determinism rules:

* every shard carries its own seed — either set explicitly by the driver
  or derived as :func:`~repro.parallel.seeds.derive_seed`\\ ``(base_seed,
  shard.key)`` — never anything positional or temporal;
* results are merged by shard index, not completion order;
* shard functions are pure (fresh testbed in, plain rows out), so running
  them in another process cannot observe different state.

Execution falls back to plain in-process loops when ``jobs`` resolves
to 1, when there is only one shard, or when the platform cannot fork
(fork is what makes the warm parent image — ~130 imported modules —
free to replicate; a spawn pool would re-import the world per worker).
A shard whose future fails for infrastructure reasons (broken pool,
unpicklable result) is transparently re-run in-process; genuine errors
re-raise there with their original traceback.

With a :class:`~repro.cache.CampaignCache` attached, every shard is first
looked up by its content address — fully-qualified function, canonical
kwargs, resolved seed, and the source-tree fingerprint — and hits skip
process dispatch entirely: a warm campaign is file reads plus rendering,
byte-identical to the cold run for every ``jobs`` value.

Progress is surfaced through a :class:`~repro.obs.metrics.MetricsRegistry`
(the ``parallel`` component): shard counts, cache hit/miss/stale counts,
in-flight gauge, and a per-shard wall-time histogram, so
``CampaignRunner.render_progress()`` drops straight into the existing
observability tooling.  The counters keep one shard one booking:
``shards_completed`` counts each shard exactly once per run (cache hit,
pool completion, serial run, or failure replay), ``shards_run_inprocess``
counts only the no-pool path, and ``shards_replayed`` counts pool-failure
replays — so ``completed == total`` always holds after a healed run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..obs.metrics import MetricsRegistry
from .seeds import derive_seed

if TYPE_CHECKING:  # pragma: no cover
    from ..cache import CacheKey, CampaignCache

#: ``--jobs`` defaults to the CPU count but never above this: the shards
#: are CPU-bound simulations, and a wall of workers on a big host mostly
#: buys scheduler contention.
JOBS_CAP = 8


@dataclass(frozen=True)
class Shard:
    """One independent unit of a campaign (usually: one device / one case).

    ``fn`` must be a module-level callable (workers import it by qualified
    name) and ``kwargs`` picklable.  When ``pass_seed`` is true the runner
    injects ``seed=`` — the explicit ``seed`` if given, else
    ``derive_seed(base_seed, key)``.
    """

    key: str
    fn: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    pass_seed: bool = True


def resolve_jobs(jobs: int | None) -> int:
    """Worker count for a campaign: explicit, else ``REPRO_JOBS``, else
    ``os.cpu_count()`` capped at :data:`JOBS_CAP`."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer worker count, got {env!r} "
                    "(unset it or use e.g. REPRO_JOBS=4)"
                ) from None
        else:
            jobs = min(os.cpu_count() or 1, JOBS_CAP)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    return jobs


def fork_available() -> bool:
    """True when the platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def _warm_up() -> None:
    """Worker initializer: touch the heavy experiment stack once per worker.

    With fork these imports are already resolved in the parent image, so
    the call costs nothing; it exists so every worker pays any residual
    first-use cost (codec tables, catalogue construction) once instead of
    inside its first shard's timing.
    """
    import repro.experiments.table1  # noqa: F401
    import repro.experiments.table2  # noqa: F401
    import repro.experiments.table3  # noqa: F401
    import repro.testbed  # noqa: F401


def _run_shard(shard: Shard, base_seed: int) -> tuple[Any, float]:
    """Execute one shard (worker side); returns (result, wall seconds)."""
    kwargs = shard.kwargs
    if shard.pass_seed:
        kwargs = dict(kwargs)
        kwargs["seed"] = (
            shard.seed if shard.seed is not None else derive_seed(base_seed, shard.key)
        )
    start = time.perf_counter()
    result = shard.fn(**kwargs)
    return result, time.perf_counter() - start


class CampaignRunner:
    """Runs a list of :class:`Shard`\\ s and returns results in shard order.

    One runner is one campaign: it owns the worker-count decision, the
    base seed for derived shard seeds, and the progress metrics.  Reuse
    across campaigns is fine — metrics accumulate per ``campaign`` label.
    """

    def __init__(
        self,
        jobs: int | None = None,
        base_seed: int = 0,
        registry: MetricsRegistry | None = None,
        campaign: str = "campaign",
        cache: "CampaignCache | bool | None" = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.base_seed = base_seed
        self.campaign = campaign
        self.registry = registry if registry is not None else MetricsRegistry()
        self.last_wall_seconds = 0.0
        if cache:
            # Lazy import: repro.cache pulls in repro.parallel.seeds, so a
            # module-level import here would be circular.
            from ..cache import resolve_cache

            self.cache = resolve_cache(cache)
        else:
            self.cache = None
        self._total = self.registry.counter("parallel", "shards_total", campaign=campaign)
        self._completed = self.registry.counter(
            "parallel", "shards_completed", campaign=campaign
        )
        self._failed = self.registry.counter("parallel", "shard_failures", campaign=campaign)
        self._inproc = self.registry.counter(
            "parallel", "shards_run_inprocess", campaign=campaign
        )
        self._replayed = self.registry.counter(
            "parallel", "shards_replayed", campaign=campaign
        )
        self._cache_hits = self.registry.counter("parallel", "cache_hits", campaign=campaign)
        self._cache_misses = self.registry.counter(
            "parallel", "cache_misses", campaign=campaign
        )
        self._cache_stale = self.registry.counter("parallel", "cache_stale", campaign=campaign)
        self._in_flight = self.registry.gauge("parallel", "shards_in_flight", campaign=campaign)
        self._shard_seconds = self.registry.histogram(
            "parallel", "shard_seconds", campaign=campaign
        )

    # ------------------------------------------------------------ execution

    def run(self, shards: Sequence[Shard]) -> list[Any]:
        """Execute every shard; results come back in ``shards`` order.

        With a cache attached the run is hybrid: hits are filled from disk
        without touching a worker, and only the misses (plus entries made
        stale by a source change) are dispatched and then stored.
        """
        shards = list(shards)
        self._total.inc(len(shards))
        start = time.perf_counter()
        try:
            if not shards:
                return []
            results: list[Any] = [None] * len(shards)
            keys: list["CacheKey | None"] = [None] * len(shards)
            pending = self._fill_from_cache(shards, results, keys)
            if pending:
                workers = min(self.jobs, len(pending))
                if workers <= 1 or not fork_available():
                    outcomes = [
                        (index, *self._run_serial(shards[index])) for index in pending
                    ]
                else:
                    outcomes = self._run_pool(shards, pending, workers)
                for index, result, elapsed in outcomes:
                    results[index] = result
                    self._store(shards[index], keys[index], result, elapsed)
            return results
        finally:
            self.last_wall_seconds = time.perf_counter() - start

    def _fill_from_cache(
        self,
        shards: list[Shard],
        results: list[Any],
        keys: list["CacheKey | None"],
    ) -> list[int]:
        """Populate ``results`` with hits; return the indices still to run."""
        if self.cache is None:
            return list(range(len(shards)))
        pending: list[int] = []
        for index, shard in enumerate(shards):
            key = self.cache.key_for(shard, self.base_seed)
            keys[index] = key
            lookup = self.cache.get(key)
            if lookup.hit:
                self._cache_hits.inc()
                self._completed.inc()
                results[index] = lookup.result
            else:
                (self._cache_stale if lookup.stale else self._cache_misses).inc()
                pending.append(index)
        return pending

    def _store(self, shard: Shard, key: "CacheKey | None", result: Any,
               elapsed: float) -> None:
        if self.cache is None or key is None:
            return
        kwargs = dict(shard.kwargs)
        if shard.pass_seed:
            kwargs["seed"] = key.seed
        self.cache.put(key, result, wall_seconds=elapsed, call=(shard.fn, kwargs))

    def _run_serial(self, shard: Shard) -> tuple[Any, float]:
        """The no-pool path: ``jobs=1``, a single pending shard, or no fork."""
        result, elapsed = _run_shard(shard, self.base_seed)
        self._inproc.inc()
        self._completed.inc()
        self._shard_seconds.observe(elapsed)
        return result, elapsed

    def _replay(self, shard: Shard) -> tuple[Any, float]:
        """In-process replay of a shard whose pool future failed.

        Books the shard exactly once: it counts as completed (it did
        complete — here) and as replayed, but never as a pool completion
        or an in-process run on top, so ``shards_completed`` can never
        exceed ``shards_total``.
        """
        result, elapsed = _run_shard(shard, self.base_seed)
        self._replayed.inc()
        self._completed.inc()
        self._shard_seconds.observe(elapsed)
        return result, elapsed

    def _run_pool(
        self, shards: list[Shard], pending: list[int], workers: int
    ) -> list[tuple[int, Any, float]]:
        outcomes: list[tuple[int, Any, float]] = []
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx, initializer=_warm_up
        ) as pool:
            futures = {}
            for index in pending:
                futures[pool.submit(_run_shard, shards[index], self.base_seed)] = index
                self._in_flight.inc()
            for future in as_completed(futures):
                index = futures[future]
                self._in_flight.dec()
                try:
                    result, elapsed = future.result()
                except Exception:
                    # Infrastructure failure (broken pool, unpicklable
                    # result, worker OOM-kill): the shard itself is pure,
                    # so replaying it in-process either heals the run or
                    # re-raises the shard's genuine error with a usable
                    # traceback.
                    self._failed.inc()
                    result, elapsed = self._replay(shards[index])
                else:
                    self._completed.inc()
                    self._shard_seconds.observe(elapsed)
                outcomes.append((index, result, elapsed))
        return outcomes

    # ------------------------------------------------------------- progress

    @property
    def completed(self) -> int:
        return int(self._completed.value)

    def render_progress(self) -> str:
        """The campaign's slice of the metrics table (for CLI/debug use)."""
        return self.registry.render_table(component="parallel")

    def summary(self) -> str:
        """One-line account of the last ``run()`` for log output."""
        line = (
            f"{self.campaign}: {self.completed} shard(s) via "
            f"{min(self.jobs, max(self.completed, 1))} worker(s) in "
            f"{self.last_wall_seconds:.2f}s wall"
        )
        if self.cache is not None:
            line += (
                f" (cache: {int(self._cache_hits.value)} hit(s), "
                f"{int(self._cache_misses.value)} miss(es), "
                f"{int(self._cache_stale.value)} stale)"
            )
        return line
