"""Sharded campaign execution over a process pool.

The paper's evaluation is embarrassingly parallel: 36 cloud profiles,
14 local profiles, 11 PoC cases, and every ablation/countermeasure sweep
are independent simulations that only meet again at the output table.
:class:`CampaignRunner` fans those shards out across a
``ProcessPoolExecutor`` and merges results back **in submission order**, so
a parallel campaign renders byte-identically to a serial one.

Determinism rules:

* every shard carries its own seed — either set explicitly by the driver
  or derived as :func:`~repro.parallel.seeds.derive_seed`\\ ``(base_seed,
  shard.key)`` — never anything positional or temporal;
* results are merged by shard index, not completion order;
* shard functions are pure (fresh testbed in, plain rows out), so running
  them in another process cannot observe different state.

Execution falls back to plain in-process loops when ``jobs`` resolves
to 1, when there is only one shard, or when the platform cannot fork
(fork is what makes the warm parent image — ~130 imported modules —
free to replicate; a spawn pool would re-import the world per worker).
A shard whose future fails for infrastructure reasons (broken pool,
unpicklable result) is transparently re-run in-process; genuine errors
re-raise there with their original traceback.

Progress is surfaced through a :class:`~repro.obs.metrics.MetricsRegistry`
(the ``parallel`` component): shard counts, in-flight gauge, and a
per-shard wall-time histogram, so ``CampaignRunner.render_progress()``
drops straight into the existing observability tooling.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..obs.metrics import MetricsRegistry
from .seeds import derive_seed

#: ``--jobs`` defaults to the CPU count but never above this: the shards
#: are CPU-bound simulations, and a wall of workers on a big host mostly
#: buys scheduler contention.
JOBS_CAP = 8


@dataclass(frozen=True)
class Shard:
    """One independent unit of a campaign (usually: one device / one case).

    ``fn`` must be a module-level callable (workers import it by qualified
    name) and ``kwargs`` picklable.  When ``pass_seed`` is true the runner
    injects ``seed=`` — the explicit ``seed`` if given, else
    ``derive_seed(base_seed, key)``.
    """

    key: str
    fn: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    pass_seed: bool = True


def resolve_jobs(jobs: int | None) -> int:
    """Worker count for a campaign: explicit, else ``REPRO_JOBS``, else
    ``os.cpu_count()`` capped at :data:`JOBS_CAP`."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env:
            jobs = int(env)
        else:
            jobs = min(os.cpu_count() or 1, JOBS_CAP)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    return jobs


def fork_available() -> bool:
    """True when the platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def _warm_up() -> None:
    """Worker initializer: touch the heavy experiment stack once per worker.

    With fork these imports are already resolved in the parent image, so
    the call costs nothing; it exists so every worker pays any residual
    first-use cost (codec tables, catalogue construction) once instead of
    inside its first shard's timing.
    """
    import repro.experiments.table1  # noqa: F401
    import repro.experiments.table2  # noqa: F401
    import repro.experiments.table3  # noqa: F401
    import repro.testbed  # noqa: F401


def _run_shard(shard: Shard, base_seed: int) -> tuple[Any, float]:
    """Execute one shard (worker side); returns (result, wall seconds)."""
    kwargs = shard.kwargs
    if shard.pass_seed:
        kwargs = dict(kwargs)
        kwargs["seed"] = (
            shard.seed if shard.seed is not None else derive_seed(base_seed, shard.key)
        )
    start = time.perf_counter()
    result = shard.fn(**kwargs)
    return result, time.perf_counter() - start


class CampaignRunner:
    """Runs a list of :class:`Shard`\\ s and returns results in shard order.

    One runner is one campaign: it owns the worker-count decision, the
    base seed for derived shard seeds, and the progress metrics.  Reuse
    across campaigns is fine — metrics accumulate per ``campaign`` label.
    """

    def __init__(
        self,
        jobs: int | None = None,
        base_seed: int = 0,
        registry: MetricsRegistry | None = None,
        campaign: str = "campaign",
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.base_seed = base_seed
        self.campaign = campaign
        self.registry = registry if registry is not None else MetricsRegistry()
        self.last_wall_seconds = 0.0
        self._total = self.registry.counter("parallel", "shards_total", campaign=campaign)
        self._completed = self.registry.counter(
            "parallel", "shards_completed", campaign=campaign
        )
        self._failed = self.registry.counter("parallel", "shard_failures", campaign=campaign)
        self._inproc = self.registry.counter(
            "parallel", "shards_run_inprocess", campaign=campaign
        )
        self._in_flight = self.registry.gauge("parallel", "shards_in_flight", campaign=campaign)
        self._shard_seconds = self.registry.histogram(
            "parallel", "shard_seconds", campaign=campaign
        )

    # ------------------------------------------------------------ execution

    def run(self, shards: Sequence[Shard]) -> list[Any]:
        """Execute every shard; results come back in ``shards`` order."""
        shards = list(shards)
        self._total.inc(len(shards))
        start = time.perf_counter()
        try:
            if not shards:
                return []
            workers = min(self.jobs, len(shards))
            if workers <= 1 or not fork_available():
                return [self._run_inprocess(shard) for shard in shards]
            return self._run_pool(shards, workers)
        finally:
            self.last_wall_seconds = time.perf_counter() - start

    def _run_inprocess(self, shard: Shard) -> Any:
        result, elapsed = _run_shard(shard, self.base_seed)
        self._inproc.inc()
        self._completed.inc()
        self._shard_seconds.observe(elapsed)
        return result

    def _run_pool(self, shards: list[Shard], workers: int) -> list[Any]:
        results: list[Any] = [None] * len(shards)
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx, initializer=_warm_up
        ) as pool:
            futures = {}
            for index, shard in enumerate(shards):
                futures[pool.submit(_run_shard, shard, self.base_seed)] = index
                self._in_flight.inc()
            for future in as_completed(futures):
                index = futures[future]
                self._in_flight.dec()
                try:
                    result, elapsed = future.result()
                except Exception:
                    # Infrastructure failure (broken pool, unpicklable
                    # result, worker OOM-kill): the shard itself is pure,
                    # so replaying it in-process either heals the run or
                    # re-raises the shard's genuine error with a usable
                    # traceback.
                    self._failed.inc()
                    result = self._run_inprocess(shards[index])
                    results[index] = result
                    continue
                self._completed.inc()
                self._shard_seconds.observe(elapsed)
                results[index] = result
        return results

    # ------------------------------------------------------------- progress

    @property
    def completed(self) -> int:
        return int(self._completed.value)

    def render_progress(self) -> str:
        """The campaign's slice of the metrics table (for CLI/debug use)."""
        return self.registry.render_table(component="parallel")

    def summary(self) -> str:
        """One-line account of the last ``run()`` for log output."""
        return (
            f"{self.campaign}: {self.completed} shard(s) via "
            f"{min(self.jobs, max(self.completed, 1))} worker(s) in "
            f"{self.last_wall_seconds:.2f}s wall"
        )
