"""Sharded campaign execution over a process pool.

The paper's evaluation is embarrassingly parallel: 36 cloud profiles,
14 local profiles, 11 PoC cases, and every ablation/countermeasure sweep
are independent simulations that only meet again at the output table.
:class:`CampaignRunner` fans those shards out across a
``ProcessPoolExecutor`` and merges results back **in submission order**, so
a parallel campaign renders byte-identically to a serial one.

Determinism rules:

* every shard carries its own seed — either set explicitly by the driver
  or derived as :func:`~repro.parallel.seeds.derive_seed`\\ ``(base_seed,
  shard.key)`` — never anything positional or temporal;
* results are merged by shard index, not completion order;
* shard functions are pure (fresh testbed in, plain rows out), so running
  them in another process cannot observe different state.

Execution falls back to plain in-process loops when ``jobs`` resolves
to 1, when there is only one shard, or when the platform cannot fork
(fork is what makes the warm parent image — ~130 imported modules —
free to replicate; a spawn pool would re-import the world per worker).
A shard whose future fails for infrastructure reasons (broken pool,
unpicklable result) is transparently re-run in-process; genuine errors
re-raise there with their original traceback.

With a :class:`~repro.cache.CampaignCache` attached, every shard is first
looked up by its content address — fully-qualified function, canonical
kwargs, resolved seed, and the source-tree fingerprint — and hits skip
process dispatch entirely: a warm campaign is file reads plus rendering,
byte-identical to the cold run for every ``jobs`` value.

Progress is surfaced through a :class:`~repro.obs.metrics.MetricsRegistry`
(the ``parallel`` component): shard counts, cache hit/miss/stale counts,
in-flight gauge, and a per-shard wall-time histogram, so
``CampaignRunner.render_progress()`` drops straight into the existing
observability tooling.  The counters keep one shard one booking:
``shards_completed`` counts each shard exactly once per run (cache hit,
pool completion, serial run, or failure replay), ``shards_run_inprocess``
counts only the no-pool path, and ``shards_replayed`` counts pool-failure
replays — so ``completed == total`` always holds after a healed run.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..obs import telemetry
from ..obs.manifest import RunManifest, ShardRow, manifest_path_for
from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import RegistrySnapshot, ShardTelemetry
from .seeds import derive_seed

if TYPE_CHECKING:  # pragma: no cover
    from ..cache import CacheKey, CampaignCache

#: ``--jobs`` defaults to the CPU count but never above this: the shards
#: are CPU-bound simulations, and a wall of workers on a big host mostly
#: buys scheduler contention.
JOBS_CAP = 8


class CampaignCancelled(RuntimeError):
    """Raised by :meth:`CampaignRunner.run` when its cancel signal trips.

    Cancellation is cooperative and shard-granular: every shard that
    completed before the signal was observed has already been booked and
    stored to the cache (entries are written atomically), so the cache is
    consistent and a resubmission of the same campaign resumes from those
    entries instead of recomputing them.
    """

    def __init__(self, campaign: str, done: int, total: int) -> None:
        super().__init__(
            f"campaign {campaign!r} cancelled after {done}/{total} shard(s)"
        )
        self.campaign = campaign
        self.done = done
        self.total = total


class _Cancelled(Exception):
    """Internal: carries the outcomes that completed before the signal."""

    def __init__(self, outcomes: list) -> None:
        self.outcomes = outcomes


@dataclass(frozen=True)
class Shard:
    """One independent unit of a campaign (usually: one device / one case).

    ``fn`` must be a module-level callable (workers import it by qualified
    name) and ``kwargs`` picklable.  When ``pass_seed`` is true the runner
    injects ``seed=`` — the explicit ``seed`` if given, else
    ``derive_seed(base_seed, key)``.
    """

    key: str
    fn: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    pass_seed: bool = True


def resolve_jobs(jobs: int | None) -> int:
    """Worker count for a campaign: explicit, else ``REPRO_JOBS``, else
    ``os.cpu_count()`` capped at :data:`JOBS_CAP`."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer worker count, got {env!r} "
                    "(unset it or use e.g. REPRO_JOBS=4)"
                ) from None
        else:
            jobs = min(os.cpu_count() or 1, JOBS_CAP)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    return jobs


def fork_available() -> bool:
    """True when the platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def _warm_up() -> None:
    """Worker initializer: touch the heavy experiment stack once per worker.

    With fork these imports are already resolved in the parent image, so
    the call costs nothing; it exists so every worker pays any residual
    first-use cost (codec tables, catalogue construction) once instead of
    inside its first shard's timing.
    """
    import repro.experiments.table1  # noqa: F401
    import repro.experiments.table2  # noqa: F401
    import repro.experiments.table3  # noqa: F401
    import repro.testbed  # noqa: F401


class SharedWorkerPool:
    """One long-lived fork pool shared by many :class:`CampaignRunner`\\ s.

    A runner normally owns its pool for the duration of one ``run()``; a
    service that multiplexes many jobs over the same workers hands each
    runner one of these via ``pool=`` instead, and the runner dispatches to
    :meth:`executor` without ever shutting it down.  The pool starts lazily
    (or eagerly via :meth:`prewarm`, which a threaded host should call
    while the process is still single-threaded so the fork is clean) and
    lives until :meth:`shutdown`.
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self._executor: ProcessPoolExecutor | None = None

    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            ctx = multiprocessing.get_context("fork")
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=ctx, initializer=_warm_up
            )
        return self._executor

    def prewarm(self) -> None:
        """Fork every worker now (one trivial dispatch spawns them all)."""
        self.executor().submit(_pool_ping).result()

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


def _pool_ping() -> int:
    """No-op worker task used by :meth:`SharedWorkerPool.prewarm`."""
    return os.getpid()


def _run_shard(shard: Shard, base_seed: int) -> tuple[Any, float, ShardTelemetry]:
    """Execute one shard (worker side).

    Returns ``(result, wall seconds, telemetry)``: the shard function runs
    inside a :func:`repro.obs.telemetry.capture`, so every registry and
    simulator it constructs is folded into a picklable
    :class:`~repro.obs.telemetry.ShardTelemetry` that rides back across the
    process boundary with the result, along with the worker's own resource
    account (wall/CPU seconds, peak RSS).
    """
    kwargs = shard.kwargs
    if shard.pass_seed:
        kwargs = dict(kwargs)
        kwargs["seed"] = (
            shard.seed if shard.seed is not None else derive_seed(base_seed, shard.key)
        )
    start_cpu = telemetry.cpu_seconds_now()
    start = time.perf_counter()
    with telemetry.capture() as cap:
        result = shard.fn(**kwargs)
    end = time.perf_counter()
    usage = telemetry.ShardUsage.measure(start, end, start_cpu)
    return result, end - start, cap.finish(result, usage)


class CampaignRunner:
    """Runs a list of :class:`Shard`\\ s and returns results in shard order.

    One runner is one campaign: it owns the worker-count decision, the
    base seed for derived shard seeds, and the progress metrics.  Reuse
    across campaigns is fine — metrics accumulate per ``campaign`` label.
    """

    def __init__(
        self,
        jobs: int | None = None,
        base_seed: int = 0,
        registry: MetricsRegistry | None = None,
        campaign: str = "campaign",
        cache: "CampaignCache | bool | None" = None,
        manifest: "bool | str | os.PathLike | None" = True,
        pool: SharedWorkerPool | None = None,
        cancel: Any = None,
        on_progress: Callable[[int, int], None] | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.base_seed = base_seed
        self.campaign = campaign
        #: Shared executor (service mode); ``None`` means the runner owns a
        #: pool per ``run()`` as before.
        self.pool = pool
        #: Cancel signal: a ``threading.Event`` (or anything with
        #: ``is_set``) or a zero-argument callable.  Checked between shard
        #: completions; when it trips, ``run()`` stores what finished and
        #: raises :class:`CampaignCancelled`.
        if cancel is None or callable(cancel):
            self._cancel_check = cancel
        else:
            self._cancel_check = cancel.is_set
        #: Observer called as ``on_progress(done, total)`` after each shard
        #: is booked (cache hits included).  Exceptions are swallowed — an
        #: observer must never take a campaign down.
        self._on_progress = on_progress
        self.registry = registry if registry is not None else MetricsRegistry()
        self.last_wall_seconds = 0.0
        #: Manifest policy: ``True`` writes the campaign's default path,
        #: a path writes there, ``False``/``None`` disables the artifact.
        self.manifest = manifest
        #: Per-shard telemetry of the last ``run()`` (None for shards that
        #: carried none, e.g. pre-telemetry cache entries).
        self.last_telemetry: list[ShardTelemetry | None] = []
        self.last_snapshot: RegistrySnapshot = RegistrySnapshot.empty()
        self.last_span_summaries: tuple[dict[str, Any], ...] = ()
        self.last_shard_rows: tuple[ShardRow, ...] = ()
        self.last_manifest: RunManifest | None = None
        self.last_manifest_path: Path | None = None
        self._run_total = 0
        self._run_done = 0
        self._booked: set[int] = set()
        self._events_seen = 0
        self._run_started = 0.0
        self._progress_last = 0.0
        self._progress_width = 0
        if cache:
            # Lazy import: repro.cache pulls in repro.parallel.seeds, so a
            # module-level import here would be circular.
            from ..cache import resolve_cache

            self.cache = resolve_cache(cache)
        else:
            self.cache = None
        self._total = self.registry.counter("parallel", "shards_total", campaign=campaign)
        self._completed = self.registry.counter(
            "parallel", "shards_completed", campaign=campaign
        )
        self._failed = self.registry.counter("parallel", "shard_failures", campaign=campaign)
        self._inproc = self.registry.counter(
            "parallel", "shards_run_inprocess", campaign=campaign
        )
        self._replayed = self.registry.counter(
            "parallel", "shards_replayed", campaign=campaign
        )
        self._cache_hits = self.registry.counter("parallel", "cache_hits", campaign=campaign)
        self._cache_misses = self.registry.counter(
            "parallel", "cache_misses", campaign=campaign
        )
        self._cache_stale = self.registry.counter("parallel", "cache_stale", campaign=campaign)
        self._cache_put_failures = self.registry.counter(
            "parallel", "cache_put_failures", campaign=campaign
        )
        self._in_flight = self.registry.gauge("parallel", "shards_in_flight", campaign=campaign)
        self._shard_seconds = self.registry.histogram(
            "parallel", "shard_seconds", campaign=campaign
        )
        # Worker-side resource accounting (satellite): the wall clock above
        # is driver-side and hides serialisation; these come from
        # ``getrusage`` inside the shard wrapper.
        self._shard_cpu_seconds = self.registry.histogram(
            "parallel", "shard_cpu_seconds", campaign=campaign
        )
        self._worker_rss = self.registry.gauge(
            "parallel", "worker_peak_rss_kb", campaign=campaign
        )
        self._events_processed = self.registry.counter(
            "parallel", "events_processed", campaign=campaign
        )

    # ------------------------------------------------------------ execution

    def cancelled(self) -> bool:
        """True once the runner's cancel signal (if any) has tripped."""
        return bool(self._cancel_check is not None and self._cancel_check())

    def run(self, shards: Sequence[Shard]) -> list[Any]:
        """Execute every shard; results come back in ``shards`` order.

        With a cache attached the run is hybrid: hits are filled from disk
        without touching a worker, and only the misses (plus entries made
        stale by a source change) are dispatched and then stored.

        If a ``cancel`` signal was attached and trips mid-campaign, every
        shard completed so far is stored to the cache and
        :class:`CampaignCancelled` is raised — re-running the same
        campaign later resumes from those entries.
        """
        shards = list(shards)
        self._total.inc(len(shards))
        self._run_total = len(shards)
        self._run_done = 0
        self._booked = set()
        self._events_seen = 0
        self._run_started = start = time.perf_counter()
        self._progress_last = 0.0
        try:
            if not shards:
                self.last_telemetry = []
                self._finalize(shards, [])
                return []
            results: list[Any] = [None] * len(shards)
            keys: list["CacheKey | None"] = [None] * len(shards)
            telemetry_rows: list[ShardTelemetry | None] = [None] * len(shards)
            self.last_telemetry = telemetry_rows
            pending = self._fill_from_cache(shards, results, keys, telemetry_rows)
            if pending:
                workers = min(self.jobs, len(pending))
                try:
                    if self.cancelled():
                        raise _Cancelled([])
                    if workers <= 1 or not fork_available():
                        outcomes = []
                        for index in pending:
                            if self.cancelled():
                                raise _Cancelled(outcomes)
                            outcomes.append(
                                (index, *self._run_serial(shards[index], index))
                            )
                    else:
                        outcomes = self._run_pool(shards, pending, workers)
                except _Cancelled as exc:
                    # Keep (and cache) everything that finished before the
                    # signal was seen, then surface the cancellation.
                    for index, result, elapsed, shard_telemetry in exc.outcomes:
                        results[index] = result
                        telemetry_rows[index] = shard_telemetry
                        self._store(shards[index], keys[index], result,
                                    elapsed, shard_telemetry)
                    raise CampaignCancelled(
                        self.campaign, self._run_done, self._run_total
                    ) from None
                for index, result, elapsed, shard_telemetry in outcomes:
                    results[index] = result
                    telemetry_rows[index] = shard_telemetry
                    self._store(shards[index], keys[index], result, elapsed,
                                shard_telemetry)
            self._finalize(shards, keys)
            return results
        finally:
            self.last_wall_seconds = time.perf_counter() - start
            self._progress_clear()

    def _fill_from_cache(
        self,
        shards: list[Shard],
        results: list[Any],
        keys: list["CacheKey | None"],
        telemetry_rows: list[ShardTelemetry | None],
    ) -> list[int]:
        """Populate ``results`` with hits; return the indices still to run."""
        if self.cache is None:
            return list(range(len(shards)))
        pending: list[int] = []
        for index, shard in enumerate(shards):
            key = self.cache.key_for(shard, self.base_seed)
            keys[index] = key
            lookup = self.cache.get(key)
            if lookup.hit:
                results[index] = lookup.result
                if isinstance(lookup.telemetry, ShardTelemetry):
                    # The cached snapshot is the deterministic part only;
                    # ``cached`` is this run's annotation, never stored.
                    telemetry_rows[index] = replace(lookup.telemetry, cached=True)
                self._book(index, self._cache_hits, telemetry_rows[index])
            else:
                (self._cache_stale if lookup.stale else self._cache_misses).inc()
                pending.append(index)
        return pending

    def _store(self, shard: Shard, key: "CacheKey | None", result: Any,
               elapsed: float, shard_telemetry: ShardTelemetry | None = None) -> None:
        if self.cache is None or key is None:
            return
        kwargs = dict(shard.kwargs)
        if shard.pass_seed:
            kwargs["seed"] = key.seed
        try:
            self.cache.put(
                key, result, wall_seconds=elapsed, call=(shard.fn, kwargs),
                telemetry=(shard_telemetry.deterministic()
                           if shard_telemetry is not None else None),
            )
        except Exception:
            # A result the cache cannot store (unpicklable, disk full)
            # must not kill a run that already completed — especially a
            # replayed shard that was healed in-process moments ago.  The
            # run degrades to uncached; the failure is counted so it
            # surfaces in the manifest rather than vanishing.
            self._cache_put_failures.inc()

    def _book_usage(self, shard_telemetry: ShardTelemetry | None) -> None:
        """Record the worker's resource account into the parallel component."""
        usage = shard_telemetry.usage if shard_telemetry is not None else None
        if usage is None:
            return
        self._shard_cpu_seconds.observe(usage.cpu_seconds)
        if usage.peak_rss_kb > self._worker_rss.value:
            self._worker_rss.set(usage.peak_rss_kb)

    def _book_progress(self, shard_telemetry: ShardTelemetry | None) -> None:
        self._run_done += 1
        if shard_telemetry is not None:
            events = shard_telemetry.events_processed()
            self._events_seen += events
            self._events_processed.inc(events)
        self._progress_tick()
        if self._on_progress is not None:
            try:
                self._on_progress(self._run_done, self._run_total)
            except Exception:
                pass  # observers never take the campaign down

    def _book(
        self,
        index: int,
        kind_counter: Any,
        shard_telemetry: ShardTelemetry | None,
        elapsed: float | None = None,
    ) -> None:
        """Book one shard's completion, structurally at most once per run.

        Every completion path — cache hit, serial, pool success, replay —
        funnels through here, and ``self._booked`` makes double-booking
        impossible even if a shard reaches two paths in one run (e.g. a
        replay of something already filled from cache), so
        ``shards_completed`` can never exceed ``shards_total``.
        """
        if index in self._booked:
            return
        self._booked.add(index)
        if kind_counter is not None:
            kind_counter.inc()
        self._completed.inc()
        if elapsed is not None:
            self._shard_seconds.observe(elapsed)
        self._book_usage(shard_telemetry)
        self._book_progress(shard_telemetry)

    def _run_serial(self, shard: Shard,
                    index: int) -> tuple[Any, float, ShardTelemetry]:
        """The no-pool path: ``jobs=1``, a single pending shard, or no fork."""
        result, elapsed, shard_telemetry = _run_shard(shard, self.base_seed)
        self._book(index, self._inproc, shard_telemetry, elapsed)
        return result, elapsed, shard_telemetry

    def _replay(self, shard: Shard,
                index: int) -> tuple[Any, float, ShardTelemetry]:
        """In-process replay of a shard whose pool future failed.

        Books the shard exactly once via :meth:`_book`: it counts as
        completed (it did complete — here) and as replayed, but never as
        a pool completion or an in-process run on top, and never at all
        if the same index was already booked (say, as a cache hit).  The
        telemetry carries ``replayed=True`` so the manifest row
        distinguishes a healed run from a clean one.
        """
        result, elapsed, shard_telemetry = _run_shard(shard, self.base_seed)
        shard_telemetry = replace(shard_telemetry, replayed=True)
        self._book(index, self._replayed, shard_telemetry, elapsed)
        return result, elapsed, shard_telemetry

    def _run_pool(
        self, shards: list[Shard], pending: list[int], workers: int
    ) -> list[tuple[int, Any, float, ShardTelemetry]]:
        if self.pool is not None:
            # Shared executor (service mode): dispatch without shutting
            # the pool down — it outlives this campaign.
            return self._dispatch(self.pool.executor(), shards, pending)
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx, initializer=_warm_up
        ) as pool:
            return self._dispatch(pool, shards, pending)

    def _dispatch(
        self, pool: ProcessPoolExecutor, shards: list[Shard], pending: list[int]
    ) -> list[tuple[int, Any, float, ShardTelemetry]]:
        outcomes: list[tuple[int, Any, float, ShardTelemetry]] = []
        cancelled_midway = False
        futures = {}
        for index in pending:
            futures[pool.submit(_run_shard, shards[index], self.base_seed)] = index
            self._in_flight.inc()
        for future in as_completed(futures):
            if future.cancelled():
                continue  # revoked below; its in-flight count is settled
            index = futures[future]
            self._in_flight.dec()
            try:
                result, elapsed, shard_telemetry = future.result()
            except Exception:
                # Infrastructure failure (broken pool, unpicklable
                # result, worker OOM-kill): the shard itself is pure,
                # so replaying it in-process either heals the run or
                # re-raises the shard's genuine error with a usable
                # traceback.
                self._failed.inc()
                result, elapsed, shard_telemetry = self._replay(
                    shards[index], index
                )
            else:
                self._book(index, None, shard_telemetry, elapsed)
            outcomes.append((index, result, elapsed, shard_telemetry))
            if not cancelled_midway and self.cancelled():
                # Revoke everything not yet started; shards already on a
                # worker run to completion and are collected (and cached)
                # by the remaining loop iterations.
                cancelled_midway = True
                for other in futures:
                    if other.cancel():
                        self._in_flight.dec()
        if cancelled_midway:
            raise _Cancelled(outcomes)
        return outcomes

    # ---------------------------------------------------------- aggregation

    def _resolved_seed(self, shard: Shard) -> int | None:
        if not shard.pass_seed:
            return None
        if shard.seed is not None:
            return shard.seed
        return derive_seed(self.base_seed, shard.key)

    @staticmethod
    def _fault_profile_of(shards: list[Shard]) -> str | None:
        for shard in shards:
            faults = shard.kwargs.get("faults")
            if faults is not None:
                return getattr(faults, "name", None) or str(faults)
        return None

    def _finalize(self, shards: list[Shard],
                  keys: list["CacheKey | None"]) -> None:
        """Merge shard telemetry (in shard order) and emit the manifest."""
        snapshot, spans = telemetry.merge_telemetry(self.last_telemetry)
        self.last_snapshot = snapshot
        self.last_span_summaries = spans
        self.last_shard_rows = tuple(
            ShardRow.from_telemetry(
                index,
                shard.key,
                keys[index].seed if index < len(keys) and keys[index] is not None
                else self._resolved_seed(shard),
                self.last_telemetry[index] if index < len(self.last_telemetry)
                else None,
            )
            for index, shard in enumerate(shards)
        )
        self._last_fault_profile = self._fault_profile_of(shards)
        if self.manifest is not None and self.manifest is not False:
            self.write_manifest(
                None if self.manifest is True else self.manifest
            )

    def write_manifest(self, path: "str | os.PathLike | None" = None) -> Path:
        """Write the last run's manifest; returns the path written."""
        manifest = RunManifest.build(
            campaign=self.campaign,
            seed=self.base_seed,
            jobs=self.jobs,
            snapshot=self.last_snapshot,
            span_summaries=self.last_span_summaries,
            shard_rows=self.last_shard_rows,
            fault_profile=getattr(self, "_last_fault_profile", None),
            cache_fingerprint=self.cache.fingerprint if self.cache else None,
            wall_seconds=time.perf_counter() - self._run_started
            if self._run_started else self.last_wall_seconds,
        )
        target = manifest_path_for(self.campaign, path)
        self.last_manifest = manifest
        self.last_manifest_path = manifest.write(target)
        return self.last_manifest_path

    # ------------------------------------------------------------- progress

    @property
    def completed(self) -> int:
        return int(self._completed.value)

    @property
    def cache_hits(self) -> int:
        return int(self._cache_hits.value)

    #: Seconds between live progress-line repaints.
    PROGRESS_INTERVAL = 0.25

    def _progress_stream(self):
        stream = sys.stderr
        return stream if hasattr(stream, "isatty") and stream.isatty() else None

    def _progress_tick(self, force: bool = False) -> None:
        """Repaint the live progress line (tty-only, throttled).

        Goes to stderr so campaign stdout stays byte-identical between
        runs — the cache round-trip CI job diffs stdout.
        """
        stream = self._progress_stream()
        if stream is None:
            return
        now = time.perf_counter()
        if not force and now - self._progress_last < self.PROGRESS_INTERVAL:
            return
        self._progress_last = now
        # Render exactly once per tick: rendering twice (once to write,
        # once to measure) doubled the work and let a counter bumped
        # between the two calls mis-pad the line.
        line = self.render_progress()
        stream.write("\r" + line.ljust(self._progress_width))
        self._progress_width = max(self._progress_width, len(line))
        stream.flush()

    def _progress_clear(self) -> None:
        stream = self._progress_stream()
        if stream is None or not self._progress_width:
            return
        stream.write("\r" + " " * self._progress_width + "\r")
        stream.flush()
        self._progress_width = 0

    def render_progress(self) -> str:
        """The live one-line account of the run in flight.

        Shard progress, ETA extrapolated from completed shards, and the
        aggregate simulated-event throughput so far.  (The full metrics
        table is still available via ``registry.render_table('parallel')``.)
        """
        elapsed = (
            time.perf_counter() - self._run_started if self._run_started else 0.0
        )
        done, total = self._run_done, self._run_total
        line = f"{self.campaign}: {done}/{total} shard(s)"
        # Guard the percentage (and everything derived from counts) against
        # an empty campaign: a fleet of zero homes produces zero shards, and
        # ``done / total`` must not take the line down with it.
        if total:
            line += f" ({100.0 * done / total:.0f}%)"
        if done and total and done < total:
            eta = elapsed / done * (total - done)
            line += f"  eta {eta:.1f}s"
        if elapsed > 0 and self._events_seen:
            line += f"  {self._events_seen / elapsed:,.0f} ev/s"
        line += f"  [{elapsed:.1f}s]"
        return line

    def summary(self) -> str:
        """One-line account of the last ``run()`` for log output."""
        line = (
            f"{self.campaign}: {self.completed} shard(s) via "
            f"{min(self.jobs, max(self.completed, 1))} worker(s) in "
            f"{self.last_wall_seconds:.2f}s wall"
        )
        if self.cache is not None:
            line += (
                f" (cache: {int(self._cache_hits.value)} hit(s), "
                f"{int(self._cache_misses.value)} miss(es), "
                f"{int(self._cache_stale.value)} stale)"
            )
        return line
