"""Deterministic seed derivation for sharded campaigns.

A parallel campaign must produce *exactly* the rows a serial run produces,
in the same order, no matter how shards land on workers.  The only way to
guarantee that is to make every shard's seed a pure function of the
campaign's base seed and the shard's identity — never of submission order,
worker id, or wall clock.

``derive_seed`` hashes ``(base_seed, shard_key)`` with BLAKE2b, which is
stable across Python versions, platforms, and process boundaries (unlike
``hash()``, which is salted per process).  The derived seeds are
effectively independent 63-bit streams: two shards of the same campaign
never share one, and changing the base seed re-rolls all of them.
"""

from __future__ import annotations

import hashlib

#: Derived seeds are confined to 63 bits so they stay positive and fit the
#: platform ``Py_ssize_t`` everywhere ``random.Random`` is seeded from them.
_SEED_MASK = (1 << 63) - 1


def derive_seed(base_seed: int, shard_key: str) -> int:
    """A stable per-shard seed for ``shard_key`` under ``base_seed``.

    The mapping is part of the campaign-reproducibility contract: refactors
    must not reshuffle it, or every recorded table regenerated with a given
    ``--seed`` silently changes.  ``tests/test_parallel.py`` pins known
    values for exactly that reason.
    """
    material = f"{base_seed}\x1f{shard_key}".encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") & _SEED_MASK
