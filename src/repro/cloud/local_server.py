"""The local IoT server: an Apple-HomePod-style hub on the LAN.

Local deployments (Figure 1b) keep the automation engine inside the home:
devices speak HAP-style sessions directly to the HomePod, which also pushes
notifications.  Crucially for Table II, HAP event messages are **never
acknowledged**, so e-Delay against local devices has no upper bound — and
because both endpoints sit on the LAN, ARP spoofing can interpose on the
device side, the server side, or both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from ..alarms import AlarmLog
from ..appproto.base import PendingCommand, ProtocolConfig, ServerDeviceSession
from ..appproto.messages import IoTMessage
from ..automation.engine import AutomationEngine
from ..automation.rules import Rule
from ..devices.profiles import DeviceProfile
from ..simnet.host import Host
from ..simnet.link import Lan
from ..tcp.connection import TcpConnection
from ..tcp.stack import TcpStack
from ..tls.session import KeyEscrow
from .notifications import NotificationService

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

#: Conventional HAP accessory port.
DEFAULT_HAP_PORT = 51827


@dataclass
class LocalDeviceRecord:
    device_id: str
    profile: DeviceProfile
    sessions: list[ServerDeviceSession] = field(default_factory=list)

    def newest_live(self) -> ServerDeviceSession | None:
        live = [s for s in self.sessions if not s.closed]
        return live[-1] if live else None


class LocalIoTServer:
    """A LAN-resident IoT server with an embedded automation engine."""

    def __init__(
        self,
        sim: "Simulator",
        lan: Lan,
        alarm_log: AlarmLog,
        escrow: KeyEscrow,
        notifier: NotificationService,
        ip: str = "192.168.1.2",
        hostname: str = "homepod",
        port: int = DEFAULT_HAP_PORT,
        gateway_ip: str = "192.168.1.1",
    ) -> None:
        self.sim = sim
        self.alarm_log = alarm_log
        self.escrow = escrow
        self.notifier = notifier
        self.port = port
        self.host = Host(sim, lan, ip=ip, hostname=hostname, gateway_ip=gateway_ip)
        self.stack = TcpStack(self.host)
        self.stack.listen(port, self._accept)
        self.engine = AutomationEngine(
            sim,
            command_sink=self._dispatch_command,
            notify_sink=lambda message, channel: notifier.deliver(message, channel),
            name=hostname,
        )
        self.registry: dict[str, LocalDeviceRecord] = {}
        self.events: list[tuple[float, str, IoTMessage]] = []
        self.event_hooks: list[Callable[[str, IoTMessage], None]] = []
        self._default_config = ProtocolConfig(
            codec_name="hap",
            keepalive=None,
            ka_response_timeout=None,
            server_liveness_grace=None,
            event_acked=False,
            command_response_timeout=10.0,
        )

    @property
    def ip(self) -> str:
        return self.host.ip

    # ------------------------------------------------------------- registry

    def register_device(self, device_id: str, profile: DeviceProfile) -> None:
        if device_id in self.registry:
            raise ValueError(f"device already paired: {device_id}")
        self.registry[device_id] = LocalDeviceRecord(device_id=device_id, profile=profile)

    def install_rule(self, rule: Rule) -> None:
        self.engine.install_rule(rule)

    def install_rules(self, rules: list[Rule]) -> None:
        for rule in rules:
            self.engine.install_rule(rule)

    # --------------------------------------------------------------- accept

    def _accept(self, conn: TcpConnection) -> None:
        ServerDeviceSession(
            conn,
            config=self._default_config,
            alarm_log=self.alarm_log,
            escrow=self.escrow,
            server_name=self.host.hostname,
            on_event=self._on_event,
            on_device_connected=self._on_device_connected,
        )

    def _on_device_connected(self, session: ServerDeviceSession) -> None:
        record = self.registry.get(session.device_id or "")
        if record is None:
            return
        session.adopt_config(record.profile.protocol_config())
        record.sessions.append(session)

    def _on_event(self, session: ServerDeviceSession, message: IoTMessage) -> None:
        source_id = message.data.get("child") or message.device_id
        self.events.append((self.sim.now, source_id, message))
        for hook in list(self.event_hooks):
            hook(source_id, message)
        self.engine.handle_event(
            device_id=source_id,
            event_name=message.name,
            device_time=message.device_time,
            data=message.data,
        )

    # ------------------------------------------------------------- commands

    def _dispatch_command(self, device_id: str, command: str, data: dict[str, Any]) -> None:
        self.send_command(device_id, command, data)

    def send_command(
        self,
        device_id: str,
        command: str,
        data: dict[str, Any] | None = None,
        on_result: Callable[[PendingCommand], None] | None = None,
    ) -> PendingCommand | None:
        record = self.registry.get(device_id)
        if record is None:
            return None
        session = record.newest_live()
        if session is None:
            return None
        return session.send_command(
            command,
            data=dict(data or {}),
            wire_size=record.profile.command_size,
            on_result=on_result,
        )
