"""Vendor endpoint servers.

An endpoint server is operated by a device vendor and speaks directly to
its devices (Section II-A).  Besides terminating sessions, the endpoint
exhibits two evaluation-relevant behaviours:

* **Half-open connections (Finding 1).**  When a device reconnects, the
  stale previous connection is *kept* (``close_stale_on_reconnect=False``,
  the observed default), and as long as a newer live session exists when the
  stale one's liveness expires, no 'device offline' alarm is raised.
* **Command routing through hubs**: commands to Zigbee/Z-Wave children are
  addressed to the hub session that owns them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from ..alarms import AlarmLog
from ..appproto.base import PendingCommand, ProtocolConfig, ServerDeviceSession
from ..appproto.codecs import CODECS
from ..appproto.messages import IoTMessage
from ..simnet.cloudhost import CloudHost
from ..simnet.inet import Internet
from ..tcp.connection import TcpConfig, TcpConnection
from ..tcp.stack import TcpStack
from ..tls.session import KeyEscrow
from ..devices.profiles import DeviceProfile

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

#: Default listening port for device sessions (MQTT-over-TLS convention).
DEFAULT_PORT = 8883

EventHook = Callable[[str, IoTMessage, ServerDeviceSession], None]


@dataclass
class DeviceRecord:
    """Everything the endpoint knows about one registered device."""

    device_id: str
    profile: DeviceProfile
    #: Runtime id of the hub whose session carries this device, if any.
    via: str | None = None
    sessions: list[ServerDeviceSession] = field(default_factory=list)

    def live_sessions(self) -> list[ServerDeviceSession]:
        return [s for s in self.sessions if not s.closed]

    def newest_live(self) -> ServerDeviceSession | None:
        live = self.live_sessions()
        return live[-1] if live else None


class EndpointServer:
    """One vendor's cloud: accepts device sessions, relays events upstream."""

    def __init__(
        self,
        sim: "Simulator",
        internet: Internet,
        name: str,
        ip: str,
        domain: str,
        alarm_log: AlarmLog,
        escrow: KeyEscrow,
        port: int = DEFAULT_PORT,
        default_config: ProtocolConfig | None = None,
        close_stale_on_reconnect: bool = False,
        tcp_config: TcpConfig | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.alarm_log = alarm_log
        self.escrow = escrow
        self.port = port
        self.default_config = default_config or ProtocolConfig()
        self.close_stale_on_reconnect = close_stale_on_reconnect
        self.host = CloudHost(sim, internet, ip=ip, hostname=name, domain=domain)
        self.stack = TcpStack(self.host, default_config=tcp_config)
        self.stack.listen(port, self._accept)

        self.registry: dict[str, DeviceRecord] = {}
        self.event_hooks: list[EventHook] = []
        self.events: list[tuple[float, str, IoTMessage]] = []
        self.orphan_sessions: list[ServerDeviceSession] = []
        self.stats = {"sessions_accepted": 0, "events_relayed": 0, "commands_sent": 0}

    # ------------------------------------------------------------- registry

    def register_device(self, device_id: str, profile: DeviceProfile, via: str | None = None) -> None:
        """Provision a device (and, for hub children, the hub carrying it)."""
        if device_id in self.registry:
            raise ValueError(f"{self.name}: device already registered: {device_id}")
        self.registry[device_id] = DeviceRecord(device_id=device_id, profile=profile, via=via)

    def record_of(self, device_id: str) -> DeviceRecord:
        try:
            return self.registry[device_id]
        except KeyError:
            raise LookupError(f"{self.name}: unknown device {device_id!r}") from None

    # --------------------------------------------------------------- accept

    def _accept(self, conn: TcpConnection) -> None:
        self.stats["sessions_accepted"] += 1
        session = ServerDeviceSession(
            conn,
            config=self.default_config,
            alarm_log=self.alarm_log,
            escrow=self.escrow,
            server_name=self.name,
            on_event=self._on_event,
            on_device_connected=self._on_device_connected,
            on_stale=self._on_stale,
            codec_fallbacks=tuple(CODECS.values()),
        )
        self.orphan_sessions.append(session)

    def _on_device_connected(self, session: ServerDeviceSession) -> None:
        if session in self.orphan_sessions:
            self.orphan_sessions.remove(session)
        record = self.registry.get(session.device_id or "")
        if record is None:
            # Unknown device: keep serving with the default config.
            self.orphan_sessions.append(session)
            return
        session.adopt_config(record.profile.protocol_config())
        previous = record.newest_live()
        record.sessions.append(session)
        if previous is not None and self.close_stale_on_reconnect:
            previous.close("superseded-by-reconnect")

    def _on_stale(self, session: ServerDeviceSession) -> None:
        """Liveness expired on one session: alarm only if it was the last.

        This implements Finding 1 — the duplicated half-open connection
        postpones the 'device offline' alarm for as long as the device
        reconnects before the old session's window runs out.
        """
        record = self.registry.get(session.device_id or "")
        has_newer = False
        if record is not None:
            has_newer = any(s is not session and not s.closed for s in record.sessions)
        if has_newer:
            session.close("stale-superseded")
        else:
            session.raise_offline_alarm()

    # --------------------------------------------------------------- events

    def _on_event(self, session: ServerDeviceSession, message: IoTMessage) -> None:
        source_id = message.data.get("child") or message.device_id
        self.events.append((self.sim.now, source_id, message))
        self.stats["events_relayed"] += 1
        for hook in list(self.event_hooks):
            hook(source_id, message, session)

    def events_from(self, device_id: str) -> list[tuple[float, IoTMessage]]:
        return [(ts, m) for ts, src, m in self.events if src == device_id]

    # ------------------------------------------------------------- commands

    def send_command(
        self,
        device_id: str,
        command: str,
        data: dict[str, Any] | None = None,
        on_result: Callable[[PendingCommand], None] | None = None,
    ) -> PendingCommand | None:
        """Issue a command, routing through the owning hub when needed.

        Returns None when no live session can carry the command (the
        'device offline' case a real cloud would surface in its app).
        """
        record = self.registry.get(device_id)
        if record is None:
            return None
        data = dict(data or {})
        carrier = record
        if record.via is not None:
            carrier = self.registry.get(record.via)
            if carrier is None:
                return None
            data["child"] = device_id
        session = carrier.newest_live()
        if session is None:
            return None
        self.stats["commands_sent"] += 1
        return session.send_command(
            command,
            data=data,
            wire_size=record.profile.command_size,
            on_result=on_result,
        )

    # ------------------------------------------------------------ liveness

    def half_open_count(self, device_id: str) -> int:
        """How many live sessions the endpoint currently holds for a device."""
        record = self.registry.get(device_id)
        return len(record.live_sessions()) if record else 0

    def device_appears_online(self, device_id: str) -> bool:
        record = self.registry.get(device_id)
        if record is None:
            return False
        if record.via is not None:
            return self.device_appears_online(record.via)
        return record.newest_live() is not None
