"""The integration server: cloud-to-cloud rule execution.

Integration servers (SmartThings' cloud, Amazon Alexa) hold the automation
rules and learn about third-party devices through their vendors' endpoint
clouds (Section II-A, Figure 1a).  Two behaviours from the evaluation live
here:

* a configurable **silent staleness window** — Alexa was observed to
  discard Ring events delayed beyond 30 s with no notification at all
  (Finding 2), which lets an attacker disable safety routines *forever*;
* cloud-to-cloud latency on both the event path and the command path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from ..alarms import AlarmLog
from ..appproto.messages import IoTMessage
from ..appproto.base import ServerDeviceSession
from ..automation.engine import AutomationEngine
from ..automation.rules import Rule
from .endpoint import EndpointServer
from .notifications import NotificationService

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

#: One-way cloud-to-cloud latency between endpoint and integration servers.
DEFAULT_C2C_LATENCY = 0.030


@dataclass
class DiscardedEvent:
    """An event the integration silently dropped for being stale."""

    ts: float
    source_id: str
    event_name: str
    age: float


class IntegrationServer:
    """Runs TCA rules over events gathered from linked endpoint clouds."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        alarm_log: AlarmLog,
        notifier: NotificationService,
        c2c_latency: float = DEFAULT_C2C_LATENCY,
        event_staleness_window: float | None = None,
        trigger_timestamp_window: float | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.alarm_log = alarm_log
        self.notifier = notifier
        self.c2c_latency = c2c_latency
        self.event_staleness_window = event_staleness_window
        self.engine = AutomationEngine(
            sim,
            command_sink=self._dispatch_command,
            notify_sink=self._notify,
            name=name,
            trigger_max_age=trigger_timestamp_window,
        )
        self.endpoints: list[EndpointServer] = []
        self.discarded: list[DiscardedEvent] = []
        self.stats = {"events_in": 0, "events_discarded": 0, "commands_out": 0}

    # ---------------------------------------------------------------- wiring

    def link_endpoint(self, endpoint: EndpointServer) -> None:
        """Subscribe to an endpoint cloud's event feed (cloud-to-cloud)."""
        if endpoint in self.endpoints:
            return
        self.endpoints.append(endpoint)
        endpoint.event_hooks.append(self._on_endpoint_event)

    def install_rule(self, rule: Rule) -> None:
        self.engine.install_rule(rule)

    def install_rules(self, rules: list[Rule]) -> None:
        for rule in rules:
            self.engine.install_rule(rule)

    # ---------------------------------------------------------------- events

    def _on_endpoint_event(
        self, source_id: str, message: IoTMessage, session: ServerDeviceSession
    ) -> None:
        self.sim.schedule(
            self.c2c_latency,
            self._deliver_event,
            source_id,
            message,
            label=f"{self.name}:c2c-event",
        )

    def _deliver_event(self, source_id: str, message: IoTMessage) -> None:
        self.stats["events_in"] += 1
        obs = self.sim.obs
        msg_span = obs.tracer.message_span(message.msg_id) if obs.enabled else None
        window = self.event_staleness_window
        age = self.sim.now - message.device_time
        if window is not None and age > window:
            # Finding 2: silently dropped — no notification, no alarm.
            self.stats["events_discarded"] += 1
            self.discarded.append(
                DiscardedEvent(ts=self.sim.now, source_id=source_id,
                               event_name=message.name, age=age)
            )
            if msg_span is not None:
                obs.registry.counter(
                    "cloud", "events_discarded", server=self.name
                ).inc()
                obs.tracer.event(
                    "cloud",
                    "discard_stale",
                    parent=msg_span,
                    server=self.name,
                    age=round(age, 6),
                )
            return
        if msg_span is not None:
            obs.registry.counter("cloud", "events_delivered", server=self.name).inc()
            # The c2c hop broke the ambient chain; re-attach via the msg_id
            # binding so engine/rule/notify spans join the message's trace.
            with obs.tracer.span(
                "cloud", "deliver", parent=msg_span, server=self.name, source=source_id
            ):
                self.engine.handle_event(
                    device_id=source_id,
                    event_name=message.name,
                    device_time=message.device_time,
                    data=message.data,
                )
        else:
            self.engine.handle_event(
                device_id=source_id,
                event_name=message.name,
                device_time=message.device_time,
                data=message.data,
            )

    # -------------------------------------------------------------- commands

    def _dispatch_command(self, device_id: str, command: str, data: dict[str, Any]) -> None:
        endpoint = self._endpoint_for(device_id)
        if endpoint is None:
            return
        self.stats["commands_out"] += 1
        self.sim.schedule(
            self.c2c_latency,
            endpoint.send_command,
            device_id,
            command,
            data,
            label=f"{self.name}:c2c-command",
        )

    def _endpoint_for(self, device_id: str) -> EndpointServer | None:
        for endpoint in self.endpoints:
            if device_id in endpoint.registry:
                return endpoint
        return None

    def _notify(self, message: str, channel: str) -> None:
        self.notifier.deliver(message, channel)

    # ------------------------------------------------------------ inspection

    def shadow_value(self, device_id: str, attribute: str) -> str | None:
        return self.engine.state_of(device_id, attribute)
