"""User-facing notifications: the smartphone at the end of the chain.

Type-I attacks are measured here: the gap between the physical incident and
``delivered_at`` on the user's phone is exactly the damage window the paper
describes for smoke, water-leak, and break-in alerts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator

#: Push-notification delivery latency (cloud to handset).
DEFAULT_PUSH_LATENCY = 0.5


@dataclass
class Notification:
    sent_at: float
    message: str
    channel: str
    delivered_at: float | None = None
    #: Open obs span covering send..handset delivery (None when tracing off).
    obs_span: object | None = field(default=None, repr=False, compare=False)

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None


class NotificationService:
    """Delivers push/voice/SMS alerts to the resident's devices."""

    def __init__(self, sim: "Simulator", push_latency: float = DEFAULT_PUSH_LATENCY) -> None:
        self.sim = sim
        self.push_latency = push_latency
        self.notifications: list[Notification] = []

    def deliver(self, message: str, channel: str = "push") -> Notification:
        notification = Notification(sent_at=self.sim.now, message=message, channel=channel)
        self.notifications.append(notification)
        obs = self.sim.obs
        if obs.enabled:
            obs.registry.counter("cloud", "notifications", channel=channel).inc()
            notification.obs_span = obs.tracer.start_span(
                "cloud", f"notify:{channel}", message=message
            )
        latency = self.push_latency if channel == "push" else 0.1
        self.sim.schedule(latency, self._mark_delivered, notification, label="notify")
        return notification

    def _mark_delivered(self, notification: Notification) -> None:
        notification.delivered_at = self.sim.now
        if notification.obs_span is not None:
            self.sim.obs.tracer.end_span(
                notification.obs_span, delivered_at=self.sim.now
            )

    def delivered(self) -> list[Notification]:
        return [n for n in self.notifications if n.delivered]

    def matching(self, substring: str) -> list[Notification]:
        return [n for n in self.notifications if substring in n.message]

    def first_delivery_time(self, substring: str) -> float | None:
        """When the first notification containing ``substring`` arrived."""
        times = [n.delivered_at for n in self.matching(substring) if n.delivered]
        return min(times) if times else None
