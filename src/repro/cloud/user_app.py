"""The resident's companion app: the human-facing view of the shadow state.

During a phantom delay the app is the victim's only window into the home —
and it faithfully displays the *server's* stale knowledge.  The Section V-A
scenarios become tangible here: the app shows "front door: closed" while
the door physically stands open, and any manual command the worried user
taps rides the same delayed path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from ..automation.engine import ShadowState
from .integration import IntegrationServer

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator


@dataclass(frozen=True)
class AppView:
    """What the app screen shows for one device attribute."""

    device_id: str
    attribute: str
    value: str | None
    #: Wall-clock age of the displayed information (arrival-based).
    displayed_age: float | None
    #: True age relative to when the device generated the state.
    true_age: float | None

    @property
    def known(self) -> bool:
        return self.value is not None


@dataclass
class ManualCommand:
    ts: float
    device_id: str
    command: str


class UserApp:
    """A phone app bound to the household's integration account."""

    def __init__(self, integration: IntegrationServer) -> None:
        self.integration = integration
        self.sim: "Simulator" = integration.sim
        self.taps: list[ManualCommand] = []

    # ----------------------------------------------------------------- view

    def view(self, device_id: str, attribute: str) -> AppView:
        """Render one tile: the cloud's current belief about a device."""
        state: ShadowState | None = self.integration.engine.shadow.get(
            (device_id, attribute)
        )
        if state is None:
            return AppView(device_id, attribute, None, None, None)
        return AppView(
            device_id=device_id,
            attribute=attribute,
            value=state.value,
            displayed_age=self.sim.now - state.updated_at,
            true_age=self.sim.now - state.device_time,
        )

    def dashboard(self, devices: dict[str, str]) -> list[AppView]:
        """Views for a {device_id: attribute} map, e.g. the home screen."""
        return [self.view(device_id, attr) for device_id, attr in devices.items()]

    # -------------------------------------------------------------- control

    def tap(self, device_id: str, command: str, data: dict[str, Any] | None = None) -> None:
        """A manual command from the app — it travels the same c-Delay path
        as any automation command."""
        self.taps.append(ManualCommand(ts=self.sim.now, device_id=device_id, command=command))
        self.integration._dispatch_command(device_id, command, dict(data or {}))
