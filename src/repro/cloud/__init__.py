"""IoT servers: vendor endpoints, integration clouds, and local hubs."""

from .endpoint import DeviceRecord, EndpointServer, DEFAULT_PORT
from .integration import DiscardedEvent, IntegrationServer, DEFAULT_C2C_LATENCY
from .local_server import DEFAULT_HAP_PORT, LocalDeviceRecord, LocalIoTServer
from .notifications import DEFAULT_PUSH_LATENCY, Notification, NotificationService
from .user_app import AppView, ManualCommand, UserApp

__all__ = [
    "AppView",
    "DEFAULT_C2C_LATENCY",
    "ManualCommand",
    "UserApp",
    "DEFAULT_HAP_PORT",
    "DEFAULT_PORT",
    "DEFAULT_PUSH_LATENCY",
    "DeviceRecord",
    "DiscardedEvent",
    "EndpointServer",
    "IntegrationServer",
    "LocalDeviceRecord",
    "LocalIoTServer",
    "Notification",
    "NotificationService",
]
