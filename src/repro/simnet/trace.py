"""Promiscuous packet capture and flow accounting.

This is the attacker's tcpdump: attached to a (usually promiscuous) host, it
records every frame the NIC sees with a timestamp.  Crucially, it never looks
*inside* TLS — the capture exposes exactly the metadata the paper's sniffing
step consumes: addressing, ports, sizes, and timing.  The fingerprinting
module (:mod:`repro.core.fingerprint`) is built on these records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, TYPE_CHECKING

from .host import Host
from .packet import EthernetFrame, IpPacket

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator


@dataclass(frozen=True)
class FlowKey:
    """Canonical (order-independent) identifier of a TCP flow."""

    ip_a: str
    port_a: int
    ip_b: str
    port_b: int

    @staticmethod
    def of(src_ip: str, src_port: int, dst_ip: str, dst_port: int) -> "FlowKey":
        a = (src_ip, src_port)
        b = (dst_ip, dst_port)
        lo, hi = (a, b) if a <= b else (b, a)
        return FlowKey(lo[0], lo[1], hi[0], hi[1])

    def label(self) -> str:
        """Canonical display form, shared with span/flow reporting."""
        return f"{self.ip_a}:{self.port_a}<->{self.ip_b}:{self.port_b}"

    def involves_ip(self, ip: str) -> bool:
        return ip in (self.ip_a, self.ip_b)

    def other_ip(self, ip: str) -> str:
        if ip == self.ip_a:
            return self.ip_b
        if ip == self.ip_b:
            return self.ip_a
        raise ValueError(f"{ip} is not an endpoint of {self}")


@dataclass(frozen=True)
class CapturedFrame:
    """One observed frame with its capture timestamp."""

    ts: float
    frame: EthernetFrame

    @property
    def byte_size(self) -> int:
        return self.frame.byte_size()


@dataclass(frozen=True)
class PacketMeta:
    """The metadata triple fingerprinting operates on."""

    ts: float
    size: int
    from_device: bool  # direction relative to the LAN-side endpoint


def _tcp_view(frame: EthernetFrame) -> tuple[IpPacket, object] | None:
    """Return (ip, segment) when the frame carries something TCP-like."""
    payload = frame.payload
    if not isinstance(payload, IpPacket):
        return None
    segment = payload.payload
    if segment is None or not hasattr(segment, "src_port") or not hasattr(segment, "dst_port"):
        return None
    return payload, segment


class PacketCapture:
    """A rolling capture attached to a host's frame tap."""

    def __init__(self, sim: "Simulator", max_frames: int = 1_000_000) -> None:
        self.sim = sim
        self.max_frames = max_frames
        self.frames: list[CapturedFrame] = []
        #: Frames evicted by the rolling-buffer overflow — silent loss is
        #: itself a measurement artefact, so it is counted and exported.
        self.dropped_frames = 0
        self._attached: list[Host] = []

    def attach(self, host: Host) -> None:
        host.frame_taps.append(self._tap)
        self._attached.append(host)

    def detach(self, host: Host) -> None:
        if self._tap in host.frame_taps:
            host.frame_taps.remove(self._tap)
        if host in self._attached:
            self._attached.remove(host)

    def clear(self) -> None:
        self.frames.clear()
        self.dropped_frames = 0

    def _tap(self, frame: EthernetFrame) -> None:
        if len(self.frames) >= self.max_frames:
            # Keep the newest traffic; profiling works on recent windows.
            evicted = self.max_frames // 2
            del self.frames[:evicted]
            self.dropped_frames += evicted
            obs = self.sim.obs
            if obs.enabled:
                obs.registry.counter("capture", "dropped_frames").inc(evicted)
        self.frames.append(CapturedFrame(self.sim.now, frame))

    # ------------------------------------------------------------- analysis

    def tcp_frames(self) -> Iterable[tuple[CapturedFrame, IpPacket, object]]:
        for captured in self.frames:
            view = _tcp_view(captured.frame)
            if view is not None:
                yield captured, view[0], view[1]

    def flows(self) -> dict[FlowKey, list[CapturedFrame]]:
        """Group captured TCP traffic by canonical flow."""
        out: dict[FlowKey, list[CapturedFrame]] = {}
        for captured, ip, segment in self.tcp_frames():
            key = FlowKey.of(ip.src_ip, segment.src_port, ip.dst_ip, segment.dst_port)
            out.setdefault(key, []).append(captured)
        return out

    def flow_metadata(self, key: FlowKey, device_ip: str) -> list[PacketMeta]:
        """Length/timing metadata of one flow, oriented around ``device_ip``.

        Only frames that actually carry payload bytes are included — pure
        ACKs are invisible to length-based fingerprinting in practice because
        they are uniform.
        """
        metas: list[PacketMeta] = []
        for captured, ip, segment in self.tcp_frames():
            k = FlowKey.of(ip.src_ip, segment.src_port, ip.dst_ip, segment.dst_port)
            if k != key:
                continue
            payload_len = getattr(segment, "payload_size", 0)
            if not payload_len:
                continue
            metas.append(
                PacketMeta(
                    ts=captured.ts,
                    size=payload_len,
                    from_device=(ip.src_ip == device_ip),
                )
            )
        return metas

    def flows_involving(self, ip: str) -> list[FlowKey]:
        return [key for key in self.flows() if key.involves_ip(ip)]

    def flow_summary(self) -> list[dict]:
        """Per-flow statistics: packet/byte counts, span, payload volume."""
        out = []
        for key, frames in self.flows().items():
            payload_bytes = 0
            data_packets = 0
            for captured in frames:
                segment = captured.frame.payload.payload  # type: ignore[union-attr]
                size = getattr(segment, "payload_size", 0)
                if size:
                    payload_bytes += size
                    data_packets += 1
            out.append(
                {
                    "flow": f"{key.ip_a}:{key.port_a}<->{key.ip_b}:{key.port_b}",
                    "packets": len(frames),
                    "data_packets": data_packets,
                    "payload_bytes": payload_bytes,
                    "first_ts": frames[0].ts,
                    "last_ts": frames[-1].ts,
                    "dropped_frames": self.dropped_frames,
                }
            )
        out.sort(key=lambda row: row["first_ts"])
        return out

    def export_jsonl(self, path: str) -> int:
        """Dump the capture as JSON lines (a pcap stand-in for analysis).

        Only metadata is exported — timestamps, addressing, flags, and
        payload sizes — mirroring what an analyst keeps from encrypted
        captures.  Returns the number of frame records written.  When the
        rolling buffer overflowed, a leading ``capture-summary`` meta record
        reports how many frames were evicted before this export.
        """
        lines: list[str] = []
        if self.dropped_frames:
            lines.append(
                json.dumps(
                    {"meta": "capture-summary", "dropped_frames": self.dropped_frames}
                )
            )
        for captured in self.frames:
            frame = captured.frame
            record: dict = {
                "ts": round(captured.ts, 6),
                "src_mac": frame.src_mac,
                "dst_mac": frame.dst_mac,
                "bytes": frame.byte_size(),
                "kind": type(frame.payload).__name__,
            }
            payload = frame.payload
            if isinstance(payload, IpPacket):
                record["src_ip"] = payload.src_ip
                record["dst_ip"] = payload.dst_ip
                segment = payload.payload
                if hasattr(segment, "src_port"):
                    record["src_port"] = segment.src_port
                    record["dst_port"] = segment.dst_port
                    record["flags"] = sorted(segment.flags)
                    record["payload_len"] = segment.payload_size
            lines.append(json.dumps(record))
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        return len(self.frames)
