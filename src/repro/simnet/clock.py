"""Virtual time for the discrete-event simulator.

All protocol layers in :mod:`repro` read time exclusively through a
:class:`Clock` so that an entire smart home — devices, cloud servers, and the
attacker — can be driven deterministically by the event scheduler.  One second
of simulated time costs microseconds of wall time, which is what makes the
20-trial x 50-device profiling campaigns of the paper's evaluation tractable
in a test suite.
"""

from __future__ import annotations


class Clock:
    """A monotonically advancing virtual clock.

    The scheduler is the only component that should advance the clock; every
    other component treats it as read-only.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`ValueError` on any attempt to move backwards, which
        would indicate a scheduler bug.
        """
        if when < self._now:
            raise ValueError(
                f"time cannot move backwards: {when} < {self._now}"
            )
        self._now = when

    def advance_unchecked(self, when: float) -> None:
        """Move the clock forward without the backwards-motion guard.

        For the scheduler's fused hot loops only: they pop events in
        ``(when, seq)`` heap order, so monotonicity is already proven by
        the data structure and re-checking it per event is pure overhead.
        Equivalent to the attribute store ``clock._now = when`` the hot
        loops inline; exists so the contract is a named, documented API
        rather than private-attribute folklore.
        """
        self._now = when

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock(now={self._now:.6f})"
