"""Wire formats for the simulated network.

Frames carry real structure — MAC/IP addresses, ARP operations, and nested
payloads that report their serialised size — because two parts of the paper
depend on byte-level fidelity:

* traffic fingerprinting recognises devices purely from *packet lengths and
  timing* of encrypted flows (Section II-C / VI-B), and
* the TLS record layer MAC covers exact bytes, so the hijacker can delay but
  never alter them (Section IV).

Everything above the IP layer is an object with a ``byte_size()``; link and
capture code treats payloads opaquely.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

#: Broadcast MAC address, used by ARP requests.
BROADCAST_MAC = "ff:ff:ff:ff:ff:ff"

ETHERNET_HEADER_BYTES = 14
IPV4_HEADER_BYTES = 20
ARP_BODY_BYTES = 28

_packet_ids = itertools.count(1)


@runtime_checkable
class Sized(Protocol):
    """Anything that knows its serialised size can ride inside a packet."""

    def byte_size(self) -> int: ...


def _payload_size(payload: Any) -> int:
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, Sized):
        return payload.byte_size()
    raise TypeError(f"payload has no byte_size(): {type(payload)!r}")


class MacPool:
    """Deterministic MAC address allocator (one per simulated NIC)."""

    def __init__(self, prefix: str = "02:00:00") -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)

    def allocate(self) -> str:
        n = next(self._counter)
        if n > 0xFFFFFF:
            raise RuntimeError("MAC pool exhausted")
        return f"{self._prefix}:{(n >> 16) & 0xFF:02x}:{(n >> 8) & 0xFF:02x}:{n & 0xFF:02x}"


@dataclass(frozen=True)
class ArpPacket:
    """ARP request/reply body.

    ARP spoofing — the paper's session-hijacking mechanism — is just an
    unsolicited reply whose ``sender_mac`` is the attacker's NIC.
    """

    op: str  # "request" | "reply"
    sender_mac: str
    sender_ip: str
    target_mac: str
    target_ip: str

    def __post_init__(self) -> None:
        if self.op not in ("request", "reply"):
            raise ValueError(f"bad ARP op: {self.op!r}")

    def byte_size(self) -> int:
        return ARP_BODY_BYTES


@dataclass(frozen=True)
class IpPacket:
    """Minimal IPv4 packet: addressing plus an opaque upper-layer payload."""

    src_ip: str
    dst_ip: str
    payload: Any
    ttl: int = 64

    def byte_size(self) -> int:
        return IPV4_HEADER_BYTES + _payload_size(self.payload)


@dataclass(frozen=True)
class EthernetFrame:
    """A layer-2 frame on the simulated WiFi broadcast medium."""

    src_mac: str
    dst_mac: str
    payload: Any  # ArpPacket | IpPacket
    frame_id: int = field(default_factory=lambda: next(_packet_ids))

    def byte_size(self) -> int:
        return ETHERNET_HEADER_BYTES + _payload_size(self.payload)

    @property
    def is_broadcast(self) -> bool:
        return self.dst_mac == BROADCAST_MAC

    def describe(self) -> str:
        """One-line summary used by traces and debugging output."""
        kind = type(self.payload).__name__
        return (
            f"#{self.frame_id} {self.src_mac} -> {self.dst_mac} "
            f"{kind} ({self.byte_size()}B)"
        )
