"""Discrete-event scheduler.

The scheduler is the heartbeat of the whole reproduction: TCP retransmission
and keep-alive timers, MQTT PINGREQ periods, HTTP response timeouts, sensor
trigger timelines, and the attacker's hold-and-release schedules are all
events on a single priority queue.  Determinism matters — two runs with the
same seed and the same timeline must produce identical packet traces — so
ties are broken by insertion order, never by object identity.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from .clock import Clock


@dataclass(order=True)
class _Entry:
    when: float
    seq: int
    timer: "Timer" = field(compare=False)


class Timer:
    """Handle for a scheduled callback.

    A fired or cancelled timer is inert; ``cancel()`` is idempotent so
    protocol state machines can cancel defensively.
    """

    __slots__ = ("callback", "args", "when", "_cancelled", "_fired", "label")

    def __init__(
        self,
        when: float,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
        label: str = "",
    ) -> None:
        self.when = when
        self.callback = callback
        self.args = args
        self.label = label
        self._cancelled = False
        self._fired = False

    @property
    def active(self) -> bool:
        """True while the timer is pending (not yet fired nor cancelled)."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        self._cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else ("fired" if self._fired else "cancelled")
        return f"Timer({self.label or self.callback!r} @ {self.when:.3f}, {state})"


class Simulator:
    """Event loop owning the virtual :class:`Clock`.

    Components schedule callbacks with :meth:`schedule` (relative delay) or
    :meth:`at` (absolute time).  ``run_until`` / ``run`` drive the loop.  The
    simulator also owns a seeded :class:`random.Random` so that jitter (for
    example TCP retransmission backoff randomisation) is reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self.clock = Clock()
        self.rng = random.Random(seed)
        self._queue: list[_Entry] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._max_events = 50_000_000  # runaway-loop backstop

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Timer:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay}")
        return self.at(self.now + delay, callback, *args, label=label)

    def at(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        timer = Timer(when, callback, args, label=label)
        heapq.heappush(self._queue, _Entry(when, next(self._seq), timer))
        return timer

    def call_soon(self, callback: Callable[..., Any], *args: Any, label: str = "") -> Timer:
        """Schedule a callback at the current instant (after pending events)."""
        return self.at(self.now, callback, *args, label=label)

    def peek(self) -> float | None:
        """Time of the next pending event, or None when the queue is drained."""
        while self._queue and not self._queue[0].timer.active:
            heapq.heappop(self._queue)
        return self._queue[0].when if self._queue else None

    def step(self) -> bool:
        """Run the single next event.  Returns False when nothing is pending."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            timer = entry.timer
            if not timer.active:
                continue
            self.clock.advance_to(entry.when)
            timer._fired = True
            self._events_processed += 1
            if self._events_processed > self._max_events:
                raise RuntimeError("simulation exceeded event budget; runaway loop?")
            timer.callback(*timer.args)
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Process events until the clock reaches ``deadline``.

        Events scheduled exactly at ``deadline`` are executed; the clock never
        moves past ``deadline`` even if the queue holds later events.
        """
        while True:
            nxt = self.peek()
            if nxt is None or nxt > deadline:
                break
            self.step()
        self.clock.advance_to(max(self.clock.now, deadline))

    def run(self, for_duration: float | None = None) -> None:
        """Run for ``for_duration`` seconds, or drain the queue when None."""
        if for_duration is not None:
            self.run_until(self.now + for_duration)
            return
        while self.step():
            pass
