"""Discrete-event scheduler.

The scheduler is the heartbeat of the whole reproduction: TCP retransmission
and keep-alive timers, MQTT PINGREQ periods, HTTP response timeouts, sensor
trigger timelines, and the attacker's hold-and-release schedules are all
events on a single priority queue.  Determinism matters — two runs with the
same seed and the same timeline must produce identical packet traces — so
ties are broken by insertion order, never by object identity.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, TYPE_CHECKING

from ..obs import telemetry
from ..obs.observer import Observability
from .clock import Clock

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.observer import SimObserver

# Heap nodes are plain ``(when, seq, timer)`` tuples: ``seq`` is unique per
# simulator, so comparisons are settled by the first two fields and the
# timer is never compared.  Tuple comparison is implemented in C, which is
# what makes this the cheapest possible node for the hot loop (a dataclass
# with ``order=True`` builds a fresh tuple per rich comparison).
_HeapNode = "tuple[float, int, Timer]"


class Timer:
    """Handle for a scheduled callback.

    A fired or cancelled timer is inert; ``cancel()`` is idempotent so
    protocol state machines can cancel defensively.
    """

    __slots__ = ("callback", "args", "when", "created_at", "_cancelled", "_fired", "label")

    def __init__(
        self,
        when: float,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
        label: str = "",
        created_at: float = 0.0,
    ) -> None:
        self.when = when
        self.callback = callback
        self.args = args
        self.label = label
        self.created_at = created_at
        self._cancelled = False
        self._fired = False

    @property
    def active(self) -> bool:
        """True while the timer is pending (not yet fired nor cancelled)."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        self._cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else ("fired" if self._fired else "cancelled")
        return f"Timer({self.label or self.callback!r} @ {self.when:.3f}, {state})"


class Simulator:
    """Event loop owning the virtual :class:`Clock`.

    Components schedule callbacks with :meth:`schedule` (relative delay) or
    :meth:`at` (absolute time).  ``run_until`` / ``run`` drive the loop.  The
    simulator also owns a seeded :class:`random.Random` so that jitter (for
    example TCP retransmission backoff randomisation) is reproducible.
    """

    #: When the event budget is near, fire counts over this trailing window
    #: of events are tallied so the budget error can name the hot timers.
    BUDGET_TALLY_WINDOW = 100_000

    def __init__(self, seed: int = 0, observer: "SimObserver | None" = None) -> None:
        self.clock = Clock()
        self.rng = random.Random(seed)
        self._queue: list[tuple[float, int, Timer]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._max_events = 50_000_000  # runaway-loop backstop
        self._tally_after = max(0, self._max_events - self.BUDGET_TALLY_WINDOW)
        self._label_fires: dict[str, int] = {}
        #: Scheduler profiling hook; None keeps the hot loop branch-cheap.
        self._observer = observer
        #: Per-simulation observability facade; disabled until enabled.
        self.obs = Observability()
        #: Optional cross-layer invariant suite (see
        #: :mod:`repro.faults.invariants`); None keeps layer hooks free.
        self.invariants: Any = None
        # Registration is construction-time only: an active telemetry
        # capture learns this simulator exists, and the hot loop stays
        # untouched — counts are read off the finished simulator.
        telemetry.register_simulator(self)

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def max_events(self) -> int:
        return self._max_events

    @max_events.setter
    def max_events(self, budget: int) -> None:
        if budget <= 0:
            raise ValueError(f"event budget must be positive: {budget}")
        self._max_events = budget
        # A budget below the tally window must not go negative: that would
        # re-enable tallying for events already processed and, worse, keep
        # the "near budget" branch permanently hot.  Clamping to zero means
        # small budgets simply tally from the first event.
        self._tally_after = max(0, budget - self.BUDGET_TALLY_WINDOW)

    def set_observer(self, observer: "SimObserver | None") -> None:
        """Install (or remove) the scheduler profiling observer."""
        self._observer = observer

    def enable_observability(self, profile_scheduler: bool = True) -> Observability:
        """Turn on the metrics registry and tracer for this simulation.

        With ``profile_scheduler`` a :class:`~repro.obs.SchedulerProfiler`
        is installed as the observer; the facade is returned either way.
        """
        obs = self.obs.enable(self)
        if profile_scheduler and self._observer is None:
            from ..obs.observer import SchedulerProfiler

            assert obs.registry is not None
            self._observer = SchedulerProfiler(obs.registry)
        return obs

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Timer:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay}")
        return self.at(self.now + delay, callback, *args, label=label)

    def at(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        timer = Timer(when, callback, args, label=label, created_at=self.now)
        heapq.heappush(self._queue, (when, next(self._seq), timer))
        if self._observer is not None:
            self._observer.timer_scheduled(timer, self.now)
        return timer

    def call_soon(self, callback: Callable[..., Any], *args: Any, label: str = "") -> Timer:
        """Schedule a callback at the current instant (after pending events)."""
        return self.at(self.now, callback, *args, label=label)

    def peek(self) -> float | None:
        """Time of the next pending event, or None when the queue is drained."""
        queue = self._queue
        while queue:
            timer = queue[0][2]
            if timer._cancelled or timer._fired:
                heapq.heappop(queue)
            else:
                return queue[0][0]
        return None

    def step(self) -> bool:
        """Run the single next event.  Returns False when nothing is pending."""
        queue = self._queue
        while queue:
            when, _seq, timer = heapq.heappop(queue)
            if timer._cancelled or timer._fired:
                continue
            self.clock.advance_to(when)
            timer._fired = True
            self._events_processed += 1
            if self._events_processed > self._tally_after:
                self._tally_near_budget(timer.label)
            if self._observer is not None:
                self._observer.timer_fired(timer, when, len(queue))
            timer.callback(*timer.args)
            return True
        return False

    def _tally_near_budget(self, label: str) -> None:
        """Count fires by label near the budget; raise a diagnosable error.

        The tally only starts within :data:`BUDGET_TALLY_WINDOW` events of
        the budget so normal runs never pay for it; a runaway loop is by
        definition still spinning in that window, so the top labels identify
        the culprit without a debugger.
        """
        self._label_fires[label] = self._label_fires.get(label, 0) + 1
        if self._events_processed > self._max_events:
            top = sorted(self._label_fires.items(), key=lambda kv: -kv[1])[:5]
            window = min(self.BUDGET_TALLY_WINDOW, self._max_events)
            hot = ", ".join(f"{label or '<unlabelled>'} x{count}" for label, count in top)
            raise RuntimeError(
                f"simulation exceeded event budget ({self._max_events} events); "
                f"runaway loop? hottest timers over the last {window} events: {hot}"
            )

    def run_until(self, deadline: float) -> None:
        """Process events until the clock reaches ``deadline``.

        Events scheduled exactly at ``deadline`` are executed; the clock never
        moves past ``deadline`` even if the queue holds later events.

        This is the simulator's hot loop: pop, advance, and fire are fused
        into one heap scan (``peek()`` followed by ``step()`` would walk past
        cancelled timers twice), and the queue/clock/heappop lookups are
        hoisted out of the loop.  ``self._observer`` and ``_tally_after``
        are deliberately re-read after each callback so a callback
        installing a profiler or tightening ``max_events`` mid-run takes
        effect immediately.
        """
        queue = self._queue
        clock = self.clock
        advance = clock.advance_to
        pop = heapq.heappop
        tally_after = self._tally_after
        while queue:
            when = queue[0][0]
            if when > deadline:
                break
            timer = pop(queue)[2]
            if timer._cancelled or timer._fired:
                continue
            advance(when)
            timer._fired = True
            self._events_processed += 1
            if self._events_processed > tally_after:
                self._tally_near_budget(timer.label)
            observer = self._observer
            if observer is not None:
                observer.timer_fired(timer, when, len(queue))
            timer.callback(*timer.args)
            tally_after = self._tally_after
        if deadline > clock.now:
            advance(deadline)

    def run(self, for_duration: float | None = None) -> None:
        """Run for ``for_duration`` seconds, or drain the queue when None."""
        if for_duration is not None:
            self.run_until(self.now + for_duration)
            return
        while self.step():
            pass
