"""Discrete-event scheduler built around a hierarchical timer wheel.

The scheduler is the heartbeat of the whole reproduction: TCP retransmission
and keep-alive timers, MQTT PINGREQ periods, HTTP response timeouts, sensor
trigger timelines, and the attacker's hold-and-release schedules are all
events in a single logical timeline.  Determinism matters — two runs with
the same seed and the same timeline must produce identical packet traces —
so ties are broken by insertion order, never by object identity.

The event store is shaped around the workload's actual shape (almost all
events are short periodic keep-alives and short-lived protocol timers):

* **Timer wheel.**  Near-future one-shot timers land in one of
  :data:`WHEEL_SIZE` bucket heaps covering :data:`TICK`-second slots
  (insert and cancel are O(1) bucket operations; each bucket heap holds a
  handful of nodes, so intra-bucket ordering costs almost nothing).  An
  occupancy bitmask (one big int) finds the next non-empty bucket with a
  single ``(rot & -rot).bit_length()`` — idle gaps between keep-alive
  bursts are skipped in constant time rather than scanned.
* **Overflow heap.**  Timers beyond the wheel horizon (``TICK *
  WHEEL_SIZE`` seconds) wait in a plain sorted heap and migrate into the
  wheel as the cursor approaches — far-future events cost nothing until
  they are near.
* **True cancellation removal.**  ``Timer.cancel()`` removes the node from
  its bucket when it is the bucket tail (the schedule-then-cancel pattern
  protocol state machines use for defensive cancels), and always removes
  the timer from the live-pending count; remaining ghosts are swept when
  their bucket comes due — they can no longer accumulate for thousands of
  events the way cancelled TCP retransmit timers did in the old global
  binary heap.
* **Periodic timers.**  :meth:`Simulator.schedule_periodic` returns a
  :class:`PeriodicTimer` that the scheduler re-arms in place after each
  fire — no per-cycle ``Timer`` allocation, no re-insert through the
  general path — kept in a dedicated small heap merged with the wheel by
  exact ``(when, seq)`` order.
* **Quiescence skipping.**  When every pending event is periodic and no
  quiescence blocker is registered (attacker holds and fault profiles
  block it, see :meth:`Simulator.block_quiescence`), ``run_until`` drops
  into a tight loop that batch-steps the clock across whole idle
  intervals, firing the periodic callbacks in bulk while preserving exact
  fire ordering.  The observer still sees every logical fire.
* **Timer free-list.**  Fired one-shot timers with no remaining external
  references (checked via the C refcount) are recycled instead of
  re-allocated.

Fire order is exactly the order the previous binary-heap scheduler
produced: globally sorted by ``(when, seq)`` where ``seq`` is a single
per-simulator insertion counter shared by one-shot and periodic timers.
``tests/test_scheduler_equivalence.py`` drives random schedule / cancel /
reschedule sequences through both implementations to pin that contract.
"""

from __future__ import annotations

import heapq
import itertools
import random
import sys
from typing import Any, Callable, TYPE_CHECKING

from ..obs import telemetry
from ..obs.observer import Observability
from .clock import Clock

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.observer import SimObserver

# ---------------------------------------------------------------- wheel shape

#: Wheel slot width in simulated seconds.  1/32 s comfortably separates the
#: sub-second protocol timers that dominate while keeping the horizon
#: (TICK * WHEEL_SIZE = 8 s) wide enough that only long keep-alive idles
#: ever touch the overflow heap.
TICK = 0.03125
_INV_TICK = 1.0 / TICK

WHEEL_BITS = 8
WHEEL_SIZE = 1 << WHEEL_BITS  # 256 buckets
WHEEL_MASK = WHEEL_SIZE - 1
_WHEEL_FULL = (1 << WHEEL_SIZE) - 1

#: Upper bound on recycled Timer objects kept per simulator.
_FREELIST_MAX = 512

# Wheel nodes are plain ``(when, seq, timer)`` tuples: ``seq`` is unique per
# simulator, so comparisons are settled by the first two fields and the
# timer is never compared.  Tuple comparison is implemented in C, which is
# what makes this the cheapest possible node for the hot loop.

# A timer is recycled only when the C refcount proves nothing outside the
# hot loop still references it.  The expected count is probed rather than
# hard-coded so a CPython version that changes calling-convention ref
# accounting disables recycling instead of corrupting live handles.
if hasattr(sys, "getrefcount"):  # pragma: no branch
    def _expected_refs() -> int:
        obj = object()
        node = (obj,)  # mirrors the hot loop: node tuple + local + argument
        count = sys.getrefcount(obj)
        del node
        return count

    _RECYCLE_REFS: int | None = _expected_refs()
    _getrefcount = sys.getrefcount
else:  # pragma: no cover - non-CPython
    _RECYCLE_REFS = None
    _getrefcount = None


class Timer:
    """Handle for a scheduled callback.

    A fired or cancelled timer is inert; ``cancel()`` is idempotent so
    protocol state machines can cancel defensively.
    """

    __slots__ = (
        "callback",
        "args",
        "when",
        "created_at",
        "_cancelled",
        "_fired",
        "label",
        "_bucket",
        "_sim",
    )

    def __init__(
        self,
        when: float,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
        label: str = "",
        created_at: float = 0.0,
    ) -> None:
        self.when = when
        self.callback = callback
        self.args = args
        self.label = label
        self.created_at = created_at
        self._cancelled = False
        self._fired = False
        #: The bucket/overflow/periodic heap list currently holding this
        #: timer's node, for O(1) tail removal on cancel; None once popped.
        self._bucket: list[tuple[float, int, "Timer"]] | None = None
        self._sim: "Simulator | None" = None

    @property
    def active(self) -> bool:
        """True while the timer is pending (not yet fired nor cancelled)."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        sim = self._sim
        if sim is not None:
            sim._on_timer_cancelled(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else ("fired" if self._fired else "cancelled")
        return f"Timer({self.label or self.callback!r} @ {self.when:.3f}, {state})"


class PeriodicTimer(Timer):
    """A timer the scheduler re-arms in place after every fire.

    ``active`` stays true across fires; :meth:`Timer.cancel` stops the
    cycle.  ``when`` always holds the next pending fire time.
    """

    __slots__ = ("period",)

    def __init__(
        self,
        when: float,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
        period: float,
        label: str = "",
        created_at: float = 0.0,
    ) -> None:
        super().__init__(when, callback, args, label=label, created_at=created_at)
        self.period = period

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else "active"
        return (
            f"PeriodicTimer({self.label or self.callback!r} @ {self.when:.3f} "
            f"every {self.period:.3f}, {state})"
        )


class Simulator:
    """Event loop owning the virtual :class:`Clock`.

    Components schedule callbacks with :meth:`schedule` (relative delay),
    :meth:`at` (absolute time), or :meth:`schedule_periodic` (recurring).
    ``run_until`` / ``run`` drive the loop.  The simulator also owns a
    seeded :class:`random.Random` so that jitter (for example TCP
    retransmission backoff randomisation) is reproducible.
    """

    #: When the event budget is near, fire counts over this trailing window
    #: of events are tallied so the budget error can name the hot timers.
    BUDGET_TALLY_WINDOW = 100_000

    #: Cap on distinct labels the near-budget tally tracks; the long tail
    #: beyond it is folded into ``<other>`` so a high-cardinality label set
    #: cannot grow the tally dict without bound.
    TALLY_MAX_LABELS = 256

    def __init__(self, seed: int = 0, observer: "SimObserver | None" = None) -> None:
        self.clock = Clock()
        self.rng = random.Random(seed)
        self._buckets: list[list[tuple[float, int, Timer]]] = [
            [] for _ in range(WHEEL_SIZE)
        ]
        self._occ = 0  # occupancy bitmask: bit b set <=> bucket b may hold nodes
        self._cursor = 0  # wheel position: int(clock.now * _INV_TICK)
        self._overflow: list[tuple[float, int, Timer]] = []
        self._pheap: list[tuple[float, int, Timer]] = []
        self._free: list[Timer] = []
        self._seq = itertools.count()
        self._pending = 0  # live (un-fired, un-cancelled) timers, all kinds
        self._pending_periodic = 0  # live periodic timers
        self._quiesce_blockers = 0
        # Bumped by anything that invalidates state the quiescent fast
        # path hoists into locals (observer, tally threshold, blockers).
        self._qepoch = 0
        #: Master switch for the quiescence fast path (kept on; benches
        #: flip it off to measure the batch-stepping win in isolation).
        self.quiescence_enabled = True
        self._events_processed = 0
        self._max_events = 50_000_000  # runaway-loop backstop
        self._tally_after = max(0, self._max_events - self.BUDGET_TALLY_WINDOW)
        self._label_fires: dict[str, int] = {}
        self._tally_total = 0
        #: Scheduler profiling hook; None keeps the hot loop branch-cheap.
        self._observer = observer
        #: Per-simulation observability facade; disabled until enabled.
        self.obs = Observability()
        #: Optional cross-layer invariant suite (see
        #: :mod:`repro.faults.invariants`); None keeps layer hooks free.
        self.invariants: Any = None
        # Registration is construction-time only: an active telemetry
        # capture learns this simulator exists, and the hot loop stays
        # untouched — counts are read off the finished simulator.
        telemetry.register_simulator(self)

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Live (scheduled, not yet fired or cancelled) timers."""
        return self._pending

    @property
    def max_events(self) -> int:
        return self._max_events

    @max_events.setter
    def max_events(self, budget: int) -> None:
        if budget <= 0:
            raise ValueError(f"event budget must be positive: {budget}")
        self._max_events = budget
        # A budget below the tally window must not go negative: that would
        # re-enable tallying for events already processed and, worse, keep
        # the "near budget" branch permanently hot.  Clamping to zero means
        # small budgets simply tally from the first event.
        self._tally_after = max(0, budget - self.BUDGET_TALLY_WINDOW)
        # A new budget starts a new tally window: fires counted against the
        # old budget must not masquerade as this run's hot timers.
        self._label_fires.clear()
        self._tally_total = 0
        self._qepoch += 1

    def set_observer(self, observer: "SimObserver | None") -> None:
        """Install (or remove) the scheduler profiling observer."""
        self._observer = observer
        self._qepoch += 1

    def enable_observability(self, profile_scheduler: bool = True) -> Observability:
        """Turn on the metrics registry and tracer for this simulation.

        With ``profile_scheduler`` a :class:`~repro.obs.SchedulerProfiler`
        is installed as the observer; the facade is returned either way.
        """
        obs = self.obs.enable(self)
        if profile_scheduler and self._observer is None:
            from ..obs.observer import SchedulerProfiler

            assert obs.registry is not None
            self._observer = SchedulerProfiler(obs.registry)
            self._qepoch += 1
        return obs

    # -------------------------------------------------------------- quiescence

    def block_quiescence(self) -> None:
        """Disable the batch-stepping fast path (counted; re-entrant).

        Attacker hold windows and active fault profiles call this so the
        scheduler never batch-steps across an interval an adversary or an
        impairment could perturb.  The fast path is semantically identical
        either way; blocking it is belt-and-braces determinism insurance.
        """
        self._quiesce_blockers += 1
        self._qepoch += 1

    def unblock_quiescence(self) -> None:
        if self._quiesce_blockers <= 0:
            raise RuntimeError("unblock_quiescence without matching block")
        self._quiesce_blockers -= 1

    @property
    def quiescence_blocked(self) -> bool:
        return self._quiesce_blockers > 0

    # -------------------------------------------------------------- scheduling

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Timer:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay}")
        return self.at(self.clock._now + delay, callback, *args, label=label)

    def at(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        now = self.clock._now
        if when < now:
            raise ValueError(f"cannot schedule in the past: {when} < {now}")
        free = self._free
        if free:
            timer = free.pop()
            timer.when = when
            timer.callback = callback
            timer.args = args
            timer.label = sys.intern(label) if label else label
            timer.created_at = now
            timer._cancelled = False
            timer._fired = False
        else:
            timer = Timer(
                when, callback, args,
                label=sys.intern(label) if label else label,
                created_at=now,
            )
        timer._sim = self
        node = (when, next(self._seq), timer)
        tick = int(when * _INV_TICK)
        cursor = self._cursor
        if tick < cursor:  # float-rounding guard; fires next either way
            tick = cursor
        if tick - cursor < WHEEL_SIZE:
            bucket = self._buckets[tick & WHEEL_MASK]
            heapq.heappush(bucket, node)
            self._occ |= 1 << (tick & WHEEL_MASK)
            timer._bucket = bucket
        else:
            heapq.heappush(self._overflow, node)
            timer._bucket = self._overflow
        self._pending += 1
        if self._observer is not None:
            self._observer.timer_scheduled(timer, now)
        return timer

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
        first: float | None = None,
        label: str = "",
    ) -> PeriodicTimer:
        """Schedule ``callback(*args)`` every ``period`` seconds.

        The first fire is ``first`` seconds from now (default: one period).
        After each fire the scheduler re-arms the same
        :class:`PeriodicTimer` in place — no allocation, no heap churn —
        with a fresh insertion sequence number, exactly as if the callback
        had ended with ``sim.schedule(period, ...)``.  Cancel to stop.
        """
        if period <= 0:
            raise ValueError(f"period must be positive: {period}")
        delay = period if first is None else first
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: first={first}")
        now = self.clock._now
        timer = PeriodicTimer(
            now + delay, callback, args, period,
            label=sys.intern(label) if label else label,
            created_at=now,
        )
        timer._sim = self
        pheap = self._pheap
        heapq.heappush(pheap, (timer.when, next(self._seq), timer))
        timer._bucket = pheap
        self._pending += 1
        self._pending_periodic += 1
        if self._observer is not None:
            self._observer.timer_scheduled(timer, now)
        return timer

    def call_soon(self, callback: Callable[..., Any], *args: Any, label: str = "") -> Timer:
        """Schedule a callback at the current instant (after pending events)."""
        return self.at(self.clock._now, callback, *args, label=label)

    # ------------------------------------------------------------ cancellation

    def _on_timer_cancelled(self, timer: Timer) -> None:
        """Book-keeping for :meth:`Timer.cancel` (flag already set)."""
        self._pending -= 1
        if type(timer) is PeriodicTimer:
            self._pending_periodic -= 1
        bucket = timer._bucket
        timer._bucket = None
        if bucket and bucket[-1][2] is timer:
            # Tail removal is heap-safe and catches the dominant
            # schedule-then-immediately-cancel defensive pattern, so those
            # timers never even become ghosts.
            bucket.pop()

    # ------------------------------------------------------------------ lookup

    def _next_wheel_bucket(self) -> tuple[int, list[tuple[float, int, Timer]]] | None:
        """The earliest bucket holding a live one-shot, after migration.

        Prunes cancelled ghosts off bucket tops, clears occupancy bits of
        emptied buckets, and pulls overflow nodes that entered the wheel
        window.  Does not move the clock or the cursor.
        """
        pop = heapq.heappop
        overflow = self._overflow
        cursor = self._cursor
        horizon = cursor + WHEEL_SIZE
        buckets = self._buckets
        while overflow:
            node = overflow[0]
            timer = node[2]
            if timer._cancelled:
                pop(overflow)
                continue
            tick = int(node[0] * _INV_TICK)
            if tick >= horizon:
                break
            pop(overflow)
            if tick < cursor:
                tick = cursor
            bucket = buckets[tick & WHEEL_MASK]
            heapq.heappush(bucket, node)
            self._occ |= 1 << (tick & WHEEL_MASK)
            timer._bucket = bucket
        occ = self._occ
        scan = cursor
        while occ:
            shift = scan & WHEEL_MASK
            rot = ((occ >> shift) | (occ << (WHEEL_SIZE - shift))) & _WHEEL_FULL
            scan += (rot & -rot).bit_length() - 1
            bucket = buckets[scan & WHEEL_MASK]
            while bucket:
                if bucket[0][2]._cancelled:
                    pop(bucket)
                else:
                    return scan, bucket
            occ &= ~(1 << (scan & WHEEL_MASK))
            self._occ = occ
            scan += 1
        return None

    def _prune_periodic(self) -> tuple[float, int, Timer] | None:
        """Live head of the periodic heap (ghosts popped), or None."""
        pheap = self._pheap
        while pheap:
            node = pheap[0]
            if node[2]._cancelled:
                heapq.heappop(pheap)
            else:
                return node
        return None

    def peek(self) -> float | None:
        """Time of the next pending event, or None when the queue is drained."""
        nxt: float | None = None
        found = self._next_wheel_bucket()
        if found is not None:
            nxt = found[1][0][0]
        elif self._overflow:
            # Migration above pruned ghost heads; a live overflow head is
            # the earliest one-shot when the wheel window is empty.
            nxt = self._overflow[0][0]
        pnode = self._prune_periodic()
        if pnode is not None and (nxt is None or pnode[0] < nxt):
            nxt = pnode[0]
        return nxt

    # ------------------------------------------------------------------ firing

    def step(self) -> bool:
        """Run the single next event.  Returns False when nothing is pending."""
        clock = self.clock
        while True:
            found = self._next_wheel_bucket()
            onode = None
            if found is None and self._overflow:
                onode = self._overflow[0]
            pnode = self._prune_periodic()
            wnode = found[1][0] if found is not None else onode
            if pnode is not None and (
                wnode is None
                or pnode[0] < wnode[0]
                or (pnode[0] == wnode[0] and pnode[1] < wnode[1])
            ):
                self._fire_periodic(pnode)
                return True
            if wnode is None:
                return False
            if found is None:
                # Beyond the wheel horizon: hop the window to the event.
                clock.advance_to(wnode[0])
                self._cursor = int(wnode[0] * _INV_TICK)
                continue
            tick, bucket = found
            when, _seq, timer = heapq.heappop(bucket)
            clock.advance_to(when)
            self._cursor = tick
            self._fire_oneshot(timer, when)
            return True

    def _fire_periodic(self, node: tuple[float, int, Timer]) -> None:
        """Fire + re-arm the periodic head (non-hot path; loops inline it)."""
        pheap = self._pheap
        heapq.heappop(pheap)
        when = node[0]
        timer = node[2]
        self.clock.advance_to(when)
        self._cursor = int(when * _INV_TICK)
        self._events_processed += 1
        if self._events_processed > self._tally_after:
            self._tally_near_budget(timer.label)
        if self._observer is not None:
            self._observer.timer_fired(timer, when, self._pending - 1)
        timer.callback(*timer.args)
        nxt = when + timer.period  # type: ignore[attr-defined]
        timer.when = nxt
        heapq.heappush(pheap, (nxt, next(self._seq), timer))

    def _fire_oneshot(self, timer: Timer, when: float) -> None:
        """Fire one popped wheel timer (non-hot path; run_until inlines)."""
        timer._fired = True
        timer._bucket = None
        self._pending -= 1
        self._events_processed += 1
        if self._events_processed > self._tally_after:
            self._tally_near_budget(timer.label)
        if self._observer is not None:
            self._observer.timer_fired(timer, when, self._pending)
        timer.callback(*timer.args)

    def _tally_near_budget(self, label: str) -> None:
        """Count fires by label near the budget; raise a diagnosable error.

        The tally only starts within :data:`BUDGET_TALLY_WINDOW` events of
        the budget so normal runs never pay for it; a runaway loop is by
        definition still spinning in that window, so the top labels identify
        the culprit without a debugger.  The tally is a *trailing* window:
        once twice the window has been counted the counts are halved (an
        exponential decay that keeps persistent hot labels on top while
        letting stale ones fade), and at most :data:`TALLY_MAX_LABELS`
        distinct labels are tracked — the long tail folds into ``<other>``.
        """
        fires = self._label_fires
        count = fires.get(label)
        if count is None and len(fires) >= self.TALLY_MAX_LABELS:
            label = "<other>"
            count = fires.get(label)
        fires[label] = 1 if count is None else count + 1
        self._tally_total += 1
        if self._tally_total >= 2 * self.BUDGET_TALLY_WINDOW:
            self._label_fires = {k: v // 2 for k, v in fires.items() if v >= 2}
            self._tally_total = sum(self._label_fires.values())
        if self._events_processed > self._max_events:
            top = sorted(self._label_fires.items(), key=lambda kv: -kv[1])[:5]
            window = min(self.BUDGET_TALLY_WINDOW, self._max_events)
            hot = ", ".join(f"{label or '<unlabelled>'} x{count}" for label, count in top)
            raise RuntimeError(
                f"simulation exceeded event budget ({self._max_events} events); "
                f"runaway loop? hottest timers over the last {window} events: {hot}"
            )

    def _run_quiescent(self, deadline: float) -> bool:
        """Batch-step across an all-periodic interval.

        Fires every periodic callback due up to ``deadline`` in exact
        ``(when, seq)`` order with the clock advanced per fire — identical
        observable behaviour to the general loop, minus all wheel, merge,
        and allocation machinery.  Returns True when quiescence broke (a
        one-shot was scheduled, a blocker appeared, or the heap drained)
        and the general loop must resume; False when ``deadline`` was
        reached while still quiescent.

        Two loop invariants make the per-fire bookkeeping minimal:

        * ``_pending == _pending_periodic`` holds exactly when no live
          one-shot exists (both counters are exact under schedule, fire
          and cancel), so a single comparison re-proves quiescence after
          every callback — including net-zero tricks like a callback that
          cancels one periodic and schedules another.
        * The observer and tally threshold are hoisted into locals;
          anything that invalidates them (``set_observer``, the
          ``max_events`` setter, ``block_quiescence``) bumps ``_qepoch``,
          which is checked with the same comparison.

        The wheel cursor is not maintained per fire — quiescence means
        the wheel is empty — and is recomputed from the clock on every
        exit (including a propagating budget error) by the ``finally``.
        """
        pheap = self._pheap
        clock = self.clock
        pop = heapq.heappop
        replace = heapq.heapreplace
        seq = self._seq
        tally_after = self._tally_after
        observer = self._observer
        epoch = self._qepoch
        # _pending is invariant across periodic fires (re-arm in place);
        # only a callback's at/cancel/schedule_periodic can move it, so a
        # local compare detects any mutation.
        pending = self._pending
        try:
            while pheap:
                node = pheap[0]
                when = node[0]
                if when > deadline:
                    return False
                timer = node[2]
                if timer._cancelled:
                    pop(pheap)
                    continue
                clock._now = when  # heap order guarantees monotonicity
                self._events_processed = ep = self._events_processed + 1
                if ep > tally_after:
                    self._tally_near_budget(timer.label)
                if observer is not None:
                    observer.timer_fired(timer, when, pending - 1)
                # The node stays at pheap[0] during the callback (anything
                # the callback pushes carries a later seq, so it cannot
                # displace the head) and is swapped for the re-armed node
                # in a single sift.  Plain calls skip the slow *-unpacking
                # path for the no-arg callbacks that dominate keep-alives.
                args = timer.args
                if args:
                    timer.callback(*args)
                else:
                    timer.callback()
                nxt = when + timer.period  # type: ignore[attr-defined]
                timer.when = nxt
                if timer._cancelled and (not pheap or pheap[0] is not node):
                    # Self-cancel from inside the callback tail-popped the
                    # head (the heap held only this node): push the ghost
                    # re-arm instead of replacing — the general path also
                    # re-arms a self-cancelled periodic as a ghost, so the
                    # seq stream and heap contents stay identical.
                    heapq.heappush(pheap, (nxt, next(seq), timer))
                else:
                    replace(pheap, (nxt, next(seq), timer))
                if self._pending != pending or self._qepoch != epoch:
                    # The callback scheduled or cancelled something, or a
                    # blocker / observer / budget change invalidated the
                    # hoisted locals: fall back to the general loop, which
                    # re-evaluates quiescence per event.
                    return True
            return True  # heap drained (everything cancelled)
        finally:
            self._cursor = int(clock._now * _INV_TICK)

    def run_until(self, deadline: float) -> None:
        """Process events until the clock reaches ``deadline``.

        Events scheduled exactly at ``deadline`` are executed; the clock
        never moves past ``deadline`` even if later events are pending.

        This is the simulator's hot loop: the due bucket is processed in a
        fused inner loop (pop, advance, fire) with the periodic heap merged
        in by exact ``(when, seq)`` order, and all lookups hoisted.
        ``self._observer`` and ``_tally_after`` are deliberately re-read
        after each callback so a callback installing a profiler or
        tightening ``max_events`` mid-run takes effect immediately.
        """
        clock = self.clock
        pop = heapq.heappop
        push = heapq.heappush
        pheap = self._pheap
        seq = self._seq
        free = self._free
        getref = _getrefcount
        recycle_refs = _RECYCLE_REFS
        while True:
            if (
                self._pending_periodic
                and self._pending == self._pending_periodic
                and not self._quiesce_blockers
                and self.quiescence_enabled
            ):
                if not self._run_quiescent(deadline):
                    break
                continue
            found = self._next_wheel_bucket()
            if found is None:
                # No live one-shot inside the wheel window.
                pnode = self._prune_periodic()
                overflow = self._overflow
                onode = overflow[0] if overflow else None
                if pnode is not None and (
                    onode is None
                    or pnode[0] < onode[0]
                    or (pnode[0] == onode[0] and pnode[1] < onode[1])
                ):
                    if pnode[0] > deadline:
                        break
                    self._fire_periodic(pnode)
                    continue
                if onode is None or onode[0] > deadline:
                    break
                # Batch-step the window toward the far-future event; the
                # next iteration migrates it into the wheel and fires it.
                clock.advance_to(onode[0])
                self._cursor = int(onode[0] * _INV_TICK)
                continue
            wtick, bucket = found
            tally_after = self._tally_after
            deadline_hit = False
            while bucket:
                node = bucket[0]
                when = node[0]
                if pheap:
                    pnode = pheap[0]
                    if pnode[0] < when or (pnode[0] == when and pnode[1] < node[1]):
                        ptimer = pnode[2]
                        if ptimer._cancelled:
                            pop(pheap)
                            continue
                        pwhen = pnode[0]
                        if pwhen > deadline:
                            deadline_hit = True
                            break
                        pop(pheap)
                        clock._now = pwhen
                        self._cursor = int(pwhen * _INV_TICK)
                        self._events_processed += 1
                        if self._events_processed > tally_after:
                            self._tally_near_budget(ptimer.label)
                        observer = self._observer
                        if observer is not None:
                            observer.timer_fired(ptimer, pwhen, self._pending - 1)
                        ptimer.callback(*ptimer.args)
                        nxt = pwhen + ptimer.period  # type: ignore[attr-defined]
                        ptimer.when = nxt
                        push(pheap, (nxt, next(seq), ptimer))
                        tally_after = self._tally_after
                        if self._cursor != wtick:
                            # The periodic fired in an earlier tick; its
                            # callback may have scheduled into a bucket
                            # before this one — rescan the wheel.
                            break
                        continue
                if when > deadline:
                    deadline_hit = True
                    break
                pop(bucket)
                timer = node[2]
                if timer._cancelled:
                    continue
                clock._now = when  # bucket order guarantees monotonicity
                self._cursor = wtick
                timer._fired = True
                timer._bucket = None
                self._pending -= 1
                self._events_processed += 1
                if self._events_processed > tally_after:
                    self._tally_near_budget(timer.label)
                observer = self._observer
                if observer is not None:
                    observer.timer_fired(timer, when, self._pending)
                timer.callback(*timer.args)
                tally_after = self._tally_after
                if (
                    getref is not None
                    and len(free) < _FREELIST_MAX
                    and getref(timer) == recycle_refs
                ):
                    # Nothing outside this loop holds the handle: recycle.
                    timer.callback = None  # type: ignore[assignment]
                    timer.args = ()
                    timer._sim = None
                    free.append(timer)
            if deadline_hit:
                break
        if deadline > clock._now:
            clock.advance_to(deadline)
            self._cursor = int(deadline * _INV_TICK)

    def run(self, for_duration: float | None = None) -> None:
        """Run for ``for_duration`` seconds, or drain the queue when None."""
        if for_duration is not None:
            self.run_until(self.clock._now + for_duration)
            return
        while self.step():
            pass
