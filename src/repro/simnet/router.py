"""The home WiFi router: the LAN's default gateway and WAN uplink.

The router is itself a :class:`~repro.simnet.host.Host`, which matters for
the attack: its ARP cache is just as poisonable as a device's, so the
attacker can interpose on *both* directions of a device-to-cloud flow by
spoofing the device towards the router and the router towards the device.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .host import Host, same_subnet
from .inet import Internet
from .link import Lan
from .packet import EthernetFrame, IpPacket

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator


class Router(Host):
    """Forwards between the home LAN and the WAN in both directions."""

    def __init__(
        self,
        sim: "Simulator",
        lan: Lan,
        internet: Internet,
        lan_ip: str = "192.168.1.1",
        hostname: str = "router",
    ) -> None:
        super().__init__(sim, lan, ip=lan_ip, hostname=hostname, gateway_ip=None)
        self.internet = internet
        self._lan_prefix = ".".join(lan_ip.split(".")[:3]) + "."
        internet.attach_subnet(self._lan_prefix, self._on_wan_packet)
        self.lan_to_wan_packets = 0
        self.wan_to_lan_packets = 0

    # LAN hosts address frames for off-subnet traffic to our MAC; the base
    # class funnels those here because the inner dst IP is not ours.
    def _handle_foreign_ip(self, packet: IpPacket, frame: EthernetFrame) -> None:
        if same_subnet(packet.dst_ip, self.ip):
            # Hairpin: LAN host to LAN host via the gateway (rare, but the
            # hijacker relies on the router faithfully forwarding whatever
            # reaches it).
            self._send_via(packet.dst_ip, packet)
            return
        self.lan_to_wan_packets += 1
        self.internet.send(packet)

    def _on_wan_packet(self, packet: IpPacket) -> None:
        """A cloud server sent a packet to a host on our LAN."""
        if packet.dst_ip == self.ip:
            if self.ip_handler is not None:
                self.ip_handler(packet)
            return
        self.wan_to_lan_packets += 1
        self._send_via(packet.dst_ip, packet)
