"""LAN host with a minimal IP stack: ARP, send queue, and demux hooks.

A :class:`Host` is the chassis shared by IoT devices, hubs, the home router,
and the attacker's machine.  It resolves next hops via ARP (queueing packets
while resolution is outstanding), answers ARP requests for its own address,
and hands inbound IP packets to whatever transport stack is bound on top
(see :mod:`repro.tcp`).

Two hooks exist specifically for the attacker:

* ``frame_taps`` observe every frame the NIC sees — with a promiscuous NIC
  this is the sniffer's feed; and
* ``foreign_ip_handler`` receives IP packets that arrived at our MAC but are
  addressed to someone else's IP — exactly what ARP spoofing produces, and
  where the TCP hijacker plugs in.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from .arp import ArpCache
from .link import Lan
from .packet import BROADCAST_MAC, ArpPacket, EthernetFrame, IpPacket

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator


def same_subnet(ip_a: str, ip_b: str, prefix_octets: int = 3) -> bool:
    """True when both addresses share the first ``prefix_octets`` octets.

    The home network is a /24, so the default of three octets matches.
    """
    return ip_a.split(".")[:prefix_octets] == ip_b.split(".")[:prefix_octets]


class Host:
    """A device on the home LAN with one NIC and a tiny IP stack."""

    def __init__(
        self,
        sim: "Simulator",
        lan: Lan,
        ip: str,
        hostname: str,
        gateway_ip: str | None = None,
        promiscuous: bool = False,
    ) -> None:
        self.sim = sim
        self.lan = lan
        self.ip = ip
        self.hostname = hostname
        self.gateway_ip = gateway_ip
        self.nic = lan.attach(self._on_frame, promiscuous=promiscuous)
        self.arp = ArpCache(sim)
        # Lazily-created obs counters; stay None while observability is off
        # so the per-frame cost is one attribute load and a branch.
        self._rx_counter = None
        self._tx_counter = None
        self.frame_taps: list[Callable[[EthernetFrame], None]] = []
        self.ip_handler: Callable[[IpPacket], None] | None = None
        self.foreign_ip_handler: Callable[[IpPacket, EthernetFrame], None] | None = None
        self._arp_wait_queue: dict[str, list[IpPacket]] = {}

    @property
    def mac(self) -> str:
        return self.nic.mac

    # ------------------------------------------------------------------ send

    def send_ip(self, packet: IpPacket) -> None:
        """Route ``packet``: direct on-link, or via the gateway."""
        if self.sim.obs.enabled:
            if self._tx_counter is None:
                self._tx_counter = self.sim.obs.registry.counter(
                    "host", "packets_sent", host=self.hostname
                )
            self._tx_counter.inc()
        if same_subnet(packet.dst_ip, self.ip):
            next_hop = packet.dst_ip
        else:
            if self.gateway_ip is None:
                raise RuntimeError(f"{self.hostname}: no gateway for {packet.dst_ip}")
            next_hop = self.gateway_ip
        self._send_via(next_hop, packet)

    def _send_via(self, next_hop_ip: str, packet: IpPacket) -> None:
        mac = self.arp.lookup(next_hop_ip)
        if mac is not None:
            self.nic.send(EthernetFrame(self.mac, mac, packet))
            return
        self._arp_wait_queue.setdefault(next_hop_ip, []).append(packet)
        if not self.arp.is_outstanding(next_hop_ip):
            self.arp.mark_requested(next_hop_ip)
            self._send_arp_request(next_hop_ip)

    def _send_arp_request(self, target_ip: str) -> None:
        request = ArpPacket(
            op="request",
            sender_mac=self.mac,
            sender_ip=self.ip,
            target_mac=BROADCAST_MAC,
            target_ip=target_ip,
        )
        self.nic.send(EthernetFrame(self.mac, BROADCAST_MAC, request))

    def send_arp_reply(self, claimed_ip: str, to_mac: str, to_ip: str) -> None:
        """Emit an ARP reply binding ``claimed_ip`` to our MAC.

        For a normal host ``claimed_ip`` is its own address.  The attacker
        calls this with the *gateway's* or the *victim's* address — that is
        ARP spoofing, verbatim.
        """
        reply = ArpPacket(
            op="reply",
            sender_mac=self.mac,
            sender_ip=claimed_ip,
            target_mac=to_mac,
            target_ip=to_ip,
        )
        self.nic.send(EthernetFrame(self.mac, to_mac, reply))

    # --------------------------------------------------------------- receive

    def _on_frame(self, frame: EthernetFrame) -> None:
        if self.sim.obs.enabled:
            if self._rx_counter is None:
                self._rx_counter = self.sim.obs.registry.counter(
                    "host", "frames_received", host=self.hostname
                )
            self._rx_counter.inc()
        for tap in list(self.frame_taps):
            tap(frame)
        addressed_to_us = frame.dst_mac in (self.mac, BROADCAST_MAC)
        if isinstance(frame.payload, ArpPacket):
            if addressed_to_us:
                self._on_arp(frame.payload)
        elif isinstance(frame.payload, IpPacket):
            if frame.dst_mac == self.mac:
                self._on_ip(frame.payload, frame)

    def _on_arp(self, arp: ArpPacket) -> None:
        if arp.op == "request":
            if arp.target_ip == self.ip:
                # Learn the requester (solicited in spirit: we are about to
                # reply to it) and answer with our own binding.
                self.arp.learn(arp.sender_ip, arp.sender_mac, solicited=True)
                self.send_arp_reply(self.ip, to_mac=arp.sender_mac, to_ip=arp.sender_ip)
            return
        solicited = self.arp.is_outstanding(arp.sender_ip)
        if self.arp.learn(arp.sender_ip, arp.sender_mac, solicited=solicited):
            self.arp.clear_outstanding(arp.sender_ip)
            self._flush_arp_queue(arp.sender_ip)

    def _flush_arp_queue(self, next_hop_ip: str) -> None:
        mac = self.arp.lookup(next_hop_ip)
        if mac is None:
            return
        for packet in self._arp_wait_queue.pop(next_hop_ip, []):
            self.nic.send(EthernetFrame(self.mac, mac, packet))

    def _on_ip(self, packet: IpPacket, frame: EthernetFrame) -> None:
        if packet.dst_ip == self.ip:
            if self.ip_handler is not None:
                self.ip_handler(packet)
            return
        self._handle_foreign_ip(packet, frame)

    def _handle_foreign_ip(self, packet: IpPacket, frame: EthernetFrame) -> None:
        """IP packet for another host landed on our MAC.

        A well-behaved host drops it.  The attacker installs a
        ``foreign_ip_handler`` to capture hijacked traffic; the router
        overrides ``_handle_foreign_ip`` to forward.
        """
        if self.foreign_ip_handler is not None:
            self.foreign_ip_handler(packet, frame)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Host({self.hostname} ip={self.ip} mac={self.mac})"
