"""Layer-2 media: NICs and the WiFi-like broadcast LAN.

The home LAN is modelled as a single broadcast domain with per-hop latency.
Two properties of real WiFi matter for the paper and are preserved:

* every frame is observable by a promiscuous NIC (the attacker's sniffing
  step needs only metadata of frames it overhears), and
* delivery is addressed by MAC, so poisoning an ARP cache redirects IP
  traffic at layer 2 without any cooperation from the victim.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from .packet import BROADCAST_MAC, EthernetFrame, MacPool

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector
    from .scheduler import Simulator

FrameHandler = Callable[[EthernetFrame], None]

#: Default one-hop LAN latency in seconds (a quiet home WiFi network).
DEFAULT_LAN_LATENCY = 0.002


@dataclass
class Nic:
    """A network interface attached to one :class:`Lan`."""

    mac: str
    handler: FrameHandler
    promiscuous: bool = False
    lan: "Lan | None" = field(default=None, repr=False)

    def send(self, frame: EthernetFrame) -> None:
        if self.lan is None:
            raise RuntimeError(f"NIC {self.mac} is not attached to a LAN")
        self.lan.transmit(frame, sender=self)


class Lan:
    """A broadcast domain with uniform per-frame latency.

    ``transmit`` schedules delivery to the addressed NIC (or all NICs for
    broadcast) and, regardless of addressing, to every promiscuous NIC —
    which is how the attacker's sniffer sees traffic it is not a party to.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str = "home-lan",
        latency: float = DEFAULT_LAN_LATENCY,
        jitter: float = 0.0,
        mac_pool: MacPool | None = None,
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.sim = sim
        self.name = name
        self.latency = latency
        #: Extra uniform random delay per frame (deterministic via the
        #: simulator's seeded RNG) — contention on a busy WiFi channel.
        self.jitter = jitter
        self._macs = mac_pool or MacPool()
        self._nics: dict[str, Nic] = {}
        self.frames_transmitted = 0
        self.bytes_transmitted = 0
        #: Optional impairment hook (see :mod:`repro.faults.injector`).
        self.fault_injector: "FaultInjector | None" = None
        #: Per-transmission sequence numbers: every scheduled delivery knows
        #: its place in transmit order, so reordering is *observable* rather
        #: than an accident of callback ordering.
        self._frame_seq = itertools.count()
        self._last_delivered_seq = -1
        self.frames_delivered = 0
        self.frames_dropped = 0
        #: Deliveries whose transmit-order sequence ran backwards — the
        #: ground truth the reordering impairment and its tests check.
        self.frames_out_of_order = 0

    def attach(self, handler: FrameHandler, promiscuous: bool = False) -> Nic:
        """Create a NIC on this LAN delivering inbound frames to ``handler``."""
        nic = Nic(mac=self._macs.allocate(), handler=handler, promiscuous=promiscuous)
        nic.lan = self
        self._nics[nic.mac] = nic
        return nic

    def detach(self, nic: Nic) -> None:
        self._nics.pop(nic.mac, None)
        nic.lan = None

    def nic_by_mac(self, mac: str) -> Nic | None:
        return self._nics.get(mac)

    def transmit(self, frame: EthernetFrame, sender: Nic) -> None:
        """Queue ``frame`` for delivery after one LAN latency.

        Each delivery is a scheduled event stamped with a per-frame
        sequence number; the fault injector (when attached) may reshape
        the plan into zero, one, or several deliveries.
        """
        self.frames_transmitted += 1
        self.bytes_transmitted += frame.byte_size()
        delay = self.latency
        if self.jitter > 0:
            delay += self.sim.rng.uniform(0.0, self.jitter)
        injector = self.fault_injector
        if injector is None:
            deliveries = ((delay, frame),)
        else:
            deliveries = injector.plan(frame, delay)
            if not deliveries:
                self.frames_dropped += 1
                return
        for when, copy in deliveries:
            self.sim.schedule(
                when,
                self._deliver,
                copy,
                sender.mac,
                next(self._frame_seq),
                label=f"lan:{self.name}",
            )

    def _deliver(self, frame: EthernetFrame, sender_mac: str, seq: int) -> None:
        self.frames_delivered += 1
        if seq < self._last_delivered_seq:
            self.frames_out_of_order += 1
        else:
            self._last_delivered_seq = seq
        # Recipients resolve at arrival time and are walked in MAC order —
        # a total order independent of attach history, so promiscuous
        # capture and reordering faults see one consistent sequence.
        delivered_to: set[str] = set()
        if frame.dst_mac == BROADCAST_MAC:
            for mac, nic in sorted(self._nics.items()):
                if mac != sender_mac:
                    delivered_to.add(mac)
                    nic.handler(frame)
        else:
            nic = self._nics.get(frame.dst_mac)
            if nic is not None:
                delivered_to.add(nic.mac)
                nic.handler(frame)
        # Promiscuous NICs overhear everything on the air, including frames
        # they already received as the addressee (delivered once only).
        for mac, nic in sorted(self._nics.items()):
            if nic.promiscuous and mac != sender_mac and mac not in delivered_to:
                nic.handler(frame)
