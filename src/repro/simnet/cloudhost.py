"""A host on the public Internet (cloud server chassis).

Cloud IoT servers do not sit on the home LAN; they are reachable only
through the WAN.  :class:`CloudHost` provides the same minimal surface as
:class:`~repro.simnet.host.Host` that the TCP stack needs — ``ip``,
``send_ip`` and an ``ip_handler`` — without any layer-2 machinery, since the
paper's attacker never touches the WAN side.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from .inet import Internet
from .packet import EthernetFrame, IpPacket

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator


class CloudHost:
    """A public-IP host attached directly to the simulated Internet."""

    def __init__(
        self,
        sim: "Simulator",
        internet: Internet,
        ip: str,
        hostname: str,
        domain: str | None = None,
    ) -> None:
        self.sim = sim
        self.internet = internet
        self.ip = ip
        self.hostname = hostname
        self.domain = domain
        self.ip_handler: Callable[[IpPacket], None] | None = None
        self.frame_taps: list[Callable[[EthernetFrame], None]] = []
        internet.attach(ip, self._on_packet)
        if domain is not None:
            internet.dns.register(domain, ip)

    def send_ip(self, packet: IpPacket) -> None:
        self.internet.send(packet)

    def _on_packet(self, packet: IpPacket) -> None:
        if self.ip_handler is not None:
            self.ip_handler(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CloudHost({self.hostname} ip={self.ip} domain={self.domain})"
