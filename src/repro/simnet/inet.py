"""The wide-area network between the home router and cloud IoT servers.

The WAN is deliberately simple: a latency pipe addressed by public IP, plus a
DNS registry.  Nothing in the paper's attack happens on the WAN — the
attacker sits inside the home LAN — but the *domain names* of cloud endpoints
matter: the evaluation localises a device's target TCP connection by the
server's domain (e.g. ``*.prd.ring.solution``), so the registry keeps the
reverse mapping available to the sniffer.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from .packet import IpPacket

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator

IpHandler = Callable[[IpPacket], None]

#: Default home-to-cloud one-way latency in seconds.
DEFAULT_WAN_LATENCY = 0.020


class DnsRegistry:
    """Forward and reverse name resolution for simulated cloud services."""

    def __init__(self) -> None:
        self._forward: dict[str, str] = {}
        self._reverse: dict[str, str] = {}

    def register(self, domain: str, ip: str) -> None:
        if domain in self._forward and self._forward[domain] != ip:
            raise ValueError(f"domain {domain!r} already bound to {self._forward[domain]}")
        self._forward[domain] = ip
        self._reverse[ip] = domain

    def resolve(self, domain: str) -> str:
        try:
            return self._forward[domain]
        except KeyError:
            raise LookupError(f"unknown domain: {domain!r}") from None

    def reverse(self, ip: str) -> str | None:
        """Best-effort reverse lookup, as a sniffer would do on observed IPs."""
        return self._reverse.get(ip)

    def domains(self) -> list[str]:
        return sorted(self._forward)


class Internet:
    """Latency pipe delivering IP packets between registered public hosts."""

    def __init__(self, sim: "Simulator", latency: float = DEFAULT_WAN_LATENCY) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.latency = latency
        self.dns = DnsRegistry()
        self._hosts: dict[str, IpHandler] = {}
        self._subnets: dict[str, IpHandler] = {}
        self.packets_carried = 0

    def attach(self, ip: str, handler: IpHandler) -> None:
        if ip in self._hosts:
            raise ValueError(f"public IP already in use: {ip}")
        self._hosts[ip] = handler

    def attach_subnet(self, prefix: str, handler: IpHandler) -> None:
        """Route a whole prefix (e.g. ``192.168.1.``) to one handler.

        This is how a home router advertises its LAN: cloud-to-device packets
        are handed to the router, which completes delivery over the LAN.
        """
        if not prefix.endswith("."):
            raise ValueError(f"subnet prefix must end with '.': {prefix!r}")
        if prefix in self._subnets:
            raise ValueError(f"subnet already routed: {prefix}")
        self._subnets[prefix] = handler

    def detach(self, ip: str) -> None:
        self._hosts.pop(ip, None)

    def send(self, packet: IpPacket) -> None:
        """Carry ``packet`` to its destination after one WAN latency.

        Packets to unknown destinations are dropped silently, as on the real
        Internet.
        """
        handler = self._hosts.get(packet.dst_ip)
        if handler is None:
            for prefix, subnet_handler in self._subnets.items():
                if packet.dst_ip.startswith(prefix):
                    handler = subnet_handler
                    break
        if handler is None:
            return
        self.packets_carried += 1
        self.sim.schedule(self.latency, handler, packet, label="wan")
