"""ARP resolution and the cache that ARP spoofing poisons.

The paper's attacker hijacks TCP sessions with classic ARP spoofing
(Section III-B): unsolicited ARP replies re-bind the victim's IP-to-MAC
mappings so that frames for the gateway (or for the device) are delivered to
the attacker's NIC instead.  The cache below accepts unsolicited replies by
default — matching the large-scale finding the paper cites that IoT devices
are widely vulnerable — and can be switched to ``static`` mode to model the
defence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator

#: How long a learned mapping stays valid; the attacker must re-poison within
#: this window to keep the hijack alive.
DEFAULT_ARP_TTL = 120.0


@dataclass
class ArpEntry:
    mac: str
    learned_at: float
    static: bool = False


class ArpCache:
    """Per-host IP → MAC cache with TTL expiry.

    ``accept_unsolicited`` is the knob that makes spoofing work: when True
    (the common, vulnerable behaviour) any ARP reply overwrites the mapping;
    when False only replies answering an outstanding request are accepted.
    """

    def __init__(
        self,
        sim: "Simulator",
        ttl: float = DEFAULT_ARP_TTL,
        accept_unsolicited: bool = True,
    ) -> None:
        self.sim = sim
        self.ttl = ttl
        self.accept_unsolicited = accept_unsolicited
        self._entries: dict[str, ArpEntry] = {}
        self._outstanding: set[str] = set()

    def lookup(self, ip: str) -> str | None:
        entry = self._entries.get(ip)
        if entry is None:
            return None
        if not entry.static and self.sim.now - entry.learned_at > self.ttl:
            del self._entries[ip]
            return None
        return entry.mac

    def learn(self, ip: str, mac: str, solicited: bool) -> bool:
        """Record a mapping; returns True if the cache changed.

        Static entries are never overwritten — that is the countermeasure.
        Unsolicited learning is rejected when ``accept_unsolicited`` is off.
        """
        existing = self._entries.get(ip)
        if existing is not None and existing.static:
            return False
        if not solicited and not self.accept_unsolicited:
            return False
        self._entries[ip] = ArpEntry(mac=mac, learned_at=self.sim.now)
        return True

    def set_static(self, ip: str, mac: str) -> None:
        self._entries[ip] = ArpEntry(mac=mac, learned_at=self.sim.now, static=True)

    def mark_requested(self, ip: str) -> None:
        self._outstanding.add(ip)

    def is_outstanding(self, ip: str) -> bool:
        return ip in self._outstanding

    def clear_outstanding(self, ip: str) -> None:
        self._outstanding.discard(ip)

    def snapshot(self) -> dict[str, str]:
        """Current live mappings (for assertions and attack diagnostics)."""
        live: dict[str, str] = {}
        for ip in list(self._entries):
            mac = self.lookup(ip)  # may evict the entry if expired
            if mac is not None:
                live[ip] = mac
        return live
