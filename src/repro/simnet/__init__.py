"""Discrete-event network substrate: clock, LAN, ARP, WAN, capture."""

from .arp import ArpCache, ArpEntry, DEFAULT_ARP_TTL
from .clock import Clock
from .cloudhost import CloudHost
from .host import Host, same_subnet
from .inet import DnsRegistry, Internet, DEFAULT_WAN_LATENCY
from .link import Lan, Nic, DEFAULT_LAN_LATENCY
from .packet import (
    ArpPacket,
    BROADCAST_MAC,
    EthernetFrame,
    IpPacket,
    MacPool,
)
from .router import Router
from .scheduler import Simulator, Timer
from .trace import CapturedFrame, FlowKey, PacketCapture, PacketMeta

__all__ = [
    "ArpCache",
    "ArpEntry",
    "ArpPacket",
    "BROADCAST_MAC",
    "CapturedFrame",
    "Clock",
    "CloudHost",
    "DEFAULT_ARP_TTL",
    "DEFAULT_LAN_LATENCY",
    "DEFAULT_WAN_LATENCY",
    "DnsRegistry",
    "EthernetFrame",
    "FlowKey",
    "Host",
    "Internet",
    "IpPacket",
    "Lan",
    "MacPool",
    "Nic",
    "PacketCapture",
    "PacketMeta",
    "Router",
    "Simulator",
    "Timer",
    "same_subnet",
]
