"""Cache-key derivation: canonical serialisation and the code fingerprint.

A shard is a pure function of ``(fn, kwargs, seed, faults)`` *and of the
simulator's source code*, so a cache key must cover all five.  The first
four are canonicalised into a byte string (stable across processes,
platforms, and dict orderings) and the fifth is a BLAKE2b digest of the
whole ``src/repro`` tree — any code change, however small, invalidates
every entry cleanly rather than serving results a different simulator
produced.

Two digests are derived per shard:

* the **logical** digest over ``(fn, kwargs, seed)`` names the entry file,
  so a code change *overwrites* the stale entry instead of stranding it;
* the **fingerprint** travels in the entry's provenance and is compared on
  lookup — a mismatch is reported as *stale*, not as a miss, so the
  metrics distinguish "never ran" from "ran under older code".
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Callable

#: Bump when the canonicalisation or entry format changes incompatibly:
#: it participates in every digest, so old entries simply stop matching.
KEY_SCHEMA = 1

#: Pickle protocol pinned for the fallback canonicalisation and payloads —
#: the default protocol varies across Python versions, digests must not.
PICKLE_PROTOCOL = 4

_fingerprint_cache: dict[Path, str] = {}


def qualified_name(fn: Callable[..., Any]) -> str:
    """The import path a worker (or ``cache verify``) resolves ``fn`` by."""
    return f"{fn.__module__}.{fn.__qualname__}"


def canonical(obj: Any) -> bytes:
    """Deterministic byte serialisation of a shard's kwargs.

    JSON-able values serialise structurally (dicts sorted by key, floats
    by ``repr`` so ``0.1`` never re-rounds); dataclasses serialise as
    their qualified class name plus field mapping, so two equal
    :class:`~repro.faults.profiles.FaultProfile`\\ s — however they were
    built — produce the same key.  Anything else falls back to the digest
    of its pinned-protocol pickle, which is stable for the scenario and
    catalogue objects that ride in shard kwargs.
    """
    out: list[bytes] = []
    _canonical_into(obj, out)
    return b"".join(out)


def _canonical_into(obj: Any, out: list[bytes]) -> None:
    if obj is None or isinstance(obj, bool):
        out.append(repr(obj).encode())
    elif isinstance(obj, int):
        out.append(b"i%d" % obj)
    elif isinstance(obj, float):
        out.append(b"f" + repr(obj).encode())
    elif isinstance(obj, str):
        out.append(b"s" + obj.encode("utf-8") + b"\x00")
    elif isinstance(obj, bytes):
        out.append(b"b" + obj + b"\x00")
    elif isinstance(obj, (list, tuple)):
        out.append(b"[")
        for item in obj:
            _canonical_into(item, out)
            out.append(b",")
        out.append(b"]")
    elif isinstance(obj, dict):
        out.append(b"{")
        for key in sorted(obj, key=str):
            _canonical_into(str(key), out)
            out.append(b":")
            _canonical_into(obj[key], out)
            out.append(b",")
        out.append(b"}")
    elif is_dataclass(obj) and not isinstance(obj, type):
        out.append(b"d" + qualified_name(type(obj)).encode() + b"(")
        for f in fields(obj):
            _canonical_into(f.name, out)
            out.append(b"=")
            _canonical_into(getattr(obj, f.name), out)
            out.append(b",")
        out.append(b")")
    else:
        blob = pickle.dumps(obj, protocol=PICKLE_PROTOCOL)
        out.append(b"p" + hashlib.blake2b(blob, digest_size=16).digest())


def digest(*parts: bytes) -> str:
    """BLAKE2b-128 hex digest over length-prefixed parts (no ambiguity)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(b"repro-cache/%d" % KEY_SCHEMA)
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.hexdigest()


def code_fingerprint(package_root: Path | None = None) -> str:
    """Digest of every ``.py`` file under ``src/repro`` (path + contents).

    Computed once per process per root — the tree is small (~70 files) but
    campaigns consult the cache per shard.  Any byte of source drift gives
    a new fingerprint, which marks every existing entry stale.
    """
    root = (package_root or Path(__file__).resolve().parent.parent).resolve()
    cached = _fingerprint_cache.get(root)
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=16)
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x01")
    fingerprint = h.hexdigest()
    _fingerprint_cache[root] = fingerprint
    return fingerprint
