"""Content-addressed campaign cache: re-run nothing the code already ran.

Public surface:

* :class:`CampaignCache` — the disk store: ``key_for`` / ``get`` / ``put``
  plus the ``stats`` / ``verify`` / ``gc`` maintenance surface behind
  ``phantom-delay cache``;
* :func:`resolve_cache` — normalises the ``cache=`` argument every
  experiment driver accepts (``True`` → default store, ``False``/``None``
  → off, instance → itself);
* :func:`code_fingerprint` / :func:`canonical` / :func:`digest` — the key
  derivation, pinned by golden digests in ``tests/test_cache.py``.

See ``docs/API.md`` for the keying rules and invalidation model.
"""

from .keys import KEY_SCHEMA, canonical, code_fingerprint, digest, qualified_name
from .store import (
    CACHE_DIR_ENV,
    CacheKey,
    CacheLookup,
    CampaignCache,
    VerifyOutcome,
    default_cache_dir,
    load_function,
    resolve_cache,
)

__all__ = [
    "CACHE_DIR_ENV",
    "KEY_SCHEMA",
    "CacheKey",
    "CacheLookup",
    "CampaignCache",
    "VerifyOutcome",
    "canonical",
    "code_fingerprint",
    "default_cache_dir",
    "digest",
    "load_function",
    "qualified_name",
    "resolve_cache",
]
