"""Disk-backed, content-addressed result cache for campaign shards.

Every campaign shard is a pure function of ``(fn, kwargs, seed)`` under a
given source tree, so its result can be reused for free: a warm
``phantom-delay all`` should cost file reads, not thousands of simulated
hours.  :class:`CampaignCache` stores one JSONL file per shard under
``~/.cache/repro-phantom-delay/`` (override with ``REPRO_CACHE_DIR``):

* line 1 — plain-JSON provenance: key digests, code fingerprint, repro
  version, wall seconds of the original run, creation timestamp, and a
  digest of the result payload (what ``cache verify`` re-checks);
* line 2 — the payload: the pickled result plus the pickled ``(fn,
  kwargs)`` call, base64-wrapped so the file stays line-oriented.

Robustness rules: entries are written atomically (temp file +
``os.replace``) so a crash can never leave a half-entry; a corrupted or
unreadable entry is a *miss*, never an exception; an entry written by a
different source tree is *stale* and is overwritten on the next put.
"""

from __future__ import annotations

import base64
import importlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from .keys import (
    KEY_SCHEMA,
    PICKLE_PROTOCOL,
    canonical,
    code_fingerprint,
    digest,
    qualified_name,
)

#: Environment override for the cache location (tests point it at a tmpdir).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-phantom-delay"


@dataclass(frozen=True)
class CacheKey:
    """Identity of one shard's cache entry."""

    fn: str
    shard_key: str
    seed: int | None
    logical: str  # digest of (fn, kwargs, seed) — names the entry file
    fingerprint: str  # digest of the src/repro tree the result must match


@dataclass(frozen=True)
class CacheLookup:
    """Outcome of a :meth:`CampaignCache.get`."""

    status: str  # "hit" | "miss" | "stale"
    result: Any = None
    #: The shard's :class:`~repro.obs.telemetry.ShardTelemetry` as captured
    #: on the original run, so a warm campaign replays metrics
    #: byte-identically.  ``None`` for entries written before telemetry
    #: existed — the shard result still hits.
    telemetry: Any = None

    @property
    def hit(self) -> bool:
        return self.status == "hit"

    @property
    def stale(self) -> bool:
        return self.status == "stale"


@dataclass
class VerifyOutcome:
    """One re-executed entry from ``cache verify``."""

    logical: str
    fn: str
    shard_key: str
    ok: bool
    detail: str = ""


class CampaignCache:
    """Content-addressed store keyed by (fn, kwargs, seed, code fingerprint).

    One instance is cheap (the code fingerprint is computed once per
    process) and safe to share across runners; all methods tolerate
    concurrent writers because entries are immutable-once-replaced.
    """

    def __init__(self, root: str | Path | None = None,
                 fingerprint: str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()

    @property
    def shard_dir(self) -> Path:
        return self.root / "shards"

    # ---------------------------------------------------------------- keys

    def key_for(self, shard: Any, base_seed: int) -> CacheKey:
        """The cache identity of one :class:`~repro.parallel.Shard`.

        The seed is resolved exactly as the runner resolves it (explicit,
        else derived from ``(base_seed, shard.key)``; ``None`` when the
        shard takes no seed), and a ``faults`` kwarg is normalised through
        :func:`~repro.faults.profiles.resolve_profile` so a spec string
        and its equivalent profile share an entry.
        """
        from ..parallel.seeds import derive_seed

        seed: int | None = None
        if shard.pass_seed:
            seed = shard.seed if shard.seed is not None else derive_seed(
                base_seed, shard.key
            )
        kwargs = dict(shard.kwargs)
        if "faults" in kwargs and kwargs["faults"] is not None:
            from ..faults.profiles import resolve_profile

            kwargs["faults"] = resolve_profile(kwargs["faults"])
        fn = qualified_name(shard.fn)
        logical = digest(
            fn.encode(),
            canonical(kwargs),
            b"" if seed is None else b"%d" % seed,
        )
        return CacheKey(
            fn=fn,
            shard_key=shard.key,
            seed=seed,
            logical=logical,
            fingerprint=self.fingerprint,
        )

    def _path(self, logical: str) -> Path:
        return self.shard_dir / f"{logical}.jsonl"

    # -------------------------------------------------------------- lookup

    def get(self, key: CacheKey) -> CacheLookup:
        """Hit, miss, or stale — never raises on a damaged entry."""
        path = self._path(key.logical)
        try:
            with open(path) as fh:
                provenance = json.loads(fh.readline())
                payload = json.loads(fh.readline())
            if provenance.get("schema") != KEY_SCHEMA:
                return CacheLookup("miss")
            if provenance.get("logical") != key.logical:
                return CacheLookup("miss")
            if provenance.get("fingerprint") != key.fingerprint:
                return CacheLookup("stale")
            result = pickle.loads(base64.b64decode(payload["result"]))
        except FileNotFoundError:
            return CacheLookup("miss")
        except Exception:
            # Torn write, disk damage, an unpicklable edit: a cache must
            # degrade to a re-run, never take the campaign down.
            return CacheLookup("miss")
        telemetry = None
        telemetry_b64 = payload.get("telemetry")
        if telemetry_b64 is not None:
            try:
                telemetry = pickle.loads(base64.b64decode(telemetry_b64))
            except Exception:
                telemetry = None  # result is intact; telemetry degrades alone
        return CacheLookup("hit", result, telemetry=telemetry)

    def put(self, key: CacheKey, result: Any, wall_seconds: float,
            call: tuple[Callable[..., Any], dict[str, Any]] | None = None,
            telemetry: Any = None) -> None:
        """Store one shard result atomically; replaces any stale entry.

        ``telemetry`` is the shard's deterministic
        :class:`~repro.obs.telemetry.ShardTelemetry`; it rides in the
        payload so warm runs replay the captured metrics exactly.
        """
        from .. import __version__

        result_blob = pickle.dumps(result, protocol=PICKLE_PROTOCOL)
        payload: dict[str, Any] = {
            "result": base64.b64encode(result_blob).decode("ascii"),
        }
        if call is not None:
            call_blob = pickle.dumps(call, protocol=PICKLE_PROTOCOL)
            payload["call"] = base64.b64encode(call_blob).decode("ascii")
        if telemetry is not None:
            telemetry_blob = pickle.dumps(telemetry, protocol=PICKLE_PROTOCOL)
            payload["telemetry"] = base64.b64encode(telemetry_blob).decode("ascii")
        provenance = {
            "schema": KEY_SCHEMA,
            "logical": key.logical,
            "fn": key.fn,
            "shard_key": key.shard_key,
            "seed": key.seed,
            "fingerprint": key.fingerprint,
            "repro_version": __version__,
            "wall_seconds": round(wall_seconds, 6),
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "result_digest": digest(result_blob),
        }
        blob = json.dumps(provenance) + "\n" + json.dumps(payload) + "\n"
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.shard_dir, prefix=".put-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob)
            os.replace(tmp, self._path(key.logical))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ---------------------------------------------------------- maintenance

    def _iter_entries(self) -> Iterator[tuple[Path, dict[str, Any] | None]]:
        """Every entry file with its provenance (None when unparseable)."""
        if not self.shard_dir.is_dir():
            return
        for path in sorted(self.shard_dir.glob("*.jsonl")):
            try:
                with open(path) as fh:
                    provenance = json.loads(fh.readline())
                if not isinstance(provenance, dict):
                    provenance = None
            except Exception:
                provenance = None
            yield path, provenance

    def stats(self) -> dict[str, Any]:
        """On-disk accounting for ``phantom-delay cache stats``."""
        entries = fresh = stale = corrupt = 0
        total_bytes = 0
        saved_seconds = 0.0
        oldest: str | None = None
        newest: str | None = None
        for path, provenance in self._iter_entries():
            entries += 1
            total_bytes += path.stat().st_size
            if provenance is None:
                corrupt += 1
                continue
            if provenance.get("fingerprint") == self.fingerprint:
                fresh += 1
                saved_seconds += float(provenance.get("wall_seconds") or 0.0)
            else:
                stale += 1
            created = provenance.get("created_at")
            if created:
                oldest = created if oldest is None else min(oldest, created)
                newest = created if newest is None else max(newest, created)
        return {
            "root": str(self.root),
            "fingerprint": self.fingerprint,
            "entries": entries,
            "fresh": fresh,
            "stale": stale,
            "corrupt": corrupt,
            "bytes": total_bytes,
            "replayable_seconds": round(saved_seconds, 3),
            "oldest": oldest,
            "newest": newest,
        }

    def verify(self, sample: int = 3, seed: int = 0) -> list[VerifyOutcome]:
        """Re-run a seeded sample of fresh entries and diff the results.

        The entry's own pickled ``(fn, kwargs)`` call is replayed and the
        re-computed result digest compared against the stored one — a
        mismatch means either non-determinism or cache corruption, both of
        which must surface loudly.  Entries stored without a call payload
        (or from another source tree) are skipped.

        The sample is drawn with ``random.Random(seed)`` across *all*
        fresh entries (deterministic for a given seed and store content),
        not taken from the head of the directory listing — iteration order
        is sorted by digest, so "the first ``sample`` entries" would be
        the same few entries re-verified forever while the rest of the
        store never got checked.  Vary ``seed`` to walk the store.
        """
        import random

        candidates = [
            (path, provenance)
            for path, provenance in self._iter_entries()
            if provenance is not None
            and provenance.get("fingerprint") == self.fingerprint
        ]
        if 0 <= sample < len(candidates):
            candidates = random.Random(seed).sample(candidates, sample)
            candidates.sort(key=lambda item: item[0])  # stable output order
        outcomes: list[VerifyOutcome] = []
        for path, provenance in candidates:
            logical = provenance.get("logical", path.stem)
            try:
                with open(path) as fh:
                    fh.readline()
                    payload = json.loads(fh.readline())
                call_b64 = payload.get("call")
                if call_b64 is None:
                    continue
                fn, kwargs = pickle.loads(base64.b64decode(call_b64))
                rerun = fn(**kwargs)
                rerun_digest = digest(pickle.dumps(rerun, protocol=PICKLE_PROTOCOL))
                ok = rerun_digest == provenance.get("result_digest")
                detail = "" if ok else (
                    f"result drifted: {rerun_digest} != {provenance.get('result_digest')}"
                )
            except Exception as exc:  # damaged entry: report, don't crash
                ok, detail = False, f"replay failed: {exc!r}"
            outcomes.append(
                VerifyOutcome(
                    logical=logical,
                    fn=provenance.get("fn", "?"),
                    shard_key=provenance.get("shard_key", "?"),
                    ok=ok,
                    detail=detail,
                )
            )
        return outcomes

    def gc(self, everything: bool = False) -> tuple[int, int, int]:
        """Drop stale/corrupt entries (or all of them).

        Returns ``(removed, kept, failed)``.  ``failed`` counts entries
        whose ``unlink`` raised :class:`OSError`: they are still on disk
        but were *meant* to go, so folding them into "kept" (as this
        method once did) silently masked undeletable entries — callers
        must surface them, not re-report them as healthy.
        """
        removed = kept = failed = 0
        for path, provenance in self._iter_entries():
            drop = everything or provenance is None or (
                provenance.get("fingerprint") != self.fingerprint
            )
            if drop:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    failed += 1
            else:
                kept += 1
        return removed, kept, failed


def resolve_cache(cache: "CampaignCache | bool | None") -> CampaignCache | None:
    """Normalise the ``cache=`` argument accepted across the stack.

    ``True`` builds the default on-disk cache, ``False``/``None`` disables
    caching, and an existing :class:`CampaignCache` passes through — the
    same shape as :func:`~repro.faults.profiles.resolve_profile`.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return CampaignCache()
    return cache


def load_function(qualified: str) -> Callable[..., Any]:
    """Resolve a ``module.attr`` path back to the callable (for tooling)."""
    module_name, _, attr = qualified.rpartition(".")
    module = importlib.import_module(module_name)
    return getattr(module, attr)
