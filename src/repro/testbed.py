"""Ready-made smart-home testbed.

Mirrors the paper's evaluation setup (Section VI-A): a home WiFi router, a
set of IoT devices drawn from the 50-device catalogue (low-energy devices
attached through their hubs), vendor endpoint clouds, an integration server
holding the automation rules, optionally a HomeKit-style local server, and
a Raspberry-Pi-like attacker machine on the same LAN.

Typical use::

    tb = SmartHomeTestbed(seed=7)
    contact = tb.add_device("C1")       # Ring contact sensor (via its base)
    lock = tb.add_device("LK1")          # August lock (via August Connect)
    tb.settle()                          # let sessions establish
    contact.stimulate("open")
    tb.run(5)
"""

from __future__ import annotations

from typing import Any

from .alarms import AlarmLog
from .automation.rules import Rule
from .cloud.endpoint import EndpointServer
from .cloud.integration import IntegrationServer
from .cloud.local_server import LocalIoTServer
from .cloud.notifications import NotificationService
from .devices.base import CameraDevice, HubChildDevice, HubDevice, IoTDevice, WifiDevice
from .devices.profiles import CATALOGUE, Catalogue, DeviceProfile, TABLE_CLOUD, TABLE_LOCAL
from .faults.injector import FaultInjector
from .faults.invariants import InvariantSuite
from .faults.profiles import FaultProfile, resolve_profile
from .simnet.host import Host
from .simnet.inet import Internet
from .simnet.link import DEFAULT_LAN_LATENCY, Lan
from .simnet.router import Router
from .simnet.scheduler import Simulator
from .tls.session import KeyEscrow

#: Realistic-looking cloud domains (the paper localises Ring's connection by
#: its '.prd.ring.solution' domain suffix).
VENDOR_DOMAINS = {
    "ring": "fw.prd.ring.solution",
    "smartthings": "api.smartthings.example",
    "hue": "ws.meethue.example",
    "august": "connect.august.example",
    "aqara": "aiot.aqara.example",
    "tuya": "mq.tuya.example",
    "simplisafe": "api.simplisafe.example",
    "abode": "gateway.goabode.example",
    "kasa": "use1.tplink.example",
    "lifx": "v2.broker.lifx.example",
    "wemo": "api.xbcs.example",
    "amazon": "avs.amazon.example",
    "wyze": "wyze-mars.example",
    "ecobee": "home.ecobee.example",
    "onelink": "onelink.firstalert.example",
    "moen": "flo.moen.example",
}


class SmartHomeTestbed:
    """A complete simulated smart home plus its clouds."""

    def __init__(
        self,
        seed: int = 0,
        catalogue: Catalogue | None = None,
        integration_staleness: float | None = None,
        trigger_timestamp_window: float | None = None,
        close_stale_on_reconnect: bool = False,
        lan_latency: float | None = None,
        lan_jitter: float = 0.0,
        observe: bool = False,
        faults: "FaultProfile | str | None" = None,
        check_invariants: bool = False,
    ) -> None:
        self.sim = Simulator(seed=seed)
        if observe:
            # Before any component is built, so every layer sees obs enabled.
            self.sim.enable_observability()
        self.invariants: InvariantSuite | None = None
        if check_invariants:
            # Before any component is built, so every layer hook is live.
            self.invariants = InvariantSuite(self.sim).install()
        self.catalogue = catalogue or CATALOGUE
        self.lan = Lan(
            self.sim,
            latency=lan_latency if lan_latency is not None else DEFAULT_LAN_LATENCY,
            jitter=lan_jitter,
        )
        self.fault_injector: FaultInjector | None = None
        profile = resolve_profile(faults)
        #: The resolved profile (kept even when ideal, i.e. no injector):
        #: campaign caching keys on it, so it must be inspectable.
        self.fault_profile = profile
        if profile is not None and profile.impaired:
            self.fault_injector = FaultInjector(self.sim, profile, seed=seed).attach(
                self.lan
            )
        self.internet = Internet(self.sim)
        self.router = Router(self.sim, self.lan, self.internet)
        self.alarms = AlarmLog(self.sim)
        self.escrow = KeyEscrow()
        self.notifier = NotificationService(self.sim)
        self.integration = IntegrationServer(
            self.sim,
            name="integration",
            alarm_log=self.alarms,
            notifier=self.notifier,
            event_staleness_window=integration_staleness,
            trigger_timestamp_window=trigger_timestamp_window,
        )
        self._close_stale_on_reconnect = close_stale_on_reconnect
        self.endpoints: dict[str, EndpointServer] = {}
        self.local_server: LocalIoTServer | None = None
        self.devices: dict[str, IoTDevice] = {}
        self._next_device_ip = 10
        self._next_cloud_net = 1

    # ------------------------------------------------------------ plumbing

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def obs(self):
        """This home's observability facade (disabled unless ``observe=True``)."""
        return self.sim.obs

    def run(self, duration: float) -> None:
        self.sim.run(duration)

    def settle(self, duration: float = 5.0) -> None:
        """Let sessions establish and keep-alive schedules start."""
        self.sim.run(duration)

    def _allocate_lan_ip(self) -> str:
        ip = f"192.168.1.{self._next_device_ip}"
        self._next_device_ip += 1
        if self._next_device_ip > 250:
            raise RuntimeError("home subnet exhausted")
        return ip

    def _allocate_cloud_ip(self) -> str:
        ip = f"34.0.{self._next_cloud_net}.1"
        self._next_cloud_net += 1
        return ip

    # ------------------------------------------------------------- servers

    def endpoint(self, server_key: str) -> EndpointServer:
        """Get (creating on demand) the endpoint cloud of one vendor."""
        existing = self.endpoints.get(server_key)
        if existing is not None:
            return existing
        endpoint = EndpointServer(
            self.sim,
            self.internet,
            name=server_key,
            ip=self._allocate_cloud_ip(),
            domain=VENDOR_DOMAINS.get(server_key, f"{server_key}.iotcloud.example"),
            alarm_log=self.alarms,
            escrow=self.escrow,
            close_stale_on_reconnect=self._close_stale_on_reconnect,
        )
        self.endpoints[server_key] = endpoint
        self.integration.link_endpoint(endpoint)
        return endpoint

    def ensure_local_server(self) -> LocalIoTServer:
        if self.local_server is None:
            self.local_server = LocalIoTServer(
                self.sim,
                self.lan,
                alarm_log=self.alarms,
                escrow=self.escrow,
                notifier=self.notifier,
            )
        return self.local_server

    # ------------------------------------------------------------- devices

    def add_device(self, label: str, table: int = TABLE_CLOUD, device_id: str | None = None) -> IoTDevice:
        """Instantiate (and start) a catalogue device in this home.

        Hub children transparently pull in their hub; Table II devices pull
        in the local server.  Runtime ids default to the lower-cased label
        (suffixed ``-hk`` for HomeKit-paired variants).
        """
        profile = self.catalogue.get(label, table)
        if device_id is None:
            device_id = label.lower() + ("-hk" if table == TABLE_LOCAL else "")
        if device_id in self.devices:
            return self.devices[device_id]

        if table == TABLE_LOCAL:
            device = self._add_local_device(profile, device_id)
        elif profile.is_hub_child:
            device = self._add_hub_child(profile, device_id)
        else:
            device = self._add_cloud_wifi_device(profile, device_id)
        self.devices[device_id] = device
        return device

    def _add_cloud_wifi_device(self, profile: DeviceProfile, device_id: str) -> WifiDevice:
        endpoint = self.endpoint(profile.server)
        if profile.device_class in ("hub",) or profile.kind in ("hub", "security-base"):
            cls = HubDevice
        elif profile.kind == "camera":
            cls = CameraDevice
        else:
            cls = WifiDevice
        device = cls(
            self.sim,
            self.lan,
            ip=self._allocate_lan_ip(),
            profile=profile,
            server_ip=endpoint.host.ip,
            server_port=endpoint.port,
            alarm_log=self.alarms,
            escrow=self.escrow,
            device_id=device_id,
        )
        endpoint.register_device(device_id, profile)
        device.start()
        return device

    def _add_hub_child(self, profile: DeviceProfile, device_id: str) -> HubChildDevice:
        hub_device = self.add_device(profile.hub_label or "")
        if not isinstance(hub_device, HubDevice):
            raise TypeError(f"{profile.hub_label} is not a hub")
        child = HubChildDevice(self.sim, profile, hub=hub_device, device_id=device_id)
        endpoint = self.endpoint(profile.server)
        endpoint.register_device(device_id, profile, via=hub_device.device_id)
        return child

    def _add_local_device(self, profile: DeviceProfile, device_id: str) -> WifiDevice:
        server = self.ensure_local_server()
        device = WifiDevice(
            self.sim,
            self.lan,
            ip=self._allocate_lan_ip(),
            profile=profile,
            server_ip=server.ip,
            server_port=server.port,
            alarm_log=self.alarms,
            escrow=self.escrow,
            device_id=device_id,
        )
        server.register_device(device_id, profile)
        device.start()
        return device

    def device(self, device_id: str) -> IoTDevice:
        return self.devices[device_id]

    # ----------------------------------------------------------- automation

    def install_rule(self, rule: Rule, local: bool = False) -> None:
        if local:
            self.ensure_local_server().install_rule(rule)
        else:
            self.integration.install_rule(rule)

    def install_rules(self, rules: list[Rule], local: bool = False) -> None:
        for rule in rules:
            self.install_rule(rule, local=local)

    # ------------------------------------------------------------- attacker

    def add_attacker_host(self, hostname: str = "attacker-pi") -> Host:
        """A compromised WiFi device: promiscuous NIC, ordinary LAN address."""
        return Host(
            self.sim,
            self.lan,
            ip=self._allocate_lan_ip(),
            hostname=hostname,
            gateway_ip=self.router.ip,
            promiscuous=True,
        )

    # ----------------------------------------------------------- inspection

    def summary(self) -> dict[str, Any]:
        return {
            "now": self.sim.now,
            "devices": sorted(self.devices),
            "endpoints": sorted(self.endpoints),
            "alarms": self.alarms.summary(),
            "notifications": len(self.notifier.notifications),
            "faults": self.fault_profile.name if self.fault_profile else None,
        }
