"""Protocol engines: the device side and the server side of an IoT session.

These two classes implement the timeout behaviour Section IV-B distils into
three parameters:

* **timeout threshold of keep-alive messages** — ``ka_response_timeout``
  (the device drops the session when its keep-alive goes unanswered);
* **pattern of keep-alive messages** — a :class:`KeepAlivePolicy`
  (fixed-period or on-idle);
* **timeout threshold of normal messages** — ``event_ack_timeout`` on the
  device side and ``command_response_timeout`` on the server side, either of
  which may be ``None`` meaning *no timeout at all* (the '∞' cells of
  Table I, and every HAP event in Table II).

The wire dialect (MQTT / HTTP / HAP) is a codec choice; the timeout logic is
shared, which mirrors the paper's observation that timeout behaviour is a
property of the implementation, not the protocol specification.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from ..alarms import (
    ALARM_COMMAND_TIMEOUT,
    ALARM_CONNECT_TIMEOUT,
    ALARM_DEVICE_OFFLINE,
    ALARM_EVENT_ACK_TIMEOUT,
    ALARM_KEEPALIVE_TIMEOUT,
    ALARM_TLS_ALERT,
    AlarmLog,
)
from ..tcp.connection import TcpConfig, TcpConnection
from ..tcp.stack import TcpStack
from ..tls.session import KeyEscrow, RECORD_OVERHEAD, TlsSession
from .codecs import WireCodec, codec_by_name
from .keepalive import KeepAlivePolicy
from .messages import (
    COMMAND,
    COMMAND_ACK,
    CONNACK,
    CONNECT,
    DISCONNECT,
    EVENT,
    EVENT_ACK,
    IoTMessage,
    KEEPALIVE,
    KEEPALIVE_ACK,
    MessageDecodeError,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..simnet.scheduler import Simulator


@dataclass
class ProtocolConfig:
    """Complete timeout/size behaviour of one device model's protocol."""

    codec_name: str = "mqtt"
    #: Long-live session kept open, vs a fresh session per message.
    long_live: bool = True
    keepalive: KeepAlivePolicy | None = field(
        default_factory=lambda: KeepAlivePolicy(period=30.0)
    )
    #: Device-side wait for a keep-alive reply; session dropped past this.
    ka_response_timeout: float | None = 16.0
    #: Device-side wait for an event acknowledgement; None = no timeout (∞).
    event_ack_timeout: float | None = None
    #: Whether the server acknowledges events at all (HAP does not).
    event_acked: bool = True
    #: Server-side wait for a command acknowledgement; None = no timeout.
    command_response_timeout: float | None = 20.0
    #: Device-side wait for CONNACK.
    connect_timeout: float = 10.0
    #: Delay before a long-live device re-dials after losing its session.
    reconnect_delay: float = 2.0
    #: Server drops the device and raises 'device offline' when nothing is
    #: heard for (advertised keep-alive period + this grace).  MQTT's 1.5 x
    #: rule makes the grace 0.5 x period (SmartThings' observed 16 s for a
    #: 31 s period); None disables the server-side check entirely
    #: (Finding 3 notes liveness checking is unidirectional — some vendor
    #: servers check nothing).
    server_liveness_grace: float | None = 16.0
    #: Server silently discards events whose device timestamp is older than
    #: this (Alexa's observed 30 s window, Finding 2).  None = accept any age.
    staleness_discard: float | None = None

    # Wire sizes: total TLS-record bytes for each message kind, so captures
    # reproduce each device's length fingerprint.
    event_size: int = 300
    command_size: int = 300
    ack_size: int = 80
    keepalive_size: int = 48

    def codec(self) -> WireCodec:
        return codec_by_name(self.codec_name)

    def plain_size(self, wire_size: int) -> int:
        """Plaintext length that seals to ``wire_size`` on the wire."""
        return max(wire_size - RECORD_OVERHEAD, 0)


@dataclass
class SentEvent:
    """Book-keeping for one event awaiting (or not expecting) an ack."""

    message: IoTMessage
    sent_at: float
    acked_at: float | None = None
    timed_out: bool = False


class DeviceProtocolClient:
    """Device side of the IoT session: events out, commands in, keep-alive.

    The class is transport-complete: it dials TCP, runs the TLS handshake,
    speaks its codec, schedules keep-alives per policy, arms the ack timers,
    and reconnects (long-live mode) after any session loss — which is
    exactly the machinery whose timing the attacker profiles from outside.
    """

    def __init__(
        self,
        stack: TcpStack,
        device_id: str,
        server_ip: str,
        server_port: int,
        config: ProtocolConfig,
        alarm_log: AlarmLog,
        escrow: KeyEscrow,
        on_command: Callable[[IoTMessage], None] | None = None,
        tcp_config: TcpConfig | None = None,
    ) -> None:
        self.stack = stack
        self.sim: "Simulator" = stack.sim
        self.device_id = device_id
        self.server_ip = server_ip
        self.server_port = server_port
        self.config = config
        self.alarm_log = alarm_log
        self.escrow = escrow
        self.on_command = on_command
        self.tcp_config = tcp_config
        self._codec = config.codec()

        self.session: TlsSession | None = None
        self.connected = False
        self._running = False
        self._generation = 0
        self._connect_timer = None
        self._ka_timer = None
        self._ka_response_timer = None
        self._reconnect_timer = None
        # Interned once: the keep-alive timer is re-armed on every message
        # under the on-idle policy, so per-arm f-string labels were hot.
        self._ka_label = sys.intern(f"{device_id}:keepalive")
        self._pending_event_timers: dict[int, Any] = {}
        self._send_queue: list[tuple[IoTMessage, int]] = []

        self.events: list[SentEvent] = []
        self.commands_received: list[tuple[float, IoTMessage]] = []
        self.session_losses: list[tuple[float, str]] = []
        self.stats: dict[str, int] = {
            "events_sent": 0,
            "event_acks": 0,
            "keepalives_sent": 0,
            "keepalive_acks": 0,
            "commands_received": 0,
            "reconnects": 0,
            "sessions_opened": 0,
        }

    # -------------------------------------------------------------- control

    def start(self) -> None:
        """Begin operating; long-live devices dial immediately."""
        self._running = True
        if self.config.long_live:
            self._open_session()

    def stop(self) -> None:
        self._running = False
        self._cancel_timers()
        if self.session is not None and not self.session.closed:
            self.session.close()
        self.session = None
        self.connected = False

    # -------------------------------------------------------------- session

    def _open_session(self) -> None:
        if not self._running:
            return
        self._generation += 1
        generation = self._generation
        self.stats["sessions_opened"] += 1
        conn = self.stack.connect(
            self.server_ip, self.server_port, config=self.tcp_config
        )
        self.session = TlsSession(
            conn,
            role="client",
            escrow=self.escrow,
            on_established=lambda s: self._on_tls_established(s, generation),
            on_message=lambda s, data: self._on_wire_message(data, generation),
            on_closed=lambda s, reason: self._on_session_closed(reason, generation),
        )
        self._connect_timer = self.sim.schedule(
            self.config.connect_timeout,
            self._on_connect_timeout,
            generation,
            label=f"{self.device_id}:connect-timeout",
        )

    def _on_tls_established(self, session: TlsSession, generation: int) -> None:
        if generation != self._generation:
            return
        ka_period = self.config.keepalive.period if self.config.keepalive else 0
        self._send_message(
            IoTMessage(
                kind=CONNECT,
                name="connect",
                data={"keepalive": ka_period},
                device_time=self.sim.now,
                device_id=self.device_id,
            ),
            wire_size=self.config.ack_size,
        )

    def _on_connect_timeout(self, generation: int) -> None:
        if generation != self._generation or self.connected:
            return
        self.alarm_log.raise_alarm(
            ALARM_CONNECT_TIMEOUT, self.device_id, "no CONNACK from server"
        )
        self._drop_session("connect-timeout")

    def _on_session_closed(self, reason: str, generation: int) -> None:
        if generation != self._generation:
            return
        if "tls-alert" in reason:
            self.alarm_log.raise_alarm(ALARM_TLS_ALERT, self.device_id, reason)
        self.connected = False
        self.session_losses.append((self.sim.now, reason))
        self._cancel_timers()
        self.session = None
        if self._running and self.config.long_live:
            self.stats["reconnects"] += 1
            self._reconnect_timer = self.sim.schedule(
                self.config.reconnect_delay,
                self._open_session,
                label=f"{self.device_id}:reconnect",
            )

    def _drop_session(self, reason: str) -> None:
        session = self.session
        if session is not None and not session.closed:
            # TLS close triggers _on_session_closed, which reconnects.
            session.close()
        elif self._running and self.config.long_live and self.session is None:
            self._open_session()

    # ------------------------------------------------------------ messaging

    def send_event(
        self,
        name: str,
        data: dict[str, Any] | None = None,
        wire_size: int | None = None,
    ) -> IoTMessage:
        """Report a device state update to the server.

        Long-live devices use the standing session (queueing while a
        reconnect is in flight); on-demand devices dial a fresh session for
        the message, as the paper's M7/C5-style WiFi sensors do.
        """
        message = IoTMessage(
            kind=EVENT,
            name=name,
            data=data or {},
            device_time=self.sim.now,
            device_id=self.device_id,
        )
        if self.config.long_live:
            self._send_or_queue(message, wire_size or self.config.event_size)
        else:
            self._send_on_demand(message, wire_size or self.config.event_size)
        return message

    def _send_or_queue(self, message: IoTMessage, wire_size: int) -> None:
        if not self.connected or self.session is None or self.session.closed:
            self._send_queue.append((message, wire_size))
            if self.session is None and self._running and self._reconnect_timer is None:
                self._open_session()
            return
        self._dispatch_event(message, wire_size)

    def _dispatch_event(self, message: IoTMessage, wire_size: int) -> None:
        record = SentEvent(message=message, sent_at=self.sim.now)
        self.events.append(record)
        self.stats["events_sent"] += 1
        obs = self.sim.obs
        if obs.enabled:
            flow = ""
            if self.session is not None:
                flow = self.session.conn.flow_label()
            span = obs.tracer.start_span(
                "appproto",
                f"event:{message.name}",
                msg_id=message.msg_id,
                device_id=self.device_id,
                flow=flow,
            )
            obs.tracer.bind_message(message.msg_id, span)
            with obs.tracer.ambient(span):
                self._send_message(message, wire_size=wire_size)
        else:
            self._send_message(message, wire_size=wire_size)
        if self.config.event_ack_timeout is not None and self.config.event_acked:
            self._pending_event_timers[message.msg_id] = self.sim.schedule(
                self.config.event_ack_timeout,
                self._on_event_ack_timeout,
                record,
                label=f"{self.device_id}:event-ack-timeout",
            )
        elif not self.config.long_live and not self.config.event_acked:
            # Fire-and-forget on-demand message: hang up once sent.
            self.sim.call_soon(self._hang_up, label=f"{self.device_id}:hangup")

    def _send_on_demand(self, message: IoTMessage, wire_size: int) -> None:
        # A one-shot session: connect, send, await ack (or not), hang up.
        self._running = True
        if self.session is None or self.session.closed:
            self._send_queue.append((message, wire_size))
            self._open_session()
        else:
            self._send_or_queue(message, wire_size)

    def _on_event_ack_timeout(self, record: SentEvent) -> None:
        self._pending_event_timers.pop(record.message.msg_id, None)
        if record.acked_at is not None:
            return
        record.timed_out = True
        self.alarm_log.raise_alarm(
            ALARM_EVENT_ACK_TIMEOUT,
            self.device_id,
            f"event '{record.message.name}' unacknowledged",
        )
        self._drop_session("event-ack-timeout")

    def _send_message(self, message: IoTMessage, wire_size: int) -> None:
        assert self.session is not None
        plaintext = self._codec.encode(
            message, pad_to=self.config.plain_size(wire_size)
        )
        self.session.send_message(plaintext)
        self._note_activity_sent(message.kind)

    # ----------------------------------------------------------- keep-alive

    def _note_activity_sent(self, kind: str) -> None:
        policy = self.config.keepalive
        if policy is None or not self.connected:
            return
        if policy.resets_on_activity and kind != KEEPALIVE:
            self._arm_ka_timer()

    def _arm_ka_timer(self) -> None:
        policy = self.config.keepalive
        if policy is None:
            return
        if self._ka_timer is not None:
            self._ka_timer.cancel()
        self._ka_timer = self.sim.schedule(
            policy.period, self._send_keepalive, label=self._ka_label
        )

    def _send_keepalive(self) -> None:
        self._ka_timer = None
        if not self.connected or self.session is None or self.session.closed:
            return
        self.stats["keepalives_sent"] += 1
        if self.sim.obs.enabled:
            self.sim.obs.registry.counter(
                "appproto", "keepalives_sent", device=self.device_id
            ).inc()
        self._send_message(
            IoTMessage(
                kind=KEEPALIVE,
                name="ping",
                device_time=self.sim.now,
                device_id=self.device_id,
            ),
            wire_size=self.config.keepalive_size,
        )
        if self.config.ka_response_timeout is not None:
            if self._ka_response_timer is not None:
                self._ka_response_timer.cancel()
            self._ka_response_timer = self.sim.schedule(
                self.config.ka_response_timeout,
                self._on_ka_response_timeout,
                label=f"{self.device_id}:ka-timeout",
            )
        self._arm_ka_timer()

    def _on_ka_response_timeout(self) -> None:
        self._ka_response_timer = None
        self.alarm_log.raise_alarm(
            ALARM_KEEPALIVE_TIMEOUT, self.device_id, "keep-alive unanswered"
        )
        self._drop_session("keepalive-timeout")

    # -------------------------------------------------------------- receive

    def _on_wire_message(self, data: bytes, generation: int) -> None:
        if generation != self._generation:
            return
        try:
            message = self._codec.decode(data)
        except MessageDecodeError:
            return
        if message.kind == CONNACK:
            self._on_connack()
        elif message.kind == EVENT_ACK:
            self._on_event_ack(message)
        elif message.kind == KEEPALIVE_ACK:
            self._on_keepalive_ack()
        elif message.kind == COMMAND:
            self._on_command_message(message)

    def _on_connack(self) -> None:
        self.connected = True
        if self._connect_timer is not None:
            self._connect_timer.cancel()
            self._connect_timer = None
        self._arm_ka_timer()
        queued, self._send_queue = self._send_queue, []
        for message, wire_size in queued:
            self._dispatch_event(message, wire_size)

    def _on_event_ack(self, ack: IoTMessage) -> None:
        self.stats["event_acks"] += 1
        obs = self.sim.obs
        if obs.enabled:
            obs.tracer.event(
                "appproto",
                "event_ack",
                parent=obs.tracer.message_span(ack.msg_id),
                msg_id=ack.msg_id,
                device_id=self.device_id,
            )
        timer = self._pending_event_timers.pop(ack.msg_id, None)
        if timer is not None:
            timer.cancel()
        for record in reversed(self.events):
            if record.message.msg_id == ack.msg_id:
                record.acked_at = self.sim.now
                break
        if not self.config.long_live and not self._pending_event_timers:
            # On-demand session: transmission complete, hang up.
            self._hang_up()

    def _hang_up(self) -> None:
        self._running = False
        self._cancel_timers()
        if self.session is not None and not self.session.closed:
            self.session.close()
        self.session = None
        self.connected = False

    def _on_keepalive_ack(self) -> None:
        self.stats["keepalive_acks"] += 1
        if self._ka_response_timer is not None:
            self._ka_response_timer.cancel()
            self._ka_response_timer = None

    def _on_command_message(self, message: IoTMessage) -> None:
        self.stats["commands_received"] += 1
        self.commands_received.append((self.sim.now, message))
        self._send_message(
            message.make_ack(device_time=self.sim.now), wire_size=self.config.ack_size
        )
        if self.on_command is not None:
            self.on_command(message)

    # ---------------------------------------------------------------- misc

    def _cancel_timers(self) -> None:
        for timer in (
            self._connect_timer,
            self._ka_timer,
            self._ka_response_timer,
            self._reconnect_timer,
        ):
            if timer is not None:
                timer.cancel()
        self._connect_timer = None
        self._ka_timer = None
        self._ka_response_timer = None
        self._reconnect_timer = None
        for timer in self._pending_event_timers.values():
            timer.cancel()
        self._pending_event_timers.clear()


@dataclass
class PendingCommand:
    """Server-side book-keeping for one command awaiting its ack."""

    message: IoTMessage
    sent_at: float
    acked_at: float | None = None
    timed_out: bool = False
    on_result: Callable[["PendingCommand"], None] | None = None


class ServerDeviceSession:
    """Server side of one device's session on an endpoint server.

    Implements CONNACK, event acknowledgement (unless the dialect never acks
    — HAP), keep-alive echo, the optional liveness watchdog (MQTT's
    1.5 x keep-alive rule), the optional silent staleness discard (Finding 2),
    and command issuance with its response timeout.
    """

    def __init__(
        self,
        conn: TcpConnection,
        config: ProtocolConfig,
        alarm_log: AlarmLog,
        escrow: KeyEscrow,
        server_name: str,
        on_event: Callable[["ServerDeviceSession", IoTMessage], None] | None = None,
        on_device_connected: Callable[["ServerDeviceSession"], None] | None = None,
        on_closed: Callable[["ServerDeviceSession", str], None] | None = None,
        on_stale: Callable[["ServerDeviceSession"], None] | None = None,
        codec_fallbacks: tuple[WireCodec, ...] = (),
    ) -> None:
        self.sim: "Simulator" = conn.sim
        self.config = config
        self.alarm_log = alarm_log
        self.server_name = server_name
        self.on_event = on_event
        self.on_device_connected = on_device_connected
        self.on_closed = on_closed
        self.on_stale = on_stale
        self._codec = config.codec()
        self._codec_fallbacks = codec_fallbacks

        self.device_id: str | None = None
        self.advertised_keepalive: float | None = None
        self.last_seen = self.sim.now
        self.closed = False
        self._liveness_timer = None
        self.pending_commands: dict[int, tuple[PendingCommand, Any]] = {}
        self.events_received: list[tuple[float, IoTMessage]] = []
        self.events_discarded_stale: list[tuple[float, IoTMessage]] = []
        self.commands: list[PendingCommand] = []

        self.session = TlsSession(
            conn,
            role="server",
            escrow=escrow,
            on_message=lambda s, data: self._on_wire_message(data),
            on_closed=lambda s, reason: self._on_session_closed(reason),
        )

    # -------------------------------------------------------------- receive

    def adopt_config(self, config: ProtocolConfig) -> None:
        """Switch to the connecting device's real profile configuration.

        Vendor endpoints accept with a default config; once CONNECT names
        the device, the endpoint adopts the registered profile so timeout
        and size behaviour match that model.
        """
        self.config = config
        self._codec = config.codec()
        self._arm_liveness()

    def _decode(self, data: bytes) -> IoTMessage | None:
        try:
            return self._codec.decode(data)
        except MessageDecodeError:
            pass
        # A multi-dialect vendor (e.g. Tuya: MQTT gateways plus HTTP
        # on-demand sensors) detects the dialect on first contact.
        for codec in self._codec_fallbacks:
            try:
                message = codec.decode(data)
            except MessageDecodeError:
                continue
            self._codec = codec
            return message
        return None

    def _on_wire_message(self, data: bytes) -> None:
        message = self._decode(data)
        if message is None:
            return
        self.last_seen = self.sim.now
        self._arm_liveness()
        if message.kind == CONNECT:
            self._on_connect(message)
        elif message.kind == EVENT:
            self._on_event_message(message)
        elif message.kind == KEEPALIVE:
            self._reply(message.make_ack(device_time=self.sim.now), self.config.keepalive_size)
        elif message.kind == COMMAND_ACK:
            self._on_command_ack(message)
        elif message.kind == DISCONNECT:
            self.close("device-disconnect")

    def _on_connect(self, message: IoTMessage) -> None:
        self.device_id = message.device_id
        advertised = message.data.get("keepalive") or 0
        self.advertised_keepalive = advertised if advertised > 0 else None
        self._reply(message.make_ack(device_time=self.sim.now), self.config.ack_size)
        self._arm_liveness()
        if self.on_device_connected is not None:
            self.on_device_connected(self)

    def _on_event_message(self, message: IoTMessage) -> None:
        window = self.config.staleness_discard
        obs = self.sim.obs
        msg_span = obs.tracer.message_span(message.msg_id) if obs.enabled else None
        if window is not None and self.sim.now - message.device_time > window:
            # Finding 2: stale events are dropped with no notification at all.
            self.events_discarded_stale.append((self.sim.now, message))
            if msg_span is not None:
                obs.registry.counter(
                    "appproto", "events_discarded_stale", server=self.server_name
                ).inc()
                obs.tracer.end_span(msg_span, discarded_stale=True)
            if self.config.event_acked:
                self._reply(message.make_ack(device_time=self.sim.now), self.config.ack_size)
            return
        self.events_received.append((self.sim.now, message))
        if msg_span is not None:
            obs.registry.counter(
                "appproto", "events_received", server=self.server_name
            ).inc()
            # The endpoint receipt is "delivery" for attribution purposes;
            # downstream cloud/automation spans hang off the same tree.
            obs.tracer.end_span(msg_span, delivered_at=self.sim.now)
        if self.config.event_acked:
            self._reply(message.make_ack(device_time=self.sim.now), self.config.ack_size)
        if self.on_event is not None:
            if msg_span is not None:
                with obs.tracer.ambient(msg_span):
                    self.on_event(self, message)
            else:
                self.on_event(self, message)

    def _on_command_ack(self, ack: IoTMessage) -> None:
        entry = self.pending_commands.pop(ack.msg_id, None)
        if entry is None:
            return
        pending, timer = entry
        if timer is not None:
            timer.cancel()
        pending.acked_at = self.sim.now
        if pending.on_result is not None:
            pending.on_result(pending)

    # ----------------------------------------------------------------- send

    def send_command(
        self,
        name: str,
        data: dict[str, Any] | None = None,
        wire_size: int | None = None,
        on_result: Callable[[PendingCommand], None] | None = None,
    ) -> PendingCommand:
        """Issue a command toward the device and arm the response timeout."""
        if self.closed:
            raise RuntimeError(f"session to {self.device_id} is closed")
        message = IoTMessage(
            kind=COMMAND,
            name=name,
            data=data or {},
            device_time=self.sim.now,
            device_id=self.device_id or "",
        )
        pending = PendingCommand(message=message, sent_at=self.sim.now, on_result=on_result)
        self.commands.append(pending)
        timer = None
        if self.config.command_response_timeout is not None:
            timer = self.sim.schedule(
                self.config.command_response_timeout,
                self._on_command_timeout,
                pending,
                label=f"{self.server_name}:command-timeout",
            )
        self.pending_commands[message.msg_id] = (pending, timer)
        self._reply(message, wire_size or self.config.command_size)
        return pending

    def _on_command_timeout(self, pending: PendingCommand) -> None:
        entry = self.pending_commands.pop(pending.message.msg_id, None)
        if entry is None or pending.acked_at is not None:
            return
        pending.timed_out = True
        self.alarm_log.raise_alarm(
            ALARM_COMMAND_TIMEOUT,
            self.server_name,
            f"command '{pending.message.name}' to {self.device_id} unacknowledged",
        )
        if pending.on_result is not None:
            pending.on_result(pending)
        self.close("command-timeout")

    def _reply(self, message: IoTMessage, wire_size: int) -> None:
        if self.session.closed:
            return
        plaintext = self._codec.encode(message, pad_to=self.config.plain_size(wire_size))
        self.session.send_message(plaintext)

    # ------------------------------------------------------------- liveness

    def _arm_liveness(self) -> None:
        grace = self.config.server_liveness_grace
        if grace is None or self.advertised_keepalive is None:
            return
        if self._liveness_timer is not None:
            self._liveness_timer.cancel()
        self._liveness_timer = self.sim.schedule(
            self.advertised_keepalive + grace,
            self._on_liveness_expired,
            label=f"{self.server_name}:liveness",
        )

    def _on_liveness_expired(self) -> None:
        self._liveness_timer = None
        if self.closed:
            return
        # The endpoint decides whether this is alarm-worthy: if the device
        # already holds a newer session, the stale one dies quietly
        # (Finding 1 — half-open connections postpone 'device offline').
        if self.on_stale is not None:
            self.on_stale(self)
        else:
            self.raise_offline_alarm()

    def raise_offline_alarm(self) -> None:
        self.alarm_log.raise_alarm(
            ALARM_DEVICE_OFFLINE,
            self.server_name,
            f"device {self.device_id} missed its keep-alive window",
        )
        self.close("liveness-expired")

    # ------------------------------------------------------------- teardown

    def close(self, reason: str) -> None:
        if self.closed:
            return
        self.closed = True
        if self._liveness_timer is not None:
            self._liveness_timer.cancel()
            self._liveness_timer = None
        for pending, timer in self.pending_commands.values():
            if timer is not None:
                timer.cancel()
        self.pending_commands.clear()
        if not self.session.closed:
            self.session.close()
        if self.on_closed is not None:
            self.on_closed(self, reason)

    def _on_session_closed(self, reason: str) -> None:
        if "tls-alert" in reason:
            self.alarm_log.raise_alarm(ALARM_TLS_ALERT, self.server_name, reason)
        if not self.closed:
            self.close(f"transport:{reason}")
